//! Pipelined multiplexed TCP transport.
//!
//! [`crate::TcpTransport`] is lockstep: one request goes out, the
//! caller blocks on the socket until that reply comes back, and every
//! other caller queues on the connection mutex. Per-op cost is then
//! `service time + RTT` no matter how many ops are ready — the
//! single-socket scaling ceiling the ROADMAP calls out.
//!
//! [`MuxTransport`] splits the connection instead: one writer side
//! (callers write frames under a short lock and return) and one
//! dedicated reader thread that correlates every incoming reply to its
//! waiting caller through a pending-reply table keyed by `op_id` — the
//! wire format has carried the correlation id since PR 2, so the frames
//! are unchanged and a mux client interoperates with any server. Many
//! ops ride one socket concurrently, bounded by an in-flight *window*
//! of tokens; the window composes with the master's per-client
//! `CallPermit` quota (`HealthConfig::max_in_flight`) — the permit
//! gates whether a dispatch may target the client at all, the window
//! gates how many of the admitted calls may be on the wire at once.
//!
//! Failure model: if the reader thread dies (peer reset, garbage
//! frame, protocol violation), it marks the connection generation dead
//! and fails every pending op with a retryable
//! [`TransportError::Closed`] so the master's dispatch loop can retry
//! or fail over; the next call connects a fresh generation. A reply
//! arriving after its caller timed out is dropped silently — its
//! pending entry is already gone.

use crate::protocol::{ClientIdentity, ScheduleReply, ScheduleRequest};
use crate::transport::{ClientTransport, TcpTransport, TransportError};
use crate::wire::{read_frame, write_frame};
use crate::{WireRequest, WireResponse};
use crossbeam::channel::{self, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Default in-flight window per connection.
pub const DEFAULT_WINDOW: usize = 32;

type ReplyResult = Result<ScheduleReply, TransportError>;

/// Counting semaphore for in-flight slots. (The vendored channel's
/// receiver is `!Sync`, so the token pool cannot be a channel shared
/// across caller threads.)
struct Window {
    slots: StdMutex<usize>,
    freed: Condvar,
}

impl Window {
    fn new(size: usize) -> Self {
        Window {
            slots: StdMutex::new(size),
            freed: Condvar::new(),
        }
    }

    /// Takes one slot, waiting at most `timeout` for one to free up.
    fn acquire(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if *slots > 0 {
                *slots -= 1;
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            slots = self
                .freed
                .wait_timeout(slots, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    fn release(&self) {
        *self.slots.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        self.freed.notify_one();
    }
}

/// One connection generation: writer half, pending-reply table, and
/// the in-flight window. The reader thread owns the read half; when it
/// exits it poisons the generation and drains the table.
struct ConnState {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, Sender<ReplyResult>>>,
    window: Window,
    dead: AtomicBool,
}

impl ConnState {
    /// Marks the generation dead, severs the socket (waking the reader
    /// if it is still alive), and fails every pending op with a
    /// retryable error.
    fn poison(&self, reason: &str) {
        if self.dead.swap(true, Ordering::SeqCst) {
            return; // already poisoned; pending already drained
        }
        let _ = self.writer.lock().shutdown(Shutdown::Both);
        let drained: Vec<(u64, Sender<ReplyResult>)> =
            self.pending.lock().drain().collect();
        for (op_id, tx) in drained {
            let _ = tx.send(Err(TransportError::Closed(format!(
                "mux connection lost with op {op_id} in flight: {reason}"
            ))));
        }
    }

    /// Registers a caller's reply channel under `op_id`, closing the
    /// race with [`poison`]: the insert lands first, then `dead` is
    /// re-checked. `poison` sets `dead` before draining the table, so
    /// either this sees `dead` and withdraws the entry itself, or the
    /// drain finds the entry and fails it — the entry can never be
    /// orphaned with a caller blocked on it for the full timeout.
    ///
    /// [`poison`]: ConnState::poison
    fn register(&self, op_id: u64, tx: Sender<ReplyResult>) -> Result<(), TransportError> {
        self.pending.lock().insert(op_id, tx);
        if self.dead.load(Ordering::SeqCst) {
            self.pending.lock().remove(&op_id);
            return Err(TransportError::Closed(format!(
                "mux connection died while registering op {op_id}"
            )));
        }
        Ok(())
    }
}

/// Returns its window slot when the caller is done with it — on reply,
/// timeout, and every error path alike.
struct WindowToken {
    conn: Arc<ConnState>,
}

impl Drop for WindowToken {
    fn drop(&mut self) {
        self.conn.window.release();
    }
}

/// A pipelined multiplexed transport to one serving client.
pub struct MuxTransport {
    peer: SocketAddr,
    connect_timeout: Duration,
    window: usize,
    conn: Mutex<Option<Arc<ConnState>>>,
}

impl MuxTransport {
    /// A transport dialing `peer` on first use with the
    /// [`DEFAULT_WINDOW`].
    pub fn new(peer: SocketAddr) -> Self {
        MuxTransport {
            peer,
            connect_timeout: Duration::from_secs(5),
            window: DEFAULT_WINDOW,
            conn: Mutex::new(None),
        }
    }

    /// Overrides the in-flight window (minimum 1).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Overrides the connect timeout.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// The peer address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Registration handshake, over a throwaway lockstep connection so
    /// it cannot interleave with pipelined replies.
    pub fn identify(&self, timeout: Duration) -> Result<ClientIdentity, TransportError> {
        TcpTransport::new(self.peer)
            .with_connect_timeout(self.connect_timeout)
            .identify(timeout)
    }

    /// The live connection generation, connecting a fresh one if there
    /// is none or the last one died.
    fn ensure_conn(&self) -> Result<Arc<ConnState>, TransportError> {
        let mut guard = self.conn.lock();
        if let Some(conn) = guard.as_ref() {
            if !conn.dead.load(Ordering::SeqCst) {
                return Ok(Arc::clone(conn));
            }
        }
        let stream = TcpStream::connect_timeout(&self.peer, self.connect_timeout)
            .map_err(|e| TransportError::Unreachable(format!("{}: {e}", self.peer)))?;
        stream.set_nodelay(true).ok();
        let reader_half = stream
            .try_clone()
            .map_err(|e| TransportError::Closed(format!("clone mux socket: {e}")))?;
        let conn = Arc::new(ConnState {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            window: Window::new(self.window),
            dead: AtomicBool::new(false),
        });
        let reader_conn = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("webcom-mux-{}", self.peer))
            .spawn(move || reader_loop(reader_half, reader_conn))
            .map_err(|e| TransportError::Closed(format!("spawn mux reader: {e}")))?;
        *guard = Some(Arc::clone(&conn));
        Ok(conn)
    }
}

/// Reads replies until the socket dies or the peer violates the
/// protocol, routing each to its pending caller by `op_id`.
fn reader_loop(mut stream: TcpStream, conn: Arc<ConnState>) {
    let reason = loop {
        match read_frame::<WireResponse, _>(&mut stream) {
            Ok(WireResponse::Reply(reply)) => {
                let waiter = conn.pending.lock().remove(&reply.op_id);
                if let Some(tx) = waiter {
                    let _ = tx.send(Ok(reply));
                }
                // No waiter: the caller timed out and withdrew; the
                // late reply is dropped on the floor by design.
            }
            Ok(other) => break format!("unexpected frame {other:?} on a mux connection"),
            Err(e) => break e.to_string(),
        }
    };
    conn.poison(&reason);
    let _ = stream.shutdown(Shutdown::Both);
}

impl ClientTransport for MuxTransport {
    fn call(
        &self,
        request: &ScheduleRequest,
        timeout: Duration,
    ) -> Result<ScheduleReply, TransportError> {
        let started = Instant::now();
        let conn = self.ensure_conn()?;
        // Window admission: wait for a free in-flight slot, but never
        // past the call deadline.
        let remaining = timeout
            .checked_sub(started.elapsed())
            .filter(|r| !r.is_zero())
            .ok_or(TransportError::Timeout(timeout))?;
        if !conn.window.acquire(remaining) {
            return Err(TransportError::Timeout(timeout));
        }
        let _token = WindowToken {
            conn: Arc::clone(&conn),
        };
        if conn.dead.load(Ordering::SeqCst) {
            return Err(TransportError::Closed(
                "mux connection died while waiting for a window slot".to_string(),
            ));
        }
        // Register interest before writing, so the reply cannot race
        // past an unregistered op_id. `register` re-checks `dead` after
        // the insert: a poison() between the check above and the insert
        // would otherwise orphan the entry and block us for the full
        // timeout.
        let (reply_tx, reply_rx) = channel::unbounded::<ReplyResult>();
        conn.register(request.op_id, reply_tx)?;
        let frame = WireRequest::Schedule(Box::new(request.clone()));
        {
            let mut writer = conn.writer.lock();
            if let Err(e) = write_frame(&mut *writer, &frame) {
                drop(writer);
                conn.pending.lock().remove(&request.op_id);
                conn.poison(&format!("write failed: {e}"));
                return Err(TransportError::Closed(format!("mux write failed: {e}")));
            }
        }
        let remaining = timeout
            .checked_sub(started.elapsed())
            .filter(|r| !r.is_zero())
            .unwrap_or(Duration::from_millis(1));
        match reply_rx.recv_timeout(remaining) {
            Ok(Ok(reply)) => Ok(reply),
            Ok(Err(e)) => Err(e),
            Err(RecvTimeoutError::Timeout) => {
                // Withdraw: a late reply finds no waiter and is dropped.
                conn.pending.lock().remove(&request.op_id);
                Err(TransportError::Timeout(timeout))
            }
            Err(RecvTimeoutError::Disconnected) => {
                conn.pending.lock().remove(&request.op_id);
                Err(TransportError::Closed(
                    "mux connection dropped the pending table".to_string(),
                ))
            }
        }
    }

    fn describe(&self) -> String {
        format!("mux+tcp://{} (window {})", self.peer, self.window)
    }
}

impl Drop for MuxTransport {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.lock().take() {
            conn.poison("transport dropped");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A ConnState over a real loopback socket pair (no reader thread:
    /// these tests drive poison() and register() directly).
    fn loopback_conn() -> (Arc<ConnState>, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let (peer_half, _) = listener.accept().unwrap();
        let conn = Arc::new(ConnState {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            window: Window::new(4),
            dead: AtomicBool::new(false),
        });
        (conn, peer_half)
    }

    #[test]
    fn poison_between_admission_and_registration_fails_fast() {
        let (conn, _peer) = loopback_conn();
        // The caller has passed the pre-insert dead check (dead is still
        // false here) when poison() sets the flag and drains the table —
        // the exact interleaving that used to orphan the entry.
        assert!(!conn.dead.load(Ordering::SeqCst));
        conn.poison("peer reset during registration");
        let (tx, rx) = channel::unbounded::<ReplyResult>();
        let started = Instant::now();
        let err = conn.register(7, tx).unwrap_err();
        // Fails immediately — far inside any op timeout — instead of
        // leaving the caller to block out the deadline.
        assert!(started.elapsed() < Duration::from_secs(1));
        assert!(matches!(err, TransportError::Closed(_)));
        // Retryable: the dispatch loop may fail over to another client.
        assert!(err.to_exec_error().retryable);
        // The entry was withdrawn, not orphaned.
        assert!(conn.pending.lock().is_empty());
        drop(rx);
    }

    #[test]
    fn registration_before_poison_is_drained() {
        // The complementary interleaving: the insert lands first, then
        // poison() drains it — the caller gets the drained error.
        let (conn, _peer) = loopback_conn();
        let (tx, rx) = channel::unbounded::<ReplyResult>();
        conn.register(9, tx).unwrap();
        conn.poison("peer reset");
        match rx.try_recv() {
            Ok(Err(TransportError::Closed(reason))) => {
                assert!(reason.contains("op 9"), "unexpected reason: {reason}");
            }
            other => panic!("expected drained Closed error, got {other:?}"),
        }
        assert!(conn.pending.lock().is_empty());
    }
}
