//! WebCom environment composition (Figure 9).
//!
//! The paper's interoperation scenario runs four differently-equipped
//! systems: W (Windows + COM + KeyNote), X (Unix + KeyNote only),
//! Y (Windows + COM), Z (legacy under migration). An
//! [`EnvironmentBuilder`] assembles such a system — identity, the trust
//! policies for masters and users, whatever mediation layers the
//! platform provides, and a component executor — and spawns it as a
//! WebCom client.

use crate::authz::TrustManager;
use crate::client::{spawn_client, ClientConfig, ClientHandle};
use crate::protocol::{ArithComponentExecutor, ComponentExecutor};
use crate::stack::{AuthzLayer, AuthzStack, CombinationRule, TrustLayer};
use std::sync::Arc;

/// Builder for one WebCom environment.
pub struct EnvironmentBuilder {
    name: String,
    key_text: String,
    master_trust: Arc<TrustManager>,
    user_trust: Option<Arc<TrustManager>>,
    layers: Vec<Arc<dyn AuthzLayer>>,
    rule: CombinationRule,
    executor: Option<Arc<dyn ComponentExecutor>>,
}

impl EnvironmentBuilder {
    /// Starts an environment named `name` whose client key is
    /// `key_text`. By default no master is trusted: call
    /// [`Self::trust_master`].
    pub fn new(name: impl Into<String>, key_text: impl Into<String>) -> Self {
        EnvironmentBuilder {
            name: name.into(),
            key_text: key_text.into(),
            master_trust: Arc::new(TrustManager::permissive()),
            user_trust: None,
            layers: Vec::new(),
            rule: CombinationRule::default(),
            executor: None,
        }
    }

    /// Trusts `master_key` to schedule anything in `app_domain WebCom`.
    pub fn trust_master(self, master_key: &str) -> Self {
        self.master_trust
            .add_policy(&format!(
                "Authorizer: POLICY\nLicensees: \"{master_key}\"\nConditions: app_domain==\"WebCom\";\n"
            ))
            .expect("well-formed master policy");
        self
    }

    /// Installs a user trust manager; a [`TrustLayer`] for it is plugged
    /// into the stack (the environment "runs T(KN)" in Figure 9 terms).
    pub fn with_trust_management(mut self, tm: Arc<TrustManager>) -> Self {
        self.user_trust = Some(tm.clone());
        self.layers.push(Arc::new(TrustLayer::new(tm)));
        self
    }

    /// Plugs an extra mediation layer (OS, middleware, application).
    pub fn with_layer(mut self, layer: Arc<dyn AuthzLayer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Sets the stack combination rule.
    pub fn with_rule(mut self, rule: CombinationRule) -> Self {
        self.rule = rule;
        self
    }

    /// Sets the component executor (defaults to the arithmetic one).
    pub fn with_executor(mut self, executor: Arc<dyn ComponentExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// The user trust manager, if one was installed (for feeding
    /// credentials later).
    pub fn user_trust(&self) -> Option<Arc<TrustManager>> {
        self.user_trust.clone()
    }

    /// Spawns the environment as a running WebCom client.
    pub fn spawn(self) -> ClientHandle {
        let mut stack = AuthzStack::new().with_rule(self.rule);
        for layer in self.layers {
            stack.push(layer);
        }
        spawn_client(ClientConfig {
            name: self.name,
            key_text: self.key_text,
            master_trust: self.master_trust,
            stack: Arc::new(stack),
            executor: self
                .executor
                .unwrap_or_else(|| Arc::new(ArithComponentExecutor)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authz::ScheduledAction;
    use crate::master::{Binding, WebComMaster};
    use crate::protocol::ExecOutcome;
    use crate::stack::UnixOsLayer;
    use hetsec_graphs::Value;
    use hetsec_middleware::component::ComponentRef;
    use hetsec_middleware::naming::MiddlewareKind;
    use hetsec_os::unix::{Mode, UnixObject, UnixSecurity, UnixUser};

    fn user_tm(policy: &str) -> Arc<TrustManager> {
        let tm = TrustManager::permissive();
        tm.add_policy(policy).unwrap();
        Arc::new(tm)
    }

    /// Figure 9's System X: Unix OS + KeyNote, no middleware at all.
    #[test]
    fn system_x_unix_plus_keynote_only() {
        let os = Arc::new(UnixSecurity::new());
        os.add_user("worker", UnixUser { uid: 7, gid: 7, groups: vec![] });
        os.set_object(
            "Calc",
            UnixObject { owner: 7, group: 7, mode: Mode::from_octal(0o700) },
        );
        let tm = user_tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let client = EnvironmentBuilder::new("system-x", "Kx")
            .trust_master("Kmaster")
            .with_trust_management(tm)
            .with_layer(Arc::new(UnixOsLayer::new(os, ["Calc".to_string()])))
            .spawn();

        let master = WebComMaster::new("Kmaster", user_tm(
            "Authorizer: POLICY\nLicensees: \"Kx\"\nConditions: app_domain==\"WebCom\";\n",
        ));
        master.register_client(&client, vec!["Dom".into()]);
        master.bind(
            "add",
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                domain: "Dom".into(),
                role: "Worker".into(),
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
        let out = master.schedule_primitive("add", vec![Value::Int(40), Value::Int(2)]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(42)));
        client.shutdown();
    }

    #[test]
    fn environment_without_trusted_master_refuses() {
        let tm = user_tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        // No trust_master call: the client trusts no master.
        let client = EnvironmentBuilder::new("isolated", "Ki")
            .with_trust_management(tm)
            .spawn();
        let master = WebComMaster::new("Kmaster", user_tm(
            "Authorizer: POLICY\nLicensees: \"Ki\"\nConditions: app_domain==\"WebCom\";\n",
        ));
        master.register_client(&client, vec!["Dom".into()]);
        let action = ScheduledAction::new(
            ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            "Dom",
            "Worker",
        );
        let out = master.schedule(&action, &"worker".into(), "Kworker", vec![]);
        assert!(matches!(out, ExecOutcome::Denied(ref m) if m.contains("master")));
        client.shutdown();
    }

    #[test]
    fn builder_exposes_user_trust_for_later_credentials() {
        let tm = user_tm(
            "Authorizer: POLICY\nLicensees: \"Ka\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let b = EnvironmentBuilder::new("env", "Ke")
            .trust_master("Km")
            .with_trust_management(tm.clone());
        let handle = b.user_trust().unwrap();
        assert!(Arc::strong_count(&tm) >= 2);
        drop(handle);
        b.spawn().shutdown();
    }
}
