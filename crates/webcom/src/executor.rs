//! A component executor backed by the actual middleware simulators.
//!
//! Where [`crate::protocol::ArithComponentExecutor`] fakes business
//! logic, [`MiddlewareExecutor`] routes each invocation to the hosting
//! middleware's native call path — `ComCatalog::call`,
//! `EjbContainer::invoke`, `OrbServer::request` — so the native security
//! mediation runs *again* at invocation time. This is the paper's
//! legacy-reuse point (§5): the middleware's own policy keeps mediating
//! even when WebCom's stack already granted the schedule.

use crate::protocol::{ComponentExecutor, ExecError};
use hetsec_com::ComMiddleware;
use hetsec_corba::CorbaMiddleware;
use hetsec_ejb::{EjbMiddleware, InvokeOutcome};
use hetsec_graphs::Value;
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_rbac::User;
use std::sync::Arc;

/// Routes invocations to registered middleware instances by domain.
#[derive(Default)]
pub struct MiddlewareExecutor {
    com: Vec<Arc<ComMiddleware>>,
    ejb: Vec<Arc<EjbMiddleware>>,
    corba: Vec<Arc<CorbaMiddleware>>,
}

impl MiddlewareExecutor {
    /// Empty executor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a COM+ machine.
    pub fn with_com(mut self, m: Arc<ComMiddleware>) -> Self {
        self.com.push(m);
        self
    }

    /// Registers an EJB server.
    pub fn with_ejb(mut self, m: Arc<EjbMiddleware>) -> Self {
        self.ejb.push(m);
        self
    }

    /// Registers an ORB.
    pub fn with_corba(mut self, m: Arc<CorbaMiddleware>) -> Self {
        self.corba.push(m);
        self
    }
}

impl ComponentExecutor for MiddlewareExecutor {
    fn invoke(
        &self,
        user: &User,
        component: &ComponentRef,
        _args: &[Value],
    ) -> Result<Value, ExecError> {
        let domain = component.domain.as_str();
        match component.kind {
            MiddlewareKind::ComPlus => {
                let m = self
                    .com
                    .iter()
                    .find(|m| m.catalog().nt_domain_name() == domain)
                    .ok_or_else(|| ExecError::component(format!("no COM+ instance for domain {domain}")))?;
                // COM components name the application as ObjectType and
                // the class as operation; method calls need Access.
                m.catalog()
                    .call(
                        user.as_str(),
                        component.object_type.as_str(),
                        component.operation.as_str(),
                        "Invoke",
                    )
                    .map(Value::Str)
                    .map_err(ExecError::component)
            }
            MiddlewareKind::Ejb => {
                let m = self
                    .ejb
                    .iter()
                    .find(|m| m.container().domain().to_string() == domain)
                    .ok_or_else(|| ExecError::component(format!("no EJB server for domain {domain}")))?;
                match m.container().invoke(
                    user.as_str(),
                    component.object_type.as_str(),
                    component.operation.as_str(),
                ) {
                    InvokeOutcome::Ok(out) => Ok(Value::Str(out)),
                    InvokeOutcome::AccessDenied(e) | InvokeOutcome::NotFound(e) => {
                        Err(ExecError::component(e))
                    }
                }
            }
            MiddlewareKind::Corba => {
                let m = self
                    .corba
                    .iter()
                    .find(|m| m.orb().domain().to_string() == domain)
                    .ok_or_else(|| ExecError::component(format!("no ORB for domain {domain}")))?;
                match m.orb().check_invoke(
                    user.as_str(),
                    None,
                    component.object_type.as_str(),
                    component.operation.as_str(),
                ) {
                    Ok(()) => Ok(Value::Str(format!(
                        "{}::{}() ok for {user}",
                        component.object_type, component.operation
                    ))),
                    Err(e) => Err(ExecError::component(e)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_middleware::naming::EjbDomain;
    use hetsec_middleware::security::MiddlewareSecurity;
    use hetsec_rbac::{PermissionGrant, RoleAssignment};

    fn ejb_fixture() -> (Arc<EjbMiddleware>, String) {
        let d = EjbDomain::new("h", "s", "j");
        let m = Arc::new(EjbMiddleware::new(d.clone()));
        let ds = d.to_string();
        m.grant(&PermissionGrant::new(ds.as_str(), "Manager", "SalariesBean", "read"))
            .unwrap();
        m.assign(&RoleAssignment::new("bob", ds.as_str(), "Manager"))
            .unwrap();
        (m, ds)
    }

    #[test]
    fn ejb_invocation_mediated_natively() {
        let (m, ds) = ejb_fixture();
        let exec = MiddlewareExecutor::new().with_ejb(m);
        let c = ComponentRef::new(MiddlewareKind::Ejb, ds.as_str(), "SalariesBean", "read");
        let out = exec.invoke(&"bob".into(), &c, &[]).unwrap();
        assert!(out.to_string().contains("SalariesBean.read"));
        // The native container denies an unauthorised caller even though
        // the executor was reached.
        assert!(exec.invoke(&"mallory".into(), &c, &[]).is_err());
    }

    #[test]
    fn com_invocation() {
        let m = Arc::new(ComMiddleware::new("CORP"));
        m.catalog().register_class("SalariesDB", "SalaryRecord");
        m.grant(&PermissionGrant::new("CORP", "Clerk", "SalariesDB", "Access"))
            .unwrap();
        m.assign(&RoleAssignment::new("alice", "CORP", "Clerk")).unwrap();
        let exec = MiddlewareExecutor::new().with_com(m);
        let c = ComponentRef::new(MiddlewareKind::ComPlus, "CORP", "SalariesDB", "SalaryRecord");
        assert!(exec.invoke(&"alice".into(), &c, &[]).is_ok());
        assert!(exec.invoke(&"mallory".into(), &c, &[]).is_err());
    }

    #[test]
    fn corba_invocation() {
        use hetsec_middleware::naming::CorbaDomain;
        let m = Arc::new(CorbaMiddleware::new(CorbaDomain::new("zeus", "orb")));
        let ds = m.orb().domain().to_string();
        m.grant(&PermissionGrant::new(ds.as_str(), "Analyst", "Stats", "read"))
            .unwrap();
        m.assign(&RoleAssignment::new("carol", ds.as_str(), "Analyst"))
            .unwrap();
        let exec = MiddlewareExecutor::new().with_corba(m);
        let c = ComponentRef::new(MiddlewareKind::Corba, ds.as_str(), "Stats", "read");
        assert!(exec.invoke(&"carol".into(), &c, &[]).is_ok());
        assert!(exec.invoke(&"mallory".into(), &c, &[]).is_err());
    }

    #[test]
    fn unknown_domain_reported() {
        let exec = MiddlewareExecutor::new();
        let c = ComponentRef::new(MiddlewareKind::Ejb, "ghost/d/j", "B", "m");
        let err = exec.invoke(&"u".into(), &c, &[]).unwrap_err();
        assert!(err.detail.contains("no EJB server"));
    }
}
