//! A WebCom client environment (Figure 3, right side).
//!
//! Each client runs on its own thread, receiving [`ScheduleRequest`]s.
//! For every request it performs the paper's mutual mediation:
//!
//! 1. *authenticate the master*: the master's key must be authorised by
//!    the client's own trust policy to schedule this action;
//! 2. *local stack*: the client's pluggable authorisation stack (OS /
//!    middleware / trust-management layers, §5) must permit the
//!    executing user;
//! 3. only then is the component invoked.

use crate::authz::TrustManager;
use crate::protocol::{
    ClientMessage, ComponentExecutor, ExecOutcome, ScheduleReply, ScheduleRequest,
};
use crate::stack::{AuthzContext, AuthzStack};
use crossbeam::channel::{unbounded, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running client and the means to reach it.
pub struct ClientHandle {
    /// The client's name.
    pub name: String,
    /// The client's public key text (the master checks credentials
    /// against this identity).
    pub key_text: String,
    sender: Sender<ClientMessage>,
    join: Option<JoinHandle<ClientStats>>,
}

/// Counters a client reports when shut down.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests executed successfully.
    pub executed: usize,
    /// Requests refused because the master was not trusted.
    pub master_rejected: usize,
    /// Requests refused by the local stack.
    pub stack_denied: usize,
    /// Component invocation failures.
    pub failed: usize,
}

impl ClientHandle {
    /// The channel the master uses to reach this client.
    pub fn sender(&self) -> Sender<ClientMessage> {
        self.sender.clone()
    }

    /// Shuts the client down and returns its stats. Requests already in
    /// the queue are drained first; masters still holding a sender clone
    /// get `Failed` outcomes for anything sent afterwards.
    pub fn shutdown(mut self) -> ClientStats {
        let _ = self.sender.send(ClientMessage::Shutdown);
        drop(self.sender);
        self.join
            .take()
            .expect("client already joined")
            .join()
            .expect("client thread panicked")
    }
}

/// Configuration for spawning a client.
pub struct ClientConfig {
    /// Client name (diagnostics).
    pub name: String,
    /// The client's key text.
    pub key_text: String,
    /// Trust policy for *masters*: which keys may schedule work here.
    pub master_trust: Arc<TrustManager>,
    /// The local authorisation stack for executing users.
    pub stack: Arc<AuthzStack>,
    /// The component executor (wraps the local middleware).
    pub executor: Arc<dyn ComponentExecutor>,
}

/// Spawns a client thread; it runs until the request channel closes.
pub fn spawn_client(config: ClientConfig) -> ClientHandle {
    let (tx, rx) = unbounded::<ClientMessage>();
    let name = config.name.clone();
    let key_text = config.key_text.clone();
    let join = std::thread::Builder::new()
        .name(format!("webcom-client-{name}"))
        .spawn(move || {
            let mut stats = ClientStats::default();
            while let Ok(msg) = rx.recv() {
                let req = match msg {
                    ClientMessage::Request(req) => *req,
                    ClientMessage::Shutdown => break,
                };
                let outcome = handle_request(&config, &mut stats, &req);
                let _ = req.reply_to.send(ScheduleReply {
                    op_id: req.op_id,
                    client: config.name.clone(),
                    outcome,
                });
            }
            stats
        })
        .expect("spawn client thread");
    ClientHandle {
        name,
        key_text,
        sender: tx,
        join: Some(join),
    }
}

fn handle_request(
    config: &ClientConfig,
    stats: &mut ClientStats,
    req: &ScheduleRequest,
) -> ExecOutcome {
    // 1. Authenticate/authorise the master.
    for cred in &req.credentials {
        // Credentials travel with the request; invalid ones are simply
        // not taken into account.
        let _ = config.master_trust.add_credential(cred.clone());
    }
    if !config.master_trust.authorizes(&req.master_key, &req.action) {
        stats.master_rejected += 1;
        return ExecOutcome::Denied(format!(
            "client {}: master key not authorised to schedule {}",
            config.name,
            req.action.component.identifier()
        ));
    }
    // 2. Local stacked mediation for the executing user.
    let ctx = AuthzContext {
        user: req.user.clone(),
        principal: req.principal.clone(),
        action: req.action.clone(),
        credentials: req.credentials.clone(),
    };
    let decision = config.stack.decide(&ctx);
    if !decision.permitted {
        stats.stack_denied += 1;
        let reasons: Vec<String> = decision
            .trace
            .iter()
            .filter_map(|(name, v)| match v {
                crate::stack::Verdict::Deny(r) => Some(format!("{name}: {r}")),
                _ => None,
            })
            .collect();
        return ExecOutcome::Denied(format!(
            "client {}: stack denied [{}]",
            config.name,
            reasons.join("; ")
        ));
    }
    // 3. Execute.
    match config
        .executor
        .invoke(&req.user, &req.action.component, &req.args)
    {
        Ok(v) => {
            stats.executed += 1;
            ExecOutcome::Ok(v)
        }
        Err(e) => {
            stats.failed += 1;
            ExecOutcome::Failed(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authz::ScheduledAction;
    use crate::protocol::ArithComponentExecutor;
    use crate::stack::TrustLayer;
    use hetsec_graphs::Value;
    use hetsec_middleware::component::ComponentRef;
    use hetsec_middleware::naming::MiddlewareKind;

    fn action(op: &str) -> ScheduledAction {
        ScheduledAction::new(
            ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", op),
            "Dom",
            "Worker",
        )
    }

    fn permissive_tm(policy: &str) -> Arc<TrustManager> {
        let tm = TrustManager::permissive();
        tm.add_policy(policy).unwrap();
        Arc::new(tm)
    }

    fn client() -> ClientHandle {
        // Masters: trust Kmaster for anything in app_domain WebCom.
        let master_trust = permissive_tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        // Users: trust Kworker for the Dom/Worker role.
        let user_tm = permissive_tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\n\
             Conditions: app_domain==\"WebCom\" && Domain==\"Dom\" && Role==\"Worker\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        spawn_client(ClientConfig {
            name: "c1".to_string(),
            key_text: "Kc1".to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        })
    }

    fn roundtrip(handle: &ClientHandle, req_action: ScheduledAction, master: &str, principal: &str) -> ExecOutcome {
        let (tx, rx) = unbounded();
        handle
            .sender()
            .send(ClientMessage::Request(Box::new(ScheduleRequest {
                op_id: 7,
                action: req_action,
                user: "worker".into(),
                principal: principal.to_string(),
                master_key: master.to_string(),
                credentials: vec![],
                args: vec![Value::Int(20), Value::Int(22)],
                reply_to: tx,
            })))
            .unwrap();
        let reply = rx.recv().unwrap();
        assert_eq!(reply.op_id, 7);
        assert_eq!(reply.client, "c1");
        reply.outcome
    }

    #[test]
    fn executes_authorised_request() {
        let c = client();
        let out = roundtrip(&c, action("add"), "Kmaster", "Kworker");
        assert_eq!(out, ExecOutcome::Ok(Value::Int(42)));
        let stats = c.shutdown();
        assert_eq!(stats.executed, 1);
    }

    #[test]
    fn rejects_untrusted_master() {
        let c = client();
        let out = roundtrip(&c, action("add"), "Kimposter", "Kworker");
        assert!(matches!(out, ExecOutcome::Denied(ref m) if m.contains("master")));
        let stats = c.shutdown();
        assert_eq!(stats.master_rejected, 1);
        assert_eq!(stats.executed, 0);
    }

    #[test]
    fn stack_denies_unauthorised_user() {
        let c = client();
        let out = roundtrip(&c, action("add"), "Kmaster", "Kstranger");
        assert!(matches!(out, ExecOutcome::Denied(ref m) if m.contains("stack denied")));
        let stats = c.shutdown();
        assert_eq!(stats.stack_denied, 1);
    }

    #[test]
    fn component_failure_reported() {
        let c = client();
        let out = roundtrip(&c, action("no-such-op"), "Kmaster", "Kworker");
        assert!(matches!(out, ExecOutcome::Failed(_)));
        let stats = c.shutdown();
        assert_eq!(stats.failed, 1);
    }
}
