//! A WebCom client environment (Figure 3, right side).
//!
//! The mediation/execution logic lives in [`ClientEngine`], shared by
//! every transport frontend: [`spawn_client`] runs the engine on its own
//! thread behind an in-process channel, and [`crate::net::serve_tcp`]
//! runs the same engine behind a TCP listener. For every request the
//! engine performs the paper's mutual mediation:
//!
//! 1. *authenticate the master*: the master's key must be authorised by
//!    the client's own trust policy to schedule this action (credentials
//!    presented with the request are considered request-scoped);
//! 2. *local stack*: the client's pluggable authorisation stack (OS /
//!    middleware / trust-management layers, §5) must permit the
//!    executing user;
//! 3. only then is the component invoked.
//!
//! The engine also keeps an *executed-op memo*: the recorded outcome of
//! every operation it has run, keyed by `(master_key, op_id)`. When a
//! master re-asks about an operation — its first call timed out after
//! the client had already executed, so the master cannot know whether
//! the work happened — the memo replays the recorded result instead of
//! executing a second time. This is what makes the master's
//! retry-after-timeout path duplicate-safe for non-idempotent
//! components.

use crate::audit::AuditLog;
use crate::authz::{AuthzRequest, TrustManager};
use crate::protocol::{ComponentExecutor, ExecOutcome, ScheduleReply, ScheduleRequest};
use crate::stack::{AuthzContext, AuthzStack};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How many executed-op outcomes the memo retains (FIFO eviction). Far
/// more than any plausible in-flight window; bounds memory on
/// long-lived clients.
const OP_MEMO_CAPACITY: usize = 1024;

/// The envelope the in-process fabric delivers to a client thread: work
/// plus the reply path, or an orderly shutdown marker. The reply sender
/// rides in the envelope — transport plumbing — so the
/// [`ScheduleRequest`] itself stays plain serializable data.
pub enum ClientMessage {
    /// A scheduling request (boxed: requests dwarf the shutdown marker)
    /// and where its reply goes.
    Request(Box<ScheduleRequest>, Sender<ScheduleReply>),
    /// Stop after draining the queue up to this point.
    Shutdown,
}

/// Counters a client reports when shut down.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests executed successfully.
    pub executed: usize,
    /// Requests refused because the master was not trusted.
    pub master_rejected: usize,
    /// Requests refused by the local stack.
    pub stack_denied: usize,
    /// Component invocation failures.
    pub failed: usize,
    /// Requests answered from the executed-op memo instead of running
    /// again (the master re-asked after a timeout or failover).
    pub replayed: usize,
    /// Verdict-stamp admissions: credential verdicts accepted from
    /// request stamps, verification skips (already cached), rejections
    /// (bad signature or untrusted issuer), and stale-epoch drops.
    pub stamps: crate::stamp::StampStats,
}

/// The executed-op memo: recorded outcomes keyed by `(master_key,
/// op_id)`, evicted FIFO at [`OP_MEMO_CAPACITY`]. Only *executions*
/// are recorded (success or deterministic failure) — refusals are
/// re-decided, and retryable failures are re-run on purpose.
#[derive(Default)]
struct OpMemo {
    map: HashMap<(String, u64), ExecOutcome>,
    order: VecDeque<(String, u64)>,
}

impl OpMemo {
    fn get(&self, key: &(String, u64)) -> Option<ExecOutcome> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: (String, u64), outcome: ExecOutcome) {
        if self.map.insert(key.clone(), outcome).is_none() {
            self.order.push_back(key);
            while self.order.len() > OP_MEMO_CAPACITY {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

/// Configuration for a client engine.
pub struct ClientConfig {
    /// Client name (diagnostics).
    pub name: String,
    /// The client's key text.
    pub key_text: String,
    /// Trust policy for *masters*: which keys may schedule work here.
    pub master_trust: Arc<TrustManager>,
    /// The local authorisation stack for executing users.
    pub stack: Arc<AuthzStack>,
    /// The component executor (wraps the local middleware).
    pub executor: Arc<dyn ComponentExecutor>,
}

/// The transport-independent client: mutual mediation plus execution.
/// Frontends (channel thread, TCP server) feed it requests and ship its
/// replies back however they like.
pub struct ClientEngine {
    config: ClientConfig,
    stats: Mutex<ClientStats>,
    audit: Option<Arc<AuditLog>>,
    memo: Mutex<OpMemo>,
    stamp_verifier: Option<Arc<crate::stamp::StampVerifier>>,
}

impl ClientEngine {
    /// An engine for `config`.
    pub fn new(config: ClientConfig) -> Self {
        ClientEngine {
            config,
            stats: Mutex::new(ClientStats::default()),
            audit: None,
            memo: Mutex::new(OpMemo::default()),
            stamp_verifier: None,
        }
    }

    /// Admits verdict stamps presented with requests through `verifier`.
    /// For the amortisation to reach the master-trust decision, the
    /// verifier's cache must be the one `master_trust` (and any
    /// [`TrustLayer`](crate::stack::TrustLayer) in the stack) verifies
    /// through — share it with
    /// [`TrustManager::share_verify_cache`](crate::authz::TrustManager::share_verify_cache).
    pub fn with_stamp_verifier(mut self, verifier: Arc<crate::stamp::StampVerifier>) -> Self {
        self.stamp_verifier = Some(verifier);
        self
    }

    /// Records every local-stack decision into `log` (the network
    /// frontends enable this so a serving client keeps an audit trail of
    /// what remote masters asked for).
    pub fn with_audit(mut self, log: Arc<AuditLog>) -> Self {
        self.audit = Some(log);
        self
    }

    /// The client's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The client's key text.
    pub fn key_text(&self) -> &str {
        &self.config.key_text
    }

    /// Counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats.lock().clone()
    }

    /// Handles one request end to end and builds the correlated reply.
    pub fn handle(&self, req: &ScheduleRequest) -> ScheduleReply {
        let (outcome, replayed) = self.decide_and_execute(req);
        ScheduleReply {
            op_id: req.op_id,
            client: self.config.name.clone(),
            outcome,
            replayed,
        }
    }

    fn decide_and_execute(&self, req: &ScheduleRequest) -> (ExecOutcome, bool) {
        let config = &self.config;
        // 0. Admit verdict stamps before any credential is verified, so
        // the per-credential signature checks below become cache hits.
        // Stamps only ever pre-answer signature verdicts — both
        // mediation steps still run in full.
        if let Some(verifier) = &self.stamp_verifier {
            if !req.stamps.is_empty() {
                let delta = verifier.admit(&req.stamps);
                self.stats.lock().stamps.merge(&delta);
            }
        }
        // 1. Authenticate/authorise the master. Credentials presented
        // with the request are evaluated request-scoped: they support
        // this decision but are never persisted into the client's store.
        let master_authorised = config.master_trust.decide(
            &AuthzRequest::principal(&req.master_key)
                .action(&req.action)
                .credentials(&req.credentials),
        );
        if !master_authorised {
            self.stats.lock().master_rejected += 1;
            return (
                ExecOutcome::Denied(format!(
                    "client {}: master key not authorised to schedule {}",
                    config.name,
                    req.action.component.identifier()
                )),
                false,
            );
        }
        // 1b. Executed-op memo: if this (master, op) already ran here,
        // replay the recorded outcome instead of executing twice. The
        // check deliberately sits *after* master mediation — a replay
        // still requires an authorised master — but before the stack,
        // because the stack already permitted the recorded execution.
        let memo_key = (req.master_key.clone(), req.op_id);
        if let Some(outcome) = self.memo.lock().get(&memo_key) {
            self.stats.lock().replayed += 1;
            return (outcome, true);
        }
        // 2. Local stacked mediation for the executing user.
        let ctx = AuthzContext {
            user: req.user.clone(),
            principal: req.principal.clone(),
            action: req.action.clone(),
            credentials: req.credentials.clone(),
        };
        let decision = config.stack.decide(&ctx);
        if let Some(audit) = &self.audit {
            audit.record(&ctx, &decision);
        }
        if !decision.permitted {
            self.stats.lock().stack_denied += 1;
            let reasons: Vec<String> = decision
                .trace
                .iter()
                .filter_map(|(name, v)| match v {
                    crate::stack::Verdict::Deny(r) => Some(format!("{name}: {r}")),
                    _ => None,
                })
                .collect();
            return (
                ExecOutcome::Denied(format!(
                    "client {}: stack denied [{}]",
                    config.name,
                    reasons.join("; ")
                )),
                false,
            );
        }
        // 3. Execute, and memoise what actually ran: successes and
        // deterministic failures replay on a re-ask; transient
        // (retryable) failures are *not* memoised — the master retries
        // those on purpose, expecting a fresh attempt.
        let outcome = match config
            .executor
            .invoke(&req.user, &req.action.component, &req.args)
        {
            Ok(v) => {
                self.stats.lock().executed += 1;
                ExecOutcome::Ok(v)
            }
            Err(e) => {
                self.stats.lock().failed += 1;
                ExecOutcome::Failed(e)
            }
        };
        let memoise = match &outcome {
            ExecOutcome::Ok(_) => true,
            ExecOutcome::Failed(e) => !e.retryable,
            ExecOutcome::Denied(_) => false,
        };
        if memoise {
            self.memo.lock().insert(memo_key, outcome.clone());
        }
        (outcome, false)
    }
}

/// A running channel-fabric client and the means to reach it.
pub struct ClientHandle {
    /// The client's name.
    pub name: String,
    /// The client's public key text (the master checks credentials
    /// against this identity).
    pub key_text: String,
    sender: Sender<ClientMessage>,
    join: Option<JoinHandle<ClientStats>>,
}

impl ClientHandle {
    /// The channel the master uses to reach this client.
    pub fn sender(&self) -> Sender<ClientMessage> {
        self.sender.clone()
    }

    /// Shuts the client down and returns its stats. Requests already in
    /// the queue are drained first; masters still holding a sender clone
    /// get transport errors for anything sent afterwards.
    pub fn shutdown(mut self) -> ClientStats {
        let _ = self.sender.send(ClientMessage::Shutdown);
        drop(self.sender);
        self.join
            .take()
            .expect("client already joined")
            .join()
            .expect("client thread panicked")
    }
}

/// Spawns a client thread; it runs until the request channel closes.
pub fn spawn_client(config: ClientConfig) -> ClientHandle {
    spawn_engine(Arc::new(ClientEngine::new(config)))
}

/// Spawns a channel frontend for an existing engine (lets one engine
/// serve the channel fabric and a TCP listener at once).
pub fn spawn_engine(engine: Arc<ClientEngine>) -> ClientHandle {
    let (tx, rx) = unbounded::<ClientMessage>();
    let name = engine.name().to_string();
    let key_text = engine.key_text().to_string();
    let join = std::thread::Builder::new()
        .name(format!("webcom-client-{name}"))
        .spawn(move || {
            while let Ok(msg) = rx.recv() {
                let (req, reply_to) = match msg {
                    ClientMessage::Request(req, reply_to) => (req, reply_to),
                    ClientMessage::Shutdown => break,
                };
                let _ = reply_to.send(engine.handle(&req));
            }
            engine.stats()
        })
        .expect("spawn client thread");
    ClientHandle {
        name,
        key_text,
        sender: tx,
        join: Some(join),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authz::ScheduledAction;
    use crate::protocol::ArithComponentExecutor;
    use crate::stack::TrustLayer;
    use hetsec_graphs::Value;
    use hetsec_middleware::component::ComponentRef;
    use hetsec_middleware::naming::MiddlewareKind;

    fn action(op: &str) -> ScheduledAction {
        ScheduledAction::new(
            ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", op),
            "Dom",
            "Worker",
        )
    }

    fn permissive_tm(policy: &str) -> Arc<TrustManager> {
        let tm = TrustManager::permissive();
        tm.add_policy(policy).unwrap();
        Arc::new(tm)
    }

    fn client() -> ClientHandle {
        // Masters: trust Kmaster for anything in app_domain WebCom.
        let master_trust = permissive_tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        // Users: trust Kworker for the Dom/Worker role.
        let user_tm = permissive_tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\n\
             Conditions: app_domain==\"WebCom\" && Domain==\"Dom\" && Role==\"Worker\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        spawn_client(ClientConfig {
            name: "c1".to_string(),
            key_text: "Kc1".to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        })
    }

    fn roundtrip(
        handle: &ClientHandle,
        req_action: ScheduledAction,
        master: &str,
        principal: &str,
    ) -> ExecOutcome {
        let (tx, rx) = unbounded();
        handle
            .sender()
            .send(ClientMessage::Request(
                Box::new(ScheduleRequest {
                    op_id: 7,
                    action: req_action,
                    user: "worker".into(),
                    principal: principal.to_string(),
                    master_key: master.to_string(),
                    credentials: vec![],
                    stamps: vec![],
                    args: vec![Value::Int(20), Value::Int(22)],
                }),
                tx,
            ))
            .unwrap();
        let reply = rx.recv().unwrap();
        assert_eq!(reply.op_id, 7);
        assert_eq!(reply.client, "c1");
        reply.outcome
    }

    #[test]
    fn executes_authorised_request() {
        let c = client();
        let out = roundtrip(&c, action("add"), "Kmaster", "Kworker");
        assert_eq!(out, ExecOutcome::Ok(Value::Int(42)));
        let stats = c.shutdown();
        assert_eq!(stats.executed, 1);
    }

    #[test]
    fn rejects_untrusted_master() {
        let c = client();
        let out = roundtrip(&c, action("add"), "Kimposter", "Kworker");
        assert!(matches!(out, ExecOutcome::Denied(ref m) if m.contains("master")));
        let stats = c.shutdown();
        assert_eq!(stats.master_rejected, 1);
        assert_eq!(stats.executed, 0);
    }

    #[test]
    fn stack_denies_unauthorised_user() {
        let c = client();
        let out = roundtrip(&c, action("add"), "Kmaster", "Kstranger");
        assert!(matches!(out, ExecOutcome::Denied(ref m) if m.contains("stack denied")));
        let stats = c.shutdown();
        assert_eq!(stats.stack_denied, 1);
    }

    #[test]
    fn component_failure_reported() {
        let c = client();
        let out = roundtrip(&c, action("no-such-op"), "Kmaster", "Kworker");
        assert!(matches!(out, ExecOutcome::Failed(ref e) if !e.retryable));
        let stats = c.shutdown();
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn master_credentials_do_not_persist_into_client_store() {
        // A master presenting a delegation for itself is honoured for
        // that request only; the client's master-trust store is not
        // widened for later requests.
        let master_trust = permissive_tm(
            "Authorizer: POLICY\nLicensees: \"Kboss\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = permissive_tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        let engine = ClientEngine::new(ClientConfig {
            name: "c1".to_string(),
            key_text: "Kc1".to_string(),
            master_trust: Arc::clone(&master_trust),
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        });
        let delegation = hetsec_keynote::parser::parse_assertion(
            "Authorizer: \"Kboss\"\nLicensees: \"Ksub\"\n",
        )
        .unwrap();
        let count_before = master_trust.credential_count();
        let mut req = ScheduleRequest {
            op_id: 1,
            action: action("add"),
            user: "worker".into(),
            principal: "Kworker".to_string(),
            master_key: "Ksub".to_string(),
            credentials: vec![delegation],
            stamps: vec![],
            args: vec![Value::Int(1), Value::Int(1)],
        };
        assert!(engine.handle(&req).outcome.is_ok());
        assert_eq!(master_trust.credential_count(), count_before);
        // Without the delegation the sub-master is rejected.
        req.op_id = 2;
        req.credentials.clear();
        assert!(matches!(
            engine.handle(&req).outcome,
            ExecOutcome::Denied(ref m) if m.contains("master")
        ));
    }

    /// Counts invocations so tests can detect duplicate executions.
    struct CountingExecutor(std::sync::atomic::AtomicUsize);

    impl ComponentExecutor for CountingExecutor {
        fn invoke(
            &self,
            user: &hetsec_rbac::User,
            component: &ComponentRef,
            args: &[Value],
        ) -> Result<Value, crate::protocol::ExecError> {
            self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            ArithComponentExecutor.invoke(user, component, args)
        }
    }

    fn counting_engine() -> (ClientEngine, Arc<CountingExecutor>) {
        let master_trust = permissive_tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = permissive_tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        let executor = Arc::new(CountingExecutor(std::sync::atomic::AtomicUsize::new(0)));
        let engine = ClientEngine::new(ClientConfig {
            name: "c1".to_string(),
            key_text: "Kc1".to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::clone(&executor) as Arc<dyn ComponentExecutor>,
        });
        (engine, executor)
    }

    fn request(op_id: u64, op: &str) -> ScheduleRequest {
        ScheduleRequest {
            op_id,
            action: action(op),
            user: "worker".into(),
            principal: "Kworker".to_string(),
            master_key: "Kmaster".to_string(),
            credentials: vec![],
            stamps: vec![],
            args: vec![Value::Int(20), Value::Int(22)],
        }
    }

    #[test]
    fn memo_replays_instead_of_double_executing() {
        let (engine, executor) = counting_engine();
        let req = request(11, "add");
        let first = engine.handle(&req);
        assert_eq!(first.outcome, ExecOutcome::Ok(Value::Int(42)));
        assert!(!first.replayed);
        // The master re-asks (its first call timed out): same result,
        // flagged as a replay, with no second execution.
        let second = engine.handle(&req);
        assert_eq!(second.outcome, ExecOutcome::Ok(Value::Int(42)));
        assert!(second.replayed);
        assert_eq!(executor.0.load(std::sync::atomic::Ordering::SeqCst), 1);
        let stats = engine.stats();
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.replayed, 1);
    }

    #[test]
    fn memo_records_deterministic_failures_but_is_keyed_by_op() {
        let (engine, executor) = counting_engine();
        // A deterministic component failure replays too: re-running a
        // known-bad op buys nothing and may have side effects.
        let bad = request(21, "no-such-op");
        assert!(matches!(engine.handle(&bad).outcome, ExecOutcome::Failed(_)));
        let again = engine.handle(&bad);
        assert!(again.replayed);
        // A different op id executes fresh.
        let good = request(22, "add");
        assert!(!engine.handle(&good).replayed);
        assert_eq!(executor.0.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn memo_replay_still_requires_an_authorised_master() {
        let (engine, _executor) = counting_engine();
        assert!(engine.handle(&request(31, "add")).outcome.is_ok());
        // An imposter re-asking about the same op id is rejected before
        // the memo is consulted: replay is not an authorisation bypass.
        let mut imposter = request(31, "add");
        imposter.master_key = "Kimposter".to_string();
        let reply = engine.handle(&imposter);
        assert!(matches!(reply.outcome, ExecOutcome::Denied(_)));
        assert!(!reply.replayed);
    }

    #[test]
    fn memo_evicts_fifo_at_capacity() {
        let (engine, executor) = counting_engine();
        assert!(engine.handle(&request(0, "add")).outcome.is_ok());
        // Push op 0 out of the memo window.
        for i in 1..=(OP_MEMO_CAPACITY as u64) {
            assert!(engine.handle(&request(i, "add")).outcome.is_ok());
        }
        // Op 0 was evicted: a re-ask executes again (the memo is a
        // bounded window, not a permanent ledger).
        assert!(!engine.handle(&request(0, "add")).replayed);
        assert_eq!(
            executor.0.load(std::sync::atomic::Ordering::SeqCst),
            OP_MEMO_CAPACITY + 2
        );
    }

    #[test]
    fn engine_audit_records_stack_decisions() {
        let log = Arc::new(AuditLog::new(8));
        let master_trust = permissive_tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = permissive_tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        let engine = ClientEngine::new(ClientConfig {
            name: "c1".to_string(),
            key_text: "Kc1".to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        })
        .with_audit(Arc::clone(&log));
        let req = ScheduleRequest {
            op_id: 9,
            action: action("add"),
            user: "worker".into(),
            principal: "Kworker".to_string(),
            master_key: "Kmaster".to_string(),
            credentials: vec![],
            stamps: vec![],
            args: vec![Value::Int(2), Value::Int(2)],
        };
        assert!(engine.handle(&req).outcome.is_ok());
        let mut denied = req.clone();
        denied.op_id = 10;
        denied.principal = "Kstranger".to_string();
        assert!(!engine.handle(&denied).outcome.is_ok());
        assert_eq!(log.totals(), (1, 1));
        assert_eq!(log.recent(10).len(), 2);
    }
}
