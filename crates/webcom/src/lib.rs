//! Secure WebCom: the distributed metacomputing environment that
//! coordinates middleware components under a unified, interoperable
//! security architecture — the system the paper describes.
//!
//! * [`authz`] — scheduling actions as KeyNote queries (Figure 3's TM
//!   mediation), the per-environment [`authz::TrustManager`];
//! * [`stack`] — the stacked L0-L3 pluggable authorisation architecture
//!   (Figure 10): OS, middleware, trust-management and application
//!   layers with configurable combination rules;
//! * [`protocol`] / [`client`] / [`master`] — the master/client fabric
//!   (Figure 3): mutual mediation, component execution, and the master
//!   as a condensed-graph [`hetsec_graphs::OpExecutor`] so evaluating a
//!   graph distributes the application;
//! * [`keycom`] — the automated administration service applying
//!   credential-backed policy updates to middleware catalogues
//!   (Figure 8);
//! * [`ide`] — headless component-palette interrogation and partial
//!   execution specifications (Figure 11, §6).

pub mod audit;
pub mod authz;
pub mod cache;
pub mod environment;
pub mod executor;
pub mod client;
pub mod ide;
pub mod keycom;
pub mod master;
pub mod protocol;
pub mod stack;

pub use audit::{AuditLog, AuditRecord, AuditedStack};
pub use authz::{ScheduledAction, TrustManager};
pub use cache::{decision_fingerprint, CacheKey, CacheStats, DecisionCache};
pub use client::{spawn_client, ClientConfig, ClientHandle, ClientStats};
pub use environment::EnvironmentBuilder;
pub use executor::MiddlewareExecutor;
pub use ide::{interrogate, resolve_spec, Combo, ComponentPalette, PaletteEntry, PartialSpec};
pub use keycom::{KeyComError, KeyComService, PolicyUpdateRequest};
pub use master::{Binding, MasterStats, WebComMaster};
pub use protocol::{
    ArithComponentExecutor, ClientMessage, ComponentExecutor, ExecOutcome, ScheduleReply,
    ScheduleRequest,
};
pub use stack::{
    ApplicationLayer, AuthzContext, AuthzLayer, AuthzStack, CombinationRule, LayerLevel,
    MiddlewareLayer, StackDecision, TrustLayer, UnixOsLayer, Verdict, WindowsOsLayer,
};
