//! Secure WebCom: the distributed metacomputing environment that
//! coordinates middleware components under a unified, interoperable
//! security architecture — the system the paper describes.
//!
//! * [`authz`] — scheduling actions as KeyNote queries (Figure 3's TM
//!   mediation), the per-environment [`authz::TrustManager`];
//! * [`stack`] — the stacked L0-L3 pluggable authorisation architecture
//!   (Figure 10): OS, middleware, trust-management and application
//!   layers with configurable combination rules;
//! * [`protocol`] / [`client`] / [`master`] — the master/client fabric
//!   (Figure 3): mutual mediation, component execution, and the master
//!   as a condensed-graph [`hetsec_graphs::OpExecutor`] so evaluating a
//!   graph distributes the application;
//! * [`health`] — per-client health tracking for the master's
//!   dispatcher: EWMA latency/error-rate, a three-state circuit
//!   breaker, and bounded in-flight quotas (backpressure);
//! * [`wire`] / [`transport`] / [`net`] — the transport-agnostic
//!   scheduling protocol: length-prefixed framing, the
//!   [`transport::ClientTransport`] abstraction (in-process channels,
//!   TCP, fault injection), and the TCP server frontend for clients;
//! * [`keycom`] — the automated administration service applying
//!   credential-backed policy updates to middleware catalogues
//!   (Figure 8);
//! * [`ide`] — headless component-palette interrogation and partial
//!   execution specifications (Figure 11, §6).

pub mod audit;
pub mod authz;
pub mod cache;
pub mod environment;
pub mod executor;
pub mod client;
pub mod fabric;
pub mod health;
pub mod histogram;
pub mod ide;
pub mod keycom;
pub mod load;
pub mod master;
pub mod mux;
pub mod net;
pub mod protocol;
pub mod stack;
pub mod stamp;
pub mod transport;
pub mod wire;

pub use audit::{AuditLog, AuditRecord, AuditedStack};
pub use authz::{AuthzRequest, ScheduledAction, TrustManager, ADAPTER_ATTRIBUTES};
pub use cache::{decision_fingerprint, CacheKey, CacheStats, DecisionCache};
pub use client::{
    spawn_client, spawn_engine, ClientConfig, ClientEngine, ClientHandle, ClientMessage,
    ClientStats,
};
pub use environment::EnvironmentBuilder;
pub use executor::MiddlewareExecutor;
pub use fabric::{
    serve_master, LocalPeerLink, MasterServer, PeerLink, ShardInfo, ShardRing, ShardRouter,
    TcpPeerLink, DEFAULT_VNODES,
};
pub use health::{BreakerState, ClientHealth, HealthConfig, HealthSnapshot};
pub use histogram::{LatencyHistogram, LatencySnapshot};
pub use ide::{interrogate, resolve_spec, Combo, ComponentPalette, PaletteEntry, PartialSpec};
pub use keycom::{KeyComError, KeyComService, PolicyUpdateRequest};
pub use load::{
    principal_key, run_load, run_load_with_stack, synthetic_stack, Arrival, LoadConfig,
    LoadReport, SleepingExecutor, ZipfSampler,
};
pub use master::{Binding, BurstOp, MasterStats, RetryPolicy, WebComMaster};
pub use mux::{MuxTransport, DEFAULT_WINDOW};
pub use net::{serve_tcp, serve_tcp_with, ServeOptions, TcpClientServer};
pub use protocol::{
    ArithComponentExecutor, ClientIdentity, ComponentExecutor, ExecError, ExecErrorKind,
    ExecOutcome, ScheduleReply, ScheduleRequest, WireRequest, WireResponse, MAX_FORWARD_HOPS,
};
pub use transport::{
    ChannelTransport, ClientTransport, FaultyTransport, TcpTransport, TransportError,
};
pub use stamp::{StampIssuer, StampStats, StampVerifier};
pub use wire::{decode_frame, encode_frame, read_frame, write_frame, WireError, MAX_FRAME_LEN};
pub use stack::{
    ApplicationLayer, AuthzContext, AuthzLayer, AuthzStack, CombinationRule, LayerLevel,
    MiddlewareLayer, StackDecision, TrustLayer, UnixOsLayer, Verdict, WindowsOsLayer,
};
