//! Length-prefixed wire framing for the scheduling protocol.
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 serde_json. The format is deliberately boring: framing errors
//! must be *errors* — truncated, oversized and garbage frames all
//! surface as [`WireError`], never as a panic — because the master must
//! keep scheduling when a client feeds it junk.

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Upper bound on a single frame. A schedule request is a component
/// reference, a handful of credentials and the operand values; anything
/// beyond this is a corrupt length prefix or an attack, and must not
/// make the receiver allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 4 * 1024 * 1024;

/// Why a frame could not be encoded or decoded.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended inside the length prefix or the payload.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// The payload was not valid UTF-8 JSON for the expected type.
    Malformed(String),
    /// The underlying stream failed.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized(n) => {
                write!(f, "frame length {n} exceeds maximum {MAX_FRAME_LEN}")
            }
            WireError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
            WireError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// True when the error means the peer timed out rather than sent
    /// garbage (read timeouts surface as `Io(WouldBlock|TimedOut)`).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

fn io_error(e: std::io::Error) -> WireError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        WireError::Truncated
    } else {
        WireError::Io(e)
    }
}

/// Encodes one value as a frame: 4-byte big-endian length + JSON bytes.
pub fn encode_frame<T: Serialize>(value: &T) -> Result<Vec<u8>, WireError> {
    let body = serde_json::to_string(value).map_err(|e| WireError::Malformed(e.to_string()))?;
    let body = body.into_bytes();
    if body.len() > MAX_FRAME_LEN {
        return Err(WireError::Oversized(body.len()));
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// Writes one frame to a stream.
pub fn write_frame<T: Serialize, W: Write>(writer: &mut W, value: &T) -> Result<(), WireError> {
    let frame = encode_frame(value)?;
    writer.write_all(&frame).map_err(io_error)?;
    writer.flush().map_err(io_error)
}

/// Reads one frame from a stream. A short read is [`WireError::Truncated`],
/// an absurd length prefix is [`WireError::Oversized`], and a payload
/// that is not UTF-8 JSON of the expected shape is
/// [`WireError::Malformed`].
pub fn read_frame<T: for<'de> Deserialize<'de>, R: Read>(reader: &mut R) -> Result<T, WireError> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf).map_err(io_error)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(io_error)?;
    let text = std::str::from_utf8(&body)
        .map_err(|e| WireError::Malformed(format!("not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Decodes one frame from a byte slice (convenience for tests/fuzzing).
pub fn decode_frame<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, WireError> {
    let mut cursor = bytes;
    read_frame(&mut cursor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{WireRequest, WireResponse};

    #[test]
    fn roundtrip() {
        let frame = encode_frame(&WireRequest::Identify).unwrap();
        let back: WireRequest = decode_frame(&frame).unwrap();
        assert_eq!(back, WireRequest::Identify);
    }

    #[test]
    fn truncated_frames_error() {
        let frame = encode_frame(&WireRequest::Identify).unwrap();
        for cut in 0..frame.len() {
            let err = decode_frame::<WireRequest>(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_errors_without_allocating() {
        let mut frame = vec![0xFF, 0xFF, 0xFF, 0xFF];
        frame.extend_from_slice(b"ignored");
        match decode_frame::<WireResponse>(&frame) {
            Err(WireError::Oversized(n)) => assert!(n > MAX_FRAME_LEN),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn garbage_payload_is_malformed() {
        let mut frame = (7u32).to_be_bytes().to_vec();
        frame.extend_from_slice(b"not-js\xFF");
        assert!(matches!(
            decode_frame::<WireRequest>(&frame),
            Err(WireError::Malformed(_))
        ));
    }
}
