//! Epoch-invalidated authorization decision cache.
//!
//! Trust-management mediation sits on every scheduling hot path
//! (Figure 3: the master consults its trust manager for every client ×
//! operation pair), and identical queries repeat heavily — the same
//! client keys are matched against the same action attributes for every
//! fireable node. [`DecisionCache`] memoises those boolean decisions,
//! keyed on the requesting principal and a fingerprint of the action
//! attributes (plus any request-presented credentials), and stamps each
//! entry with the [`KeyNoteSession`](hetsec_keynote::KeyNoteSession)
//! *epoch* under which it was computed.
//!
//! Invalidation is by epoch comparison, not by enumeration: every
//! semantic mutation of the underlying session (policy/credential
//! addition, value-set change, revocation) bumps the session epoch, and
//! a lookup only hits when the entry's epoch equals the session's
//! current epoch. A revocation therefore takes effect on the very next
//! decision without the cache having to know *which* entries the
//! mutation affected.

use hetsec_keynote::ast::Assertion;
use hetsec_keynote::eval::ActionAttributes;
use hetsec_keynote::print::print_assertion;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards; keeps concurrent deciders off
/// each other's locks.
const SHARDS: usize = 16;

/// Cache key: who asked, and a fingerprint of what they asked for.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The requesting principal(s), comma-joined.
    pub principal: String,
    /// Fingerprint of the action attributes, presented credentials and
    /// any caller-specific context (see [`decision_fingerprint`]).
    pub fingerprint: u64,
}

struct Entry {
    /// Session epoch the decision was computed under.
    epoch: u64,
    permitted: bool,
    /// Logical clock for least-recently-used eviction.
    last_used: u64,
}

/// Hit/miss/invalidation counters, cheap to copy out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to fall through to evaluation.
    pub misses: u64,
    /// Entries discarded because their epoch was stale (counted within
    /// the misses they caused).
    pub invalidations: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

/// A sharded, bounded, epoch-invalidated map from [`CacheKey`] to a
/// boolean authorization decision.
pub struct DecisionCache {
    shards: Vec<Mutex<HashMap<CacheKey, Entry>>>,
    capacity_per_shard: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl DecisionCache {
    /// A cache holding at most `capacity` decisions (rounded up to a
    /// multiple of the shard count).
    pub fn new(capacity: usize) -> Self {
        DecisionCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity_per_shard: capacity.div_ceil(SHARDS).max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_index(key: &CacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, Entry>> {
        &self.shards[Self::shard_index(key)]
    }

    /// Looks up a decision computed under exactly `epoch`. A stale entry
    /// (any other epoch) is discarded and counts as a miss.
    pub fn get(&self, key: &CacheKey, epoch: u64) -> Option<bool> {
        let mut shard = self.shard(key).lock();
        match shard.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                let permitted = entry.permitted;
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(permitted)
            }
            Some(_) => {
                shard.remove(key);
                drop(shard);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a decision computed under `epoch`. The caller must have
    /// read the epoch *before* evaluating, so a mutation racing with the
    /// evaluation leaves the entry stale rather than wrong.
    pub fn insert(&self, key: CacheKey, epoch: u64, permitted: bool) {
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(&key).lock();
        if shard.len() >= self.capacity_per_shard && !shard.contains_key(&key) {
            // Evict the least-recently-used entry; shards are small, so
            // a scan is cheaper than auxiliary bookkeeping.
            if let Some(victim) = shard
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(key, Entry { epoch, permitted, last_used });
    }

    /// Batched [`get`](Self::get): looks up every key, taking each
    /// shard's lock at most once per run. Results are positionally
    /// aligned with `keys`; counters are flushed to the shared atomics
    /// once per shard rather than once per lookup.
    pub fn get_many(&self, keys: &[CacheKey], epoch: u64) -> Vec<Option<bool>> {
        let mut out = vec![None; keys.len()];
        // Group lookups by shard so each lock is taken once.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); SHARDS];
        for (i, key) in keys.iter().enumerate() {
            by_shard[Self::shard_index(key)].push(i);
        }
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut invalidations = 0u64;
        let mut ticks = 0u64;
        let tick_base = self.tick.load(Ordering::Relaxed);
        for (si, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let mut shard = self.shards[si].lock();
            for &i in idxs {
                let key = &keys[i];
                match shard.get_mut(key) {
                    Some(entry) if entry.epoch == epoch => {
                        entry.last_used = tick_base + ticks;
                        ticks += 1;
                        hits += 1;
                        out[i] = Some(entry.permitted);
                    }
                    Some(_) => {
                        shard.remove(key);
                        invalidations += 1;
                        misses += 1;
                    }
                    None => misses += 1,
                }
            }
        }
        self.tick.fetch_add(ticks, Ordering::Relaxed);
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        self.invalidations.fetch_add(invalidations, Ordering::Relaxed);
        out
    }

    /// Batched [`insert`](Self::insert): stores every decision, taking
    /// each shard's lock at most once per run. Same epoch discipline as
    /// the single-entry form: read the epoch before evaluating.
    pub fn insert_many(&self, entries: Vec<(CacheKey, bool)>, epoch: u64) {
        let n = entries.len() as u64;
        if n == 0 {
            return;
        }
        let tick_base = self.tick.fetch_add(n, Ordering::Relaxed);
        let mut by_shard: Vec<Vec<(CacheKey, bool, u64)>> = vec![Vec::new(); SHARDS];
        for (i, (key, permitted)) in entries.into_iter().enumerate() {
            let si = Self::shard_index(&key);
            by_shard[si].push((key, permitted, tick_base + i as u64));
        }
        let mut evictions = 0u64;
        for (si, batch) in by_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut shard = self.shards[si].lock();
            for (key, permitted, last_used) in batch {
                if shard.len() >= self.capacity_per_shard && !shard.contains_key(&key) {
                    if let Some(victim) = shard
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone())
                    {
                        shard.remove(&victim);
                        evictions += 1;
                    }
                }
                shard.insert(key, Entry { epoch, permitted, last_used });
            }
        }
        if evictions > 0 {
            self.evictions.fetch_add(evictions, Ordering::Relaxed);
        }
    }

    /// Number of live entries (any epoch).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Counters since creation.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Fingerprints one decision's inputs: the action attributes (order
/// independent), the canonical text of every presented credential, and
/// an arbitrary caller context tag (combination rule, executing user,
/// ...). Principals are *not* folded in — they live in
/// [`CacheKey::principal`] so collisions cannot cross identities.
pub fn decision_fingerprint(
    attrs: &ActionAttributes,
    credentials: &[Assertion],
    context: &str,
) -> u64 {
    let mut pairs: Vec<(&str, &str)> = attrs.iter().collect();
    pairs.sort_unstable();
    let mut h = DefaultHasher::new();
    pairs.len().hash(&mut h);
    for (k, v) in pairs {
        k.hash(&mut h);
        v.hash(&mut h);
    }
    credentials.len().hash(&mut h);
    for c in credentials {
        print_assertion(c).hash(&mut h);
    }
    context.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(principal: &str, fp: u64) -> CacheKey {
        CacheKey { principal: principal.to_string(), fingerprint: fp }
    }

    #[test]
    fn hit_requires_matching_epoch() {
        let cache = DecisionCache::new(64);
        cache.insert(key("Ka", 1), 7, true);
        assert_eq!(cache.get(&key("Ka", 1), 7), Some(true));
        // Epoch moved: the entry is stale, discarded, and counted.
        assert_eq!(cache.get(&key("Ka", 1), 8), None);
        assert_eq!(cache.get(&key("Ka", 1), 8), None); // really gone
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn capacity_is_bounded_with_lru_eviction() {
        let cache = DecisionCache::new(16); // 1 per shard
        for i in 0..1000 {
            cache.insert(key("Ka", i), 0, i % 2 == 0);
        }
        assert!(cache.len() <= 16);
        assert!(cache.stats().evictions >= 1000 - 16);
    }

    #[test]
    fn distinct_principals_never_collide() {
        let cache = DecisionCache::new(64);
        cache.insert(key("Ka", 42), 0, true);
        assert_eq!(cache.get(&key("Kb", 42), 0), None);
    }

    #[test]
    fn fingerprint_is_attribute_order_independent() {
        let a = ActionAttributes::new().with("x", "1").with("y", "2");
        let b = ActionAttributes::new().with("y", "2").with("x", "1");
        assert_eq!(
            decision_fingerprint(&a, &[], ""),
            decision_fingerprint(&b, &[], "")
        );
        let c = ActionAttributes::new().with("x", "1").with("y", "3");
        assert_ne!(
            decision_fingerprint(&a, &[], ""),
            decision_fingerprint(&c, &[], "")
        );
        assert_ne!(
            decision_fingerprint(&a, &[], ""),
            decision_fingerprint(&a, &[], "other-context")
        );
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = DecisionCache::new(64);
        cache.insert(key("Ka", 1), 0, true);
        assert_eq!(cache.get(&key("Ka", 1), 0), Some(true));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }
}
