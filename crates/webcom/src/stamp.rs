//! Verdict-stamp issuance and fleet-trust admission for the fabric.
//!
//! The keynote layer defines what a [`VerdictStamp`] *is* (a master's
//! signed attestation of a credential's signature verdict); this module
//! decides how the fabric *uses* them:
//!
//! * [`StampIssuer`] — held by a master, verifies the credentials it
//!   forwards once (through its own verify cache) and signs one stamp
//!   per signed credential. Issuance is memoized on the trust epoch and
//!   the (append-only) credential set, so steady-state bursts reuse the
//!   same stamp vector without re-signing.
//! * [`StampVerifier`] — held by every receiving node (client engine or
//!   peer master), configured with the **fleet trust set**: the
//!   printable keys of the masters whose stamps it accepts. Admission
//!   checks one stamp signature against a fleet key — whose Montgomery
//!   context is already cached process-wide — and feeds the attested
//!   verdict into the node's [`VerifyCache`], so the per-credential
//!   verify in the compliance path becomes a cache hit. Stamps from
//!   keys outside the fleet are rejected; stamps older than the highest
//!   epoch seen from their issuer are ignored as stale, which silently
//!   falls back to full local verification.
//!
//! Stamps never bypass authorisation: compliance checking (including
//! revoked-authorizer refusal) runs unchanged on every node.

use hetsec_crypto::{KeyPair, PublicKey};
use hetsec_keynote::ast::Assertion;
use hetsec_keynote::stamp::VerdictStamp;
use hetsec_keynote::verify_cache::credential_fingerprint;
use hetsec_keynote::VerifyCache;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Admission counters: what happened to the stamps a node was shown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StampStats {
    /// Stamps whose signature checked out against a fleet key and whose
    /// verdict was admitted into the verify cache.
    pub admitted: u64,
    /// Stamps refused: issuer outside the fleet, malformed fields, or a
    /// signature that does not verify.
    pub rejected: u64,
    /// Stamps ignored because a newer epoch had already been seen from
    /// the same issuer (the credential falls back to full verification).
    pub stale: u64,
}

impl StampStats {
    /// Field-wise sum (merging per-call deltas or per-node totals).
    pub fn merge(&mut self, other: &StampStats) {
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.stale += other.stale;
    }
}

/// Memo cell contents: (trust epoch, credential count, stamp vector).
type StampMemo = Option<(u64, usize, Arc<Vec<VerdictStamp>>)>;

/// A master's stamp-signing half. One per master; the keypair is the
/// master's stamp identity and its public text is what receivers list
/// in their fleet trust set.
pub struct StampIssuer {
    key: KeyPair,
    key_text: String,
    /// The issuer's own verdict memo for the credentials it stamps —
    /// the "verify once at the home master" half of the amortisation.
    cache: VerifyCache,
    issued: AtomicU64,
    /// Memoized stamp vector keyed on (trust epoch, credential count).
    /// The master's forwarded-credential set is append-only, so the
    /// count is a revision number; any trust mutation moves the epoch.
    memo: Mutex<StampMemo>,
}

impl StampIssuer {
    /// An issuer signing with `key`.
    pub fn new(key: KeyPair) -> Self {
        let key_text = key.public().to_text();
        StampIssuer {
            key,
            key_text,
            cache: VerifyCache::new(),
            issued: AtomicU64::new(0),
            memo: Mutex::new(None),
        }
    }

    /// The printable public key receivers must add to their fleet
    /// trust set.
    pub fn key_text(&self) -> &str {
        &self.key_text
    }

    /// Stamps attesting this issuer's verdicts for `credentials` at
    /// trust epoch `epoch`. Unsigned/symbolic credentials have no
    /// verdict to attest and are skipped. Memoized: re-signing only
    /// happens when the epoch or the credential set changes.
    pub fn stamps_for(&self, epoch: u64, credentials: &[Assertion]) -> Arc<Vec<VerdictStamp>> {
        // The lock is held across issuance on purpose: concurrent
        // first-requests in a burst would otherwise all miss the memo
        // and sign the same stamps several times over.
        let mut memo = self.memo.lock();
        if let Some((memo_epoch, memo_len, stamps)) = memo.as_ref() {
            if *memo_epoch == epoch && *memo_len == credentials.len() {
                return Arc::clone(stamps);
            }
        }
        let issued_at = unix_now();
        let mut stamps = Vec::new();
        for cred in credentials {
            let Some(fp) = credential_fingerprint(cred) else {
                continue;
            };
            let status = self.cache.verify(cred);
            stamps.push(VerdictStamp::issue(&self.key, fp, &status, epoch, issued_at));
            self.issued.fetch_add(1, Ordering::Relaxed);
        }
        let stamps = Arc::new(stamps);
        *memo = Some((epoch, credentials.len(), Arc::clone(&stamps)));
        stamps
    }

    /// Total stamps signed (memo hits do not re-sign).
    pub fn issued(&self) -> u64 {
        self.issued.load(Ordering::Relaxed)
    }
}

/// A receiving node's stamp-admission half: fleet trust set, per-issuer
/// epoch watermarks, and the verify cache admitted verdicts land in.
pub struct StampVerifier {
    cache: Arc<VerifyCache>,
    /// Trusted issuer key text → parsed key. Fixed after construction:
    /// fleet membership is deployment configuration, not runtime state.
    fleet: HashMap<String, PublicKey>,
    /// Highest epoch seen per issuer; stamps below it are stale.
    watermarks: Mutex<HashMap<String, u64>>,
    admitted: AtomicU64,
    rejected: AtomicU64,
    stale: AtomicU64,
}

impl StampVerifier {
    /// A verifier admitting verdicts into `cache` (share the same cache
    /// with every trust manager on the node — see
    /// [`crate::TrustManager::share_verify_cache`]). Starts with an
    /// empty fleet: every stamp is rejected until issuers are trusted.
    pub fn new(cache: Arc<VerifyCache>) -> Self {
        StampVerifier {
            cache,
            fleet: HashMap::new(),
            watermarks: Mutex::new(HashMap::new()),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        }
    }

    /// Adds a master's stamp key to the fleet trust set. Text that does
    /// not parse as a public key (e.g. a symbolic demo key) cannot ever
    /// sign a checkable stamp and is ignored.
    pub fn trust_issuer(mut self, key_text: &str) -> Self {
        if let Ok(key) = key_text.parse::<PublicKey>() {
            self.fleet.insert(key_text.to_string(), key);
        }
        self
    }

    /// The cache admitted verdicts land in.
    pub fn cache(&self) -> &Arc<VerifyCache> {
        &self.cache
    }

    /// Admits a request's stamps, returning what happened to them as a
    /// per-call delta (cumulative totals via [`stats`]). Stamps whose
    /// verdict is already cached are skipped for free — the per-request
    /// steady state costs no RSA at all.
    ///
    /// [`stats`]: StampVerifier::stats
    pub fn admit(&self, stamps: &[VerdictStamp]) -> StampStats {
        let mut delta = StampStats::default();
        for stamp in stamps {
            let Some(fp) = stamp.fingerprint_bytes() else {
                delta.rejected += 1;
                continue;
            };
            if self.cache.lookup(&fp).is_some() {
                continue; // verdict already known; nothing to pay
            }
            let Some(issuer_key) = self.fleet.get(&stamp.issuer) else {
                delta.rejected += 1;
                continue;
            };
            {
                let watermarks = self.watermarks.lock();
                if let Some(&highest) = watermarks.get(&stamp.issuer) {
                    if stamp.epoch < highest {
                        delta.stale += 1;
                        continue;
                    }
                }
            }
            match stamp.verify_with(issuer_key) {
                Some((fp, status)) => {
                    self.cache.admit_stamped(fp, status);
                    let mut watermarks = self.watermarks.lock();
                    let entry = watermarks.entry(stamp.issuer.clone()).or_insert(0);
                    *entry = (*entry).max(stamp.epoch);
                    delta.admitted += 1;
                }
                None => delta.rejected += 1,
            }
        }
        self.admitted.fetch_add(delta.admitted, Ordering::Relaxed);
        self.rejected.fetch_add(delta.rejected, Ordering::Relaxed);
        self.stale.fetch_add(delta.stale, Ordering::Relaxed);
        delta
    }

    /// Cumulative admission counters.
    pub fn stats(&self) -> StampStats {
        StampStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_keynote::ast::{LicenseeExpr, Principal};
    use hetsec_keynote::signing::sign_assertion;
    use hetsec_keynote::SignatureStatus;

    fn signed_credential(label: &str) -> Assertion {
        let kp = KeyPair::from_label(label);
        let mut a = Assertion::new(
            Principal::key(kp.public().to_text()),
            LicenseeExpr::Principal("Kworker".to_string()),
        );
        sign_assertion(&mut a, &kp).unwrap();
        a
    }

    fn issuer() -> StampIssuer {
        StampIssuer::new(KeyPair::from_label("fleet-master-a"))
    }

    #[test]
    fn issuance_is_memoized_per_epoch_and_set() {
        let issuer = issuer();
        let creds = vec![signed_credential("mi-1"), signed_credential("mi-2")];
        let first = issuer.stamps_for(3, &creds);
        assert_eq!(first.len(), 2);
        assert_eq!(issuer.issued(), 2);
        let again = issuer.stamps_for(3, &creds);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(issuer.issued(), 2); // no re-signing
        let bumped = issuer.stamps_for(4, &creds);
        assert!(!Arc::ptr_eq(&first, &bumped));
        assert_eq!(issuer.issued(), 4);
    }

    #[test]
    fn fleet_member_stamps_are_admitted_once() {
        let issuer = issuer();
        let creds = vec![signed_credential("fa-1")];
        let stamps = issuer.stamps_for(0, &creds);
        let cache = Arc::new(VerifyCache::new());
        let verifier = StampVerifier::new(Arc::clone(&cache)).trust_issuer(issuer.key_text());
        let delta = verifier.admit(&stamps);
        assert_eq!(delta.admitted, 1);
        // Re-presenting the same stamps costs nothing and moves no
        // counters: the verdict is already cached.
        let delta = verifier.admit(&stamps);
        assert_eq!(delta, StampStats::default());
        // The admitted verdict answers the credential verify without
        // any local RSA.
        assert_eq!(cache.verify(&creds[0]), SignatureStatus::Valid);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stamped), (1, 0, 1));
    }

    #[test]
    fn non_fleet_issuer_rejected() {
        let rogue = StampIssuer::new(KeyPair::from_label("rogue-master"));
        let creds = vec![signed_credential("nf-1")];
        let stamps = rogue.stamps_for(0, &creds);
        let cache = Arc::new(VerifyCache::new());
        // Fleet contains a different master.
        let verifier =
            StampVerifier::new(Arc::clone(&cache)).trust_issuer(issuer().key_text());
        let delta = verifier.admit(&stamps);
        assert_eq!((delta.admitted, delta.rejected), (0, 1));
        assert_eq!(cache.stats().stamped, 0);
    }

    #[test]
    fn stale_epoch_stamps_are_ignored() {
        let issuer = issuer();
        let old = issuer.stamps_for(1, &[signed_credential("se-1")]);
        let new = issuer.stamps_for(5, &[signed_credential("se-2")]);
        let verifier =
            StampVerifier::new(Arc::new(VerifyCache::new())).trust_issuer(issuer.key_text());
        assert_eq!(verifier.admit(&new).admitted, 1);
        // The epoch-1 stamp arrives after epoch 5 was seen: stale, not
        // admitted — its credential would be verified in full instead.
        let delta = verifier.admit(&old);
        assert_eq!((delta.admitted, delta.stale), (0, 1));
        let totals = verifier.stats();
        assert_eq!((totals.admitted, totals.stale), (1, 1));
    }

    #[test]
    fn tampered_stamp_rejected() {
        let issuer = issuer();
        let stamps = issuer.stamps_for(0, &[signed_credential("ts-1")]);
        let mut forged = (*stamps).clone();
        forged[0].epoch += 1; // signature no longer covers the fields
        let verifier =
            StampVerifier::new(Arc::new(VerifyCache::new())).trust_issuer(issuer.key_text());
        let delta = verifier.admit(&forged);
        assert_eq!((delta.admitted, delta.rejected), (0, 1));
    }

    #[test]
    fn symbolic_fleet_keys_are_ignored() {
        let verifier = StampVerifier::new(Arc::new(VerifyCache::new())).trust_issuer("Kmaster");
        assert!(verifier.fleet.is_empty());
    }

    #[test]
    fn unsigned_credentials_produce_no_stamps() {
        let issuer = issuer();
        let unsigned = Assertion::new(
            Principal::key("Kbob"),
            LicenseeExpr::Principal("Kalice".to_string()),
        );
        let stamps = issuer.stamps_for(0, &[unsigned]);
        assert!(stamps.is_empty());
        assert_eq!(issuer.issued(), 0);
    }
}
