//! Messages between the WebCom master and its clients (Figure 3).
//!
//! Every type here is plain serializable data: a [`ScheduleRequest`]
//! carries no channel handles, so the same message crosses an
//! in-process channel fabric or a TCP connection unchanged. Reply
//! correlation is the transport's job — replies carry the request's
//! `op_id` and the transport matches them up (see
//! [`crate::transport`]). The message shapes mirror the paper's flow:
//! the master sends a component-execution request carrying its key and
//! supporting credentials; the client independently verifies the
//! master's authority and its own stack before executing and replying.

use crate::authz::ScheduledAction;
use hetsec_graphs::Value;
use hetsec_keynote::ast::Assertion;
use hetsec_keynote::stamp::VerdictStamp;
use hetsec_rbac::{Domain, User};
use serde::{Deserialize, Serialize};

/// Why an execution failed, in a form the master's retry loop can
/// classify without string matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecErrorKind {
    /// The fabric itself failed: connection refused/reset, send on a
    /// closed channel, malformed frame. Usually worth retrying on
    /// another client.
    Transport,
    /// An authorisation layer refused. Never retryable: policy does not
    /// change because we ask again.
    Authorization,
    /// The component's own business logic failed.
    Component,
    /// A deadline elapsed before the client replied.
    Timeout,
    /// The peer violated the wire protocol (e.g. a reply for the wrong
    /// operation).
    Protocol,
}

impl std::fmt::Display for ExecErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExecErrorKind::Transport => "transport",
            ExecErrorKind::Authorization => "authorization",
            ExecErrorKind::Component => "component",
            ExecErrorKind::Timeout => "timeout",
            ExecErrorKind::Protocol => "protocol",
        };
        write!(f, "{s}")
    }
}

/// A structured execution failure: what broke, whether trying again can
/// possibly help, and a human-readable detail.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecError {
    /// The failure class.
    pub kind: ExecErrorKind,
    /// Whether the master's retry loop may usefully re-attempt the
    /// operation (same or different client).
    pub retryable: bool,
    /// Human-readable detail.
    pub detail: String,
}

impl ExecError {
    /// A deterministic component failure (not retryable: the component
    /// will fail the same way again).
    pub fn component(detail: impl Into<String>) -> Self {
        ExecError {
            kind: ExecErrorKind::Component,
            retryable: false,
            detail: detail.into(),
        }
    }

    /// A transient component failure (e.g. a briefly unavailable
    /// backend) that is worth retrying.
    pub fn component_transient(detail: impl Into<String>) -> Self {
        ExecError {
            kind: ExecErrorKind::Component,
            retryable: true,
            detail: detail.into(),
        }
    }

    /// A fabric failure (connection lost, channel closed). Retryable —
    /// typically on another client.
    pub fn transport(detail: impl Into<String>) -> Self {
        ExecError {
            kind: ExecErrorKind::Transport,
            retryable: true,
            detail: detail.into(),
        }
    }

    /// A deadline expiry. Retryable on another client.
    pub fn timeout(detail: impl Into<String>) -> Self {
        ExecError {
            kind: ExecErrorKind::Timeout,
            retryable: true,
            detail: detail.into(),
        }
    }

    /// A wire-protocol violation. Not retryable against the same peer.
    pub fn protocol(detail: impl Into<String>) -> Self {
        ExecError {
            kind: ExecErrorKind::Protocol,
            retryable: false,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} error: {}", self.kind, self.detail)
    }
}

/// Why an execution did not produce a value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ExecOutcome {
    /// Execution succeeded.
    Ok(Value),
    /// An authorisation layer refused. Never retried.
    Denied(String),
    /// The execution failed; the [`ExecError`] says how and whether a
    /// retry can help.
    Failed(ExecError),
}

impl ExecOutcome {
    /// True for [`ExecOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, ExecOutcome::Ok(_))
    }

    /// A failed outcome with a deterministic component error.
    pub fn failed(detail: impl Into<String>) -> Self {
        ExecOutcome::Failed(ExecError::component(detail))
    }
}

/// A request from the master to a client. Plain data — the transport
/// layer correlates the eventual [`ScheduleReply`] by `op_id`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleRequest {
    /// Correlation id; echoed in the reply.
    pub op_id: u64,
    /// What to execute and under which (domain, role).
    pub action: ScheduledAction,
    /// The user identity to execute under.
    pub user: User,
    /// The user's key (trust-management identity).
    pub principal: String,
    /// The master's key: clients verify the master is authorised to
    /// schedule to them (mutual mediation, Figure 3).
    pub master_key: String,
    /// Credentials supporting the request (e.g. delegation chains).
    pub credentials: Vec<Assertion>,
    /// Verdict stamps: the home master's signed attestations of the
    /// signature verdicts it reached for `credentials`, letting the
    /// receiving node admit them into its verify cache after one
    /// cached-context stamp check instead of a full RSA verify per
    /// credential. Defaults to empty on the wire, so requests from
    /// masters predating stamps still parse.
    #[serde(default)]
    pub stamps: Vec<VerdictStamp>,
    /// Operand values.
    pub args: Vec<Value>,
}

/// A client's reply.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReply {
    /// Correlation id (copied from the request).
    pub op_id: u64,
    /// Which client executed (or refused).
    pub client: String,
    /// The outcome.
    pub outcome: ExecOutcome,
    /// True when the client served this reply from its executed-op memo
    /// instead of executing again — i.e. the master re-asked about an
    /// operation the client had already run (typically after a
    /// timed-out first call). Defaults to `false` on the wire so
    /// replies from older clients still parse.
    #[serde(default)]
    pub replayed: bool,
}

/// What a serving client tells a connecting master about itself — the
/// network analogue of registering a [`crate::client::ClientHandle`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClientIdentity {
    /// The client's name (diagnostics).
    pub name: String,
    /// The client's public key text (the master mediates scheduling
    /// against this identity).
    pub key_text: String,
    /// Domains this client serves.
    pub domains: Vec<Domain>,
}

/// Maximum number of peer-to-peer forwards an op may take before a
/// master rejects it as mis-routed. With consistent rings every op
/// reaches its home shard in one hop; anything deeper means the peers
/// disagree about ring layout and the op would loop forever.
pub const MAX_FORWARD_HOPS: u8 = 3;

/// One frame from master to client.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireRequest {
    /// Ask the client who it is (registration handshake).
    Identify,
    /// Schedule an operation (boxed: requests dwarf the handshake
    /// variant).
    Schedule(Box<ScheduleRequest>),
    /// Master-to-master: schedule an operation on behalf of a peer
    /// that received it but does not own the principal's shard. `hops`
    /// counts forwards already taken; a receiver at
    /// [`MAX_FORWARD_HOPS`] rejects instead of forwarding again, which
    /// turns a ring-configuration loop into an error rather than a
    /// livelock.
    Forward {
        /// The operation being forwarded (unchanged from the original).
        request: Box<ScheduleRequest>,
        /// Forwards taken so far, including the one carrying this frame.
        hops: u8,
    },
}

/// One frame from client to master.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireResponse {
    /// Answer to [`WireRequest::Identify`].
    Identity(ClientIdentity),
    /// Answer to [`WireRequest::Schedule`].
    Reply(ScheduleReply),
    /// Answer to [`WireRequest::Forward`]: the owning shard's reply,
    /// relayed verbatim back toward the originating master.
    ForwardReply(ScheduleReply),
    /// A typed protocol refusal: the endpoint understood the frame but
    /// does not serve it — e.g. a client `Identify` dialled at a
    /// master-to-master peer port. Carrying a structured [`ExecError`]
    /// instead of a fabricated reply lets the misdialling side fail
    /// fast with an accurate diagnostic.
    Error(ExecError),
}

/// Executes middleware components on a client. Implementations wrap the
/// environment's actual middleware simulators, which is why the
/// executing user identity travels with the call (native middleware
/// re-mediates at invocation time, exactly as the paper's L1 layer
/// does).
pub trait ComponentExecutor: Send + Sync {
    /// Invokes `component`'s operation on `args` as `user`.
    fn invoke(
        &self,
        user: &User,
        component: &hetsec_middleware::component::ComponentRef,
        args: &[Value],
    ) -> Result<Value, ExecError>;
}

/// A component executor that interprets the component's *operation*
/// name as one of the built-in arithmetic primitives — the synthetic
/// business logic used by examples, tests and benches.
#[derive(Default)]
pub struct ArithComponentExecutor;

impl ComponentExecutor for ArithComponentExecutor {
    fn invoke(
        &self,
        _user: &User,
        component: &hetsec_middleware::component::ComponentRef,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        use hetsec_graphs::{ArithExecutor, OpExecutor};
        ArithExecutor
            .execute(&component.operation, args)
            .map_err(|e| ExecError::component(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_middleware::component::ComponentRef;
    use hetsec_middleware::naming::MiddlewareKind;

    #[test]
    fn outcome_predicate() {
        assert!(ExecOutcome::Ok(Value::Unit).is_ok());
        assert!(!ExecOutcome::Denied("x".into()).is_ok());
        assert!(!ExecOutcome::failed("x").is_ok());
    }

    #[test]
    fn error_constructors_classify_retryability() {
        assert!(!ExecError::component("deterministic").retryable);
        assert!(ExecError::component_transient("flaky").retryable);
        assert!(ExecError::transport("conn reset").retryable);
        assert!(ExecError::timeout("deadline").retryable);
        assert!(!ExecError::protocol("bad frame").retryable);
        assert_eq!(ExecError::timeout("d").kind, ExecErrorKind::Timeout);
    }

    #[test]
    fn arith_component_executor_runs_operations() {
        let exec = ArithComponentExecutor;
        let u: User = "worker".into();
        let c = ComponentRef::new(MiddlewareKind::Ejb, "d", "Calc", "add");
        assert_eq!(
            exec.invoke(&u, &c, &[Value::Int(2), Value::Int(3)]),
            Ok(Value::Int(5))
        );
        let bad = ComponentRef::new(MiddlewareKind::Ejb, "d", "Calc", "no-such");
        let err = exec.invoke(&u, &bad, &[]).unwrap_err();
        assert_eq!(err.kind, ExecErrorKind::Component);
        assert!(!err.retryable);
    }

    #[test]
    fn messages_roundtrip_through_json() {
        let req = ScheduleRequest {
            op_id: 42,
            action: ScheduledAction::new(
                ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                "Dom",
                "Worker",
            ),
            user: "worker".into(),
            principal: "Kworker".to_string(),
            master_key: "Kmaster".to_string(),
            credentials: vec![],
            stamps: vec![],
            args: vec![Value::Int(1), Value::Str("x".into())],
        };
        let text = serde_json::to_string(&WireRequest::Schedule(Box::new(req.clone()))).unwrap();
        let back: WireRequest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, WireRequest::Schedule(Box::new(req)));

        let reply = WireResponse::Reply(ScheduleReply {
            op_id: 42,
            client: "c1".to_string(),
            outcome: ExecOutcome::Failed(ExecError::timeout("slow backend")),
            replayed: false,
        });
        let text = serde_json::to_string(&reply).unwrap();
        let back: WireResponse = serde_json::from_str(&text).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn request_without_stamps_field_still_parses() {
        // Wire compatibility: masters predating verdict stamps omit
        // `stamps`; receivers must default it to empty.
        let req = ScheduleRequest {
            op_id: 9,
            action: ScheduledAction::new(
                ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                "Dom",
                "Worker",
            ),
            user: "worker".into(),
            principal: "Kworker".to_string(),
            master_key: "Kmaster".to_string(),
            credentials: vec![],
            stamps: vec![],
            args: vec![],
        };
        let text = serde_json::to_string(&req).unwrap();
        assert!(text.contains("\"stamps\":[]"));
        let old_wire = text.replace("\"stamps\":[],", "");
        let back: ScheduleRequest = serde_json::from_str(&old_wire).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn error_frame_roundtrips() {
        let frame = WireResponse::Error(ExecError::protocol("peer port, not a client"));
        let text = serde_json::to_string(&frame).unwrap();
        let back: WireResponse = serde_json::from_str(&text).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn reply_without_replayed_field_still_parses() {
        // Wire compatibility: clients predating the executed-op memo
        // omit `replayed`; the master must default it to false.
        let text = r#"{"op_id":7,"client":"c0","outcome":{"Ok":"Unit"}}"#;
        let reply: ScheduleReply = serde_json::from_str(text).unwrap();
        assert!(!reply.replayed);
        assert_eq!(reply.op_id, 7);
    }
}
