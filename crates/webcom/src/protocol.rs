//! Messages between the WebCom master and its clients (Figure 3).
//!
//! The fabric is in-process (crossbeam channels stand in for the
//! network), but the message shapes mirror the paper's flow: the master
//! sends a component-execution request carrying its key and supporting
//! credentials; the client independently verifies the master's authority
//! and its own stack before executing and replying.

use crate::authz::ScheduledAction;
use crossbeam::channel::Sender;
use hetsec_graphs::Value;
use hetsec_keynote::ast::Assertion;
use hetsec_rbac::User;

/// Why an execution did not produce a value.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecOutcome {
    /// Execution succeeded.
    Ok(Value),
    /// An authorisation layer refused.
    Denied(String),
    /// The component itself failed.
    Failed(String),
}

impl ExecOutcome {
    /// True for [`ExecOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, ExecOutcome::Ok(_))
    }
}

/// A request from the master to a client.
#[derive(Clone)]
pub struct ScheduleRequest {
    /// Correlation id.
    pub op_id: u64,
    /// What to execute and under which (domain, role).
    pub action: ScheduledAction,
    /// The user identity to execute under.
    pub user: User,
    /// The user's key (trust-management identity).
    pub principal: String,
    /// The master's key: clients verify the master is authorised to
    /// schedule to them (mutual mediation, Figure 3).
    pub master_key: String,
    /// Credentials supporting the request (e.g. delegation chains).
    pub credentials: Vec<Assertion>,
    /// Operand values.
    pub args: Vec<Value>,
    /// Where to send the reply.
    pub reply_to: Sender<ScheduleReply>,
}

/// The envelope clients receive: work, or an orderly shutdown marker.
/// The marker makes client termination independent of how many sender
/// clones (master registries) are still alive.
#[derive(Clone)]
pub enum ClientMessage {
    /// A scheduling request (boxed: requests dwarf the shutdown marker).
    Request(Box<ScheduleRequest>),
    /// Stop after draining the queue up to this point.
    Shutdown,
}

/// A client's reply.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleReply {
    /// Correlation id.
    pub op_id: u64,
    /// Which client executed (or refused).
    pub client: String,
    /// The outcome.
    pub outcome: ExecOutcome,
}

/// Executes middleware components on a client. Implementations wrap the
/// environment's actual middleware simulators, which is why the
/// executing user identity travels with the call (native middleware
/// re-mediates at invocation time, exactly as the paper's L1 layer
/// does).
pub trait ComponentExecutor: Send + Sync {
    /// Invokes `component`'s operation on `args` as `user`.
    fn invoke(
        &self,
        user: &User,
        component: &hetsec_middleware::component::ComponentRef,
        args: &[Value],
    ) -> Result<Value, String>;
}

/// A component executor that interprets the component's *operation*
/// name as one of the built-in arithmetic primitives — the synthetic
/// business logic used by examples, tests and benches.
#[derive(Default)]
pub struct ArithComponentExecutor;

impl ComponentExecutor for ArithComponentExecutor {
    fn invoke(
        &self,
        _user: &User,
        component: &hetsec_middleware::component::ComponentRef,
        args: &[Value],
    ) -> Result<Value, String> {
        use hetsec_graphs::{ArithExecutor, OpExecutor};
        ArithExecutor
            .execute(&component.operation, args)
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_middleware::component::ComponentRef;
    use hetsec_middleware::naming::MiddlewareKind;

    #[test]
    fn outcome_predicate() {
        assert!(ExecOutcome::Ok(Value::Unit).is_ok());
        assert!(!ExecOutcome::Denied("x".into()).is_ok());
        assert!(!ExecOutcome::Failed("x".into()).is_ok());
    }

    #[test]
    fn arith_component_executor_runs_operations() {
        let exec = ArithComponentExecutor;
        let u: User = "worker".into();
        let c = ComponentRef::new(MiddlewareKind::Ejb, "d", "Calc", "add");
        assert_eq!(
            exec.invoke(&u, &c, &[Value::Int(2), Value::Int(3)]),
            Ok(Value::Int(5))
        );
        let bad = ComponentRef::new(MiddlewareKind::Ejb, "d", "Calc", "no-such");
        assert!(exec.invoke(&u, &bad, &[]).is_err());
    }
}
