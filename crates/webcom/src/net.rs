//! TCP frontend for a client engine: the network half of the
//! master/client fabric.
//!
//! [`serve_tcp`] puts a [`ClientEngine`] behind a listener speaking the
//! length-prefixed wire protocol ([`crate::wire`]). Each connection is
//! served by its own thread: an `Identify` frame is answered with the
//! client's [`ClientIdentity`] (the registration handshake), a
//! `Schedule` frame runs the engine's full mutual mediation and answers
//! with the correlated reply. Malformed, oversized or truncated frames
//! close the connection — they never panic the server.
//!
//! The returned [`TcpClientServer`] can [`stop`](TcpClientServer::stop)
//! (orderly) or [`kill`](TcpClientServer::kill) (abrupt, severing live
//! connections mid-request) — the latter is how tests and benches
//! simulate a crashed client for the master's failover path.

use crate::client::ClientEngine;
use crate::protocol::{
    ClientIdentity, ExecError, ExecOutcome, ScheduleReply, ScheduleRequest, WireRequest,
    WireResponse,
};
use crate::wire::{read_frame, write_frame};
use hetsec_rbac::Domain;
use parking_lot::Mutex;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Shared shutdown state between the server handle and its threads.
struct ServerShared {
    stop: AtomicBool,
    /// `try_clone`d handles of live connections, so `kill` can sever
    /// them while handler threads are blocked reading.
    conns: Mutex<Vec<TcpStream>>,
    served: AtomicUsize,
}

/// A running TCP client server.
pub struct TcpClientServer {
    engine: Arc<ClientEngine>,
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpClientServer {
    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the listener.
    pub fn engine(&self) -> Arc<ClientEngine> {
        Arc::clone(&self.engine)
    }

    /// Schedule frames answered so far.
    pub fn served(&self) -> usize {
        self.shared.served.load(Ordering::SeqCst)
    }

    /// Requests answered from the engine's executed-op memo instead of
    /// executing again — masters re-asking after timeouts/failovers
    /// (duplicate-execution protection at work).
    pub fn replayed(&self) -> usize {
        self.engine.stats().replayed
    }

    /// Stops accepting and closes every connection, then joins the
    /// accept thread. In-flight requests on severed connections surface
    /// to the master as transport errors (it reschedules them).
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Simulates a crash: identical to [`stop`](Self::stop), named for
    /// what the *master* observes — connections reset mid-request and
    /// the port stops answering. Fault-tolerance tests kill a serving
    /// client mid-burst and assert the master completes every operation
    /// on a survivor.
    pub fn kill(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for conn in self.shared.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Wake the accept loop (it polls, but connecting is faster).
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(100));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpClientServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// Per-connection serving options.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Schedule frames a single connection may be executing at once.
    /// 1 (the default) keeps the classic sequential read→handle→write
    /// loop; larger values give each connection a worker pool so a
    /// pipelined transport ([`crate::MuxTransport`]) can keep many ops
    /// in flight down one socket. Replies are then written as they
    /// complete — out of order — which only a transport that correlates
    /// by `op_id` may consume.
    pub pipeline: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { pipeline: 1 }
    }
}

/// Serves `engine` on `addr` (e.g. `"127.0.0.1:0"` to let the OS pick a
/// port), announcing `domains` in the Identify handshake. Sequential
/// per-connection handling; see [`serve_tcp_with`] for pipelining.
pub fn serve_tcp(
    engine: Arc<ClientEngine>,
    domains: Vec<Domain>,
    addr: &str,
) -> std::io::Result<TcpClientServer> {
    serve_tcp_with(engine, domains, addr, ServeOptions::default())
}

/// [`serve_tcp`] with explicit [`ServeOptions`].
pub fn serve_tcp_with(
    engine: Arc<ClientEngine>,
    domains: Vec<Domain>,
    addr: &str,
    opts: ServeOptions,
) -> std::io::Result<TcpClientServer> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(ServerShared {
        stop: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
        served: AtomicUsize::new(0),
    });
    let identity = ClientIdentity {
        name: engine.name().to_string(),
        key_text: engine.key_text().to_string(),
        domains,
    };
    let accept_engine = Arc::clone(&engine);
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name(format!("webcom-serve-{}", engine.name()))
        .spawn(move || {
            accept_loop(listener, accept_engine, identity, accept_shared, opts);
        })?;
    Ok(TcpClientServer {
        engine,
        local_addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<ClientEngine>,
    identity: ClientIdentity,
    shared: Arc<ServerShared>,
    opts: ServeOptions,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    let _ = stream.shutdown(Shutdown::Both);
                    break;
                }
                stream.set_nodelay(true).ok();
                // Blocking I/O on the handler side; the accept socket
                // stays nonblocking.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().push(clone);
                }
                let engine = Arc::clone(&engine);
                let identity = identity.clone();
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("webcom-conn".to_string())
                    .spawn(move || {
                        if opts.pipeline > 1 {
                            serve_connection_pipelined(
                                stream,
                                engine,
                                identity,
                                shared,
                                opts.pipeline,
                            )
                        } else {
                            serve_connection(stream, engine, identity, shared)
                        }
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// The answer a client gives a peer-routed `Forward` frame: clients
/// execute for masters; only masters route for masters.
fn forward_misdirected(req: &ScheduleRequest) -> WireResponse {
    WireResponse::ForwardReply(ScheduleReply {
        op_id: req.op_id,
        client: "client".to_string(),
        outcome: ExecOutcome::Failed(ExecError::protocol(
            "Forward frames are master-to-master; this endpoint is a client",
        )),
        replayed: false,
    })
}

/// Serves one connection until the peer hangs up, sends garbage, or the
/// server shuts down. Every exit path is a clean return — wire errors
/// close the connection, they never panic.
fn serve_connection(
    mut stream: TcpStream,
    engine: Arc<ClientEngine>,
    identity: ClientIdentity,
    shared: Arc<ServerShared>,
) {
    // Truncated covers the peer closing; Malformed/Oversized cover
    // garbage. Either way: drop the connection.
    while let Ok(request) = read_frame::<WireRequest, _>(&mut stream) {
        let response = match request {
            WireRequest::Identify => WireResponse::Identity(identity.clone()),
            WireRequest::Schedule(req) => {
                let reply = engine.handle(&req);
                shared.served.fetch_add(1, Ordering::SeqCst);
                WireResponse::Reply(reply)
            }
            WireRequest::Forward { request, .. } => forward_misdirected(&request),
        };
        if write_frame(&mut stream, &response).is_err() {
            break;
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Pipelined variant: one reader (this thread) plus `pipeline` workers
/// executing Schedule frames concurrently and writing replies — in
/// completion order — through a shared writer half. The transport on
/// the other side must correlate replies by `op_id`.
fn serve_connection_pipelined(
    mut stream: TcpStream,
    engine: Arc<ClientEngine>,
    identity: ClientIdentity,
    shared: Arc<ServerShared>,
    pipeline: usize,
) {
    let Ok(writer) = stream.try_clone() else {
        // Cannot split the socket: fall back to sequential serving.
        return serve_connection(stream, engine, identity, shared);
    };
    let writer = Arc::new(Mutex::new(writer));
    let (tx, rx) = crossbeam::channel::unbounded::<Box<ScheduleRequest>>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(pipeline);
    for _ in 0..pipeline {
        let rx = Arc::clone(&rx);
        let writer = Arc::clone(&writer);
        let engine = Arc::clone(&engine);
        let shared = Arc::clone(&shared);
        let Ok(worker) = std::thread::Builder::new()
            .name("webcom-conn-worker".to_string())
            .spawn(move || loop {
                // Hold the receiver lock only while dequeueing so
                // workers handle requests concurrently.
                let req = match rx.lock().recv() {
                    Ok(req) => req,
                    Err(_) => break, // reader gone, queue drained
                };
                let reply = engine.handle(&req);
                shared.served.fetch_add(1, Ordering::SeqCst);
                let mut w = writer.lock();
                if write_frame(&mut *w, &WireResponse::Reply(reply)).is_err() {
                    let _ = w.shutdown(Shutdown::Both);
                    break;
                }
            })
        else {
            break;
        };
        workers.push(worker);
    }
    while let Ok(request) = read_frame::<WireRequest, _>(&mut stream) {
        let response = match request {
            WireRequest::Identify => Some(WireResponse::Identity(identity.clone())),
            WireRequest::Schedule(req) => {
                if tx.send(req).is_err() {
                    break; // every worker died
                }
                None
            }
            WireRequest::Forward { request, .. } => Some(forward_misdirected(&request)),
        };
        if let Some(response) = response {
            let mut w = writer.lock();
            if write_frame(&mut *w, &response).is_err() {
                break;
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
    }
    // Closing the queue lets workers drain in-flight requests and exit.
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authz::{ScheduledAction, TrustManager};
    use crate::client::{ClientConfig, ClientEngine};
    use crate::protocol::{ArithComponentExecutor, ExecOutcome, ScheduleRequest};
    use crate::stack::{AuthzStack, TrustLayer};
    use crate::transport::TcpTransport;
    use crate::wire::write_frame as wire_write;
    use hetsec_graphs::Value;
    use hetsec_middleware::component::ComponentRef;
    use hetsec_middleware::naming::MiddlewareKind;
    use std::io::Write;

    fn tm(policy: &str) -> Arc<TrustManager> {
        let t = TrustManager::permissive();
        t.add_policy(policy).unwrap();
        Arc::new(t)
    }

    fn engine(name: &str, key: &str) -> Arc<ClientEngine> {
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        Arc::new(ClientEngine::new(ClientConfig {
            name: name.to_string(),
            key_text: key.to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        }))
    }

    fn request(op_id: u64) -> ScheduleRequest {
        ScheduleRequest {
            op_id,
            action: ScheduledAction::new(
                ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                "Dom",
                "Worker",
            ),
            user: "worker".into(),
            principal: "Kworker".to_string(),
            master_key: "Kmaster".to_string(),
            credentials: vec![],
            stamps: vec![],
            args: vec![Value::Int(20), Value::Int(22)],
        }
    }

    #[test]
    fn identify_then_schedule_over_tcp() {
        let server = serve_tcp(engine("c1", "Kc1"), vec!["Dom".into()], "127.0.0.1:0").unwrap();
        let transport = TcpTransport::new(server.local_addr());
        let id = transport.identify(Duration::from_secs(5)).unwrap();
        assert_eq!(id.name, "c1");
        assert_eq!(id.key_text, "Kc1");
        assert_eq!(id.domains, vec![Domain::from("Dom")]);
        use crate::transport::ClientTransport;
        let reply = transport.call(&request(1), Duration::from_secs(5)).unwrap();
        assert_eq!(reply.op_id, 1);
        assert_eq!(reply.outcome, ExecOutcome::Ok(Value::Int(42)));
        assert_eq!(server.served(), 1);
        server.stop();
    }

    #[test]
    fn garbage_frames_close_the_connection_not_the_server() {
        let server = serve_tcp(engine("c1", "Kc1"), vec!["Dom".into()], "127.0.0.1:0").unwrap();
        // Connection 1 feeds garbage: an absurd length prefix.
        let mut bad = TcpStream::connect(server.local_addr()).unwrap();
        bad.write_all(&[0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3]).unwrap();
        bad.flush().unwrap();
        // Connection 2 then feeds a frame that is valid JSON of the
        // wrong shape.
        let mut wrong = TcpStream::connect(server.local_addr()).unwrap();
        wire_write(&mut wrong, &42u64).unwrap();
        // The server must still answer a well-formed connection.
        let transport = TcpTransport::new(server.local_addr());
        use crate::transport::ClientTransport;
        let reply = transport.call(&request(5), Duration::from_secs(5)).unwrap();
        assert!(reply.outcome.is_ok());
        server.stop();
    }

    #[test]
    fn killed_server_resets_connections() {
        let server = serve_tcp(engine("c1", "Kc1"), vec!["Dom".into()], "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let transport = TcpTransport::new(addr);
        use crate::transport::ClientTransport;
        assert!(transport.call(&request(1), Duration::from_secs(5)).is_ok());
        server.kill();
        // The established connection is gone and reconnecting fails (or
        // is answered by nobody): either way the call errors.
        let err = transport
            .call(&request(2), Duration::from_millis(500))
            .unwrap_err();
        assert!(!matches!(err, crate::transport::TransportError::Protocol(_)), "{err:?}");
    }
}
