//! The KeyCom automated administration service (paper §4.1, Figure 8).
//!
//! KeyCom accepts *policy update requests* accompanied by KeyNote
//! credentials. If the credentials prove the requester is authorised to
//! administer the affected domain (deriving, possibly through
//! delegation, from the administration policy), the service applies the
//! update to the local middleware catalogue — "an automated Windows/COM
//! administrator" requiring no human in the loop.

use crate::authz::{AuthzRequest, TrustManager};
use hetsec_keynote::ast::Assertion;
use hetsec_keynote::eval::ActionAttributes;
use hetsec_middleware::security::{MiddlewareError, MiddlewareSecurity};
use hetsec_translate::maintenance::PolicyChange;
use hetsec_translate::APP_DOMAIN;
use std::fmt;
use std::sync::Arc;

/// A policy update request as sent to KeyCom.
#[derive(Clone, Debug)]
pub struct PolicyUpdateRequest {
    /// The requester's key text.
    pub requester: String,
    /// Credentials supporting the requester's administrative authority.
    pub credentials: Vec<Assertion>,
    /// The change requested.
    pub change: PolicyChange,
}

/// Why KeyCom refused a request.
#[derive(Clone, Debug, PartialEq)]
pub enum KeyComError {
    /// A presented credential failed verification.
    BadCredential(String),
    /// The requester is not authorised to administer the domain.
    NotAuthorised {
        /// The requester's key.
        requester: String,
        /// The affected domain.
        domain: String,
    },
    /// The middleware rejected the update.
    Middleware(MiddlewareError),
}

impl fmt::Display for KeyComError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyComError::BadCredential(e) => write!(f, "bad credential: {e}"),
            KeyComError::NotAuthorised { requester, domain } => {
                write!(f, "{requester} is not authorised to administer {domain}")
            }
            KeyComError::Middleware(e) => write!(f, "middleware rejected update: {e}"),
        }
    }
}

impl std::error::Error for KeyComError {}

/// The KeyCom service guarding one middleware instance.
pub struct KeyComService {
    /// The administration trust policy: which keys (directly, or through
    /// delegation credentials) may administer which domains.
    admin_trust: Arc<TrustManager>,
    /// The guarded catalogue.
    target: Arc<dyn MiddlewareSecurity>,
}

impl KeyComService {
    /// A service for `target` with the given administration policy.
    pub fn new(admin_trust: Arc<TrustManager>, target: Arc<dyn MiddlewareSecurity>) -> Self {
        KeyComService {
            admin_trust,
            target,
        }
    }

    /// The action attributes for an administrative request.
    fn admin_attributes(change: &PolicyChange) -> ActionAttributes {
        ActionAttributes::new()
            .with("app_domain", APP_DOMAIN)
            .with("oper", "administer")
            .with("Domain", change.domain().as_str())
    }

    /// Handles one request: verify/stash credentials, check authority,
    /// apply the change.
    pub fn handle(&self, request: &PolicyUpdateRequest) -> Result<(), KeyComError> {
        for cred in &request.credentials {
            self.admin_trust
                .add_credential(cred.clone())
                .map_err(|e| KeyComError::BadCredential(e.to_string()))?;
        }
        let attrs = Self::admin_attributes(&request.change);
        if !self.admin_trust.decide(
            &AuthzRequest::principal(request.requester.as_str()).attributes(attrs),
        ) {
            return Err(KeyComError::NotAuthorised {
                requester: request.requester.clone(),
                domain: request.change.domain().to_string(),
            });
        }
        let result = match &request.change {
            PolicyChange::Grant(g) => self.target.grant(g),
            PolicyChange::Revoke(g) => self.target.revoke(g),
            PolicyChange::Assign(a) => self.target.assign(a),
            PolicyChange::Unassign(a) => self.target.unassign(a),
        };
        result.map_err(KeyComError::Middleware)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_com::ComMiddleware;
    use hetsec_middleware::security::MiddlewareSecurityExt;
    use hetsec_rbac::{PermissionGrant, RoleAssignment};

    fn admin_tm() -> Arc<TrustManager> {
        // KAdmin may administer the CORP domain.
        let tm = TrustManager::permissive();
        tm.add_policy(
            "Authorizer: POLICY\nLicensees: \"KAdmin\"\n\
             Conditions: app_domain==\"WebCom\" && oper==\"administer\" && Domain==\"CORP\";\n",
        )
        .unwrap();
        Arc::new(tm)
    }

    fn service() -> (KeyComService, Arc<ComMiddleware>) {
        let com = Arc::new(ComMiddleware::new("CORP"));
        com.grant(&PermissionGrant::new("CORP", "Manager", "SalariesDB", "Access"))
            .unwrap();
        let svc = KeyComService::new(admin_tm(), com.clone());
        (svc, com)
    }

    fn assign_change(user: &str) -> PolicyChange {
        PolicyChange::Assign(RoleAssignment::new(user, "CORP", "Manager"))
    }

    #[test]
    fn figure_8_flow_admin_updates_catalogue() {
        let (svc, com) = service();
        // The Figure 8 scenario: a user registered only in Domain B gets
        // integrated into Domain A's COM+ policy via KeyCom.
        let req = PolicyUpdateRequest {
            requester: "KAdmin".to_string(),
            credentials: vec![],
            change: assign_change("newcomer"),
        };
        svc.handle(&req).unwrap();
        assert!(com.allows(
            &"newcomer".into(),
            &"CORP".into(),
            &"SalariesDB".into(),
            &"Access".into()
        ));
    }

    #[test]
    fn unauthorised_requester_refused() {
        let (svc, com) = service();
        let req = PolicyUpdateRequest {
            requester: "Kmallory".to_string(),
            credentials: vec![],
            change: assign_change("mallory"),
        };
        assert!(matches!(
            svc.handle(&req),
            Err(KeyComError::NotAuthorised { .. })
        ));
        assert!(!com.allows(
            &"mallory".into(),
            &"CORP".into(),
            &"SalariesDB".into(),
            &"Access".into()
        ));
    }

    #[test]
    fn delegated_authority_accepted() {
        let (svc, com) = service();
        // KAdmin delegates CORP administration to Kdeputy.
        let delegation = hetsec_keynote::parser::parse_assertion(
            "Authorizer: \"KAdmin\"\nLicensees: \"Kdeputy\"\n\
             Conditions: app_domain==\"WebCom\" && oper==\"administer\" && Domain==\"CORP\";\n",
        )
        .unwrap();
        let req = PolicyUpdateRequest {
            requester: "Kdeputy".to_string(),
            credentials: vec![delegation],
            change: assign_change("hire"),
        };
        svc.handle(&req).unwrap();
        assert!(com.allows(
            &"hire".into(),
            &"CORP".into(),
            &"SalariesDB".into(),
            &"Access".into()
        ));
    }

    #[test]
    fn authority_does_not_cross_domains() {
        let (svc, _) = service();
        let req = PolicyUpdateRequest {
            requester: "KAdmin".to_string(),
            credentials: vec![],
            change: PolicyChange::Assign(RoleAssignment::new("x", "OTHERDOM", "R")),
        };
        assert!(matches!(
            svc.handle(&req),
            Err(KeyComError::NotAuthorised { .. })
        ));
    }

    #[test]
    fn middleware_errors_surface() {
        let (svc, _) = service();
        // Authorised, but revoking a right that does not exist.
        let req = PolicyUpdateRequest {
            requester: "KAdmin".to_string(),
            credentials: vec![],
            change: PolicyChange::Revoke(PermissionGrant::new(
                "CORP",
                "Ghost",
                "NoApp",
                "Access",
            )),
        };
        assert!(matches!(svc.handle(&req), Err(KeyComError::Middleware(_))));
    }

    #[test]
    fn revocation_via_keycom() {
        let (svc, com) = service();
        svc.handle(&PolicyUpdateRequest {
            requester: "KAdmin".to_string(),
            credentials: vec![],
            change: assign_change("temp"),
        })
        .unwrap();
        svc.handle(&PolicyUpdateRequest {
            requester: "KAdmin".to_string(),
            credentials: vec![],
            change: PolicyChange::Unassign(RoleAssignment::new("temp", "CORP", "Manager")),
        })
        .unwrap();
        assert!(!com.allows(
            &"temp".into(),
            &"CORP".into(),
            &"SalariesDB".into(),
            &"Access".into()
        ));
    }
}
