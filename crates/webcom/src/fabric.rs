//! Sharded multi-master scheduling tier.
//!
//! One `WebComMaster` with a mutex-guarded dispatch loop is the scaling
//! ceiling once per-decision cost is ~1 µs: every op in the system
//! funnels through one registry lock, one decision cache, and one
//! health model. This module partitions the fabric instead. A
//! [`ShardRing`] consistent-hashes interned principal fingerprints
//! (see [`hetsec_keynote::principal_fingerprint`]) over N shards using
//! virtual nodes, a [`ShardRouter`] fans a burst out so each shard's
//! share rides its own master — own clients, own `DecisionCache`, own
//! breakers, nothing shared on the hot path — and a master that is
//! handed an op it does not own *forwards* it peer-to-peer over the
//! same wire protocol ([`crate::WireRequest::Forward`]) instead of
//! rejecting it, with a hop-count guard turning ring disagreement into
//! an error rather than a routing loop.
//!
//! Peer links come in two flavours: [`LocalPeerLink`] calls the peer
//! master in-process (routers, tests, benches), [`TcpPeerLink`] dials
//! the peer's [`serve_master`] listener — the master-side analogue of
//! [`crate::serve_tcp`].

use crate::master::{BurstOp, MasterStats, WebComMaster};
use crate::protocol::{ExecError, ExecOutcome, ScheduleReply, ScheduleRequest};
use crate::transport::TransportError;
use crate::wire::{read_frame, write_frame, WireError};
use crate::{WireRequest, WireResponse};
use hetsec_keynote::principal_fingerprint;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Virtual nodes per shard when a caller does not choose: enough that
/// the largest shard owns within a few percent of the mean.
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring partitioning principal fingerprints over
/// shards. Each shard contributes `vnodes` points; a principal belongs
/// to the shard owning the first point at or after its fingerprint
/// (wrapping). Every node computes the same ring from `(shards,
/// vnodes)` alone, so no layout needs to be gossiped.
#[derive(Clone, Debug)]
pub struct ShardRing {
    /// `(point, shard)` sorted by point; ties broken toward the lower
    /// shard id so all nodes agree.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl ShardRing {
    /// A ring of `shards` shards with [`DEFAULT_VNODES`] virtual nodes
    /// each.
    pub fn new(shards: usize) -> Self {
        Self::with_vnodes(shards, DEFAULT_VNODES)
    }

    /// A ring with an explicit virtual-node count per shard.
    pub fn with_vnodes(shards: usize, vnodes: usize) -> Self {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                points.push((principal_fingerprint(&format!("shard-{shard}/vnode-{v}")), shard));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        ShardRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `principal`.
    pub fn owner_of(&self, principal: &str) -> usize {
        self.owner_of_hash(principal_fingerprint(principal))
    }

    /// The shard owning an already-computed fingerprint.
    pub fn owner_of_hash(&self, h: u64) -> usize {
        match self.points.binary_search_by_key(&h, |p| p.0) {
            Ok(i) => self.points[i].1,
            Err(i) if i < self.points.len() => self.points[i].1,
            Err(_) => self.points[0].1, // wrap past the last point
        }
    }
}

/// How a master reaches one peer shard. Implementations must be safe to
/// call from many dispatch threads at once.
pub trait PeerLink: Send + Sync {
    /// Forwards `request` to the peer with the given hop count,
    /// blocking for the owning shard's reply.
    fn forward(
        &self,
        request: &ScheduleRequest,
        hops: u8,
        timeout: Duration,
    ) -> Result<ScheduleReply, TransportError>;

    /// Human-readable description for diagnostics.
    fn describe(&self) -> String;
}

/// A master's place in the sharded fabric: the ring, its own shard id,
/// and a link to every peer shard.
pub struct ShardInfo {
    /// The (shared) consistent-hash ring.
    pub ring: Arc<ShardRing>,
    /// This master's shard.
    pub shard_id: usize,
    /// Links to peers, by shard id.
    pub peers: HashMap<usize, Arc<dyn PeerLink>>,
}

/// In-process peer link: forwards by calling the peer master directly.
/// Holds a `Weak` so mutually-linked masters do not leak each other.
pub struct LocalPeerLink {
    peer: Weak<WebComMaster>,
    name: String,
}

impl LocalPeerLink {
    /// A link to `peer`, labelled `name` for diagnostics.
    pub fn new(peer: &Arc<WebComMaster>, name: impl Into<String>) -> Self {
        LocalPeerLink {
            peer: Arc::downgrade(peer),
            name: name.into(),
        }
    }
}

impl PeerLink for LocalPeerLink {
    fn forward(
        &self,
        request: &ScheduleRequest,
        hops: u8,
        _timeout: Duration,
    ) -> Result<ScheduleReply, TransportError> {
        let Some(master) = self.peer.upgrade() else {
            return Err(TransportError::Closed(format!(
                "peer master {} is gone",
                self.name
            )));
        };
        Ok(master.handle_forward(request.clone(), hops))
    }

    fn describe(&self) -> String {
        format!("local peer {}", self.name)
    }
}

/// TCP peer link: dials a peer's [`serve_master`] listener and speaks
/// `Forward`/`ForwardReply` frames. Lockstep (one forward in flight per
/// link) — with consistent rings, forwards are the rare path; the
/// pipelined transport lives between masters and *clients*.
pub struct TcpPeerLink {
    addr: SocketAddr,
    conn: Mutex<Option<TcpStream>>,
}

impl TcpPeerLink {
    /// A link to the peer listening on `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        TcpPeerLink {
            addr,
            conn: Mutex::new(None),
        }
    }

    fn exchange(
        &self,
        request: &WireRequest,
        timeout: Duration,
    ) -> Result<WireResponse, TransportError> {
        let mut guard = self.conn.lock();
        if guard.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, timeout)
                .map_err(|e| TransportError::Unreachable(format!("{}: {e}", self.addr)))?;
            stream.set_nodelay(true).ok();
            *guard = Some(stream);
        }
        let stream = guard.as_mut().expect("connected above");
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(|e| TransportError::Closed(e.to_string()))?;
        let result = write_frame(stream, request)
            .and_then(|()| read_frame::<WireResponse, _>(stream))
            .map_err(|e| match e {
                WireError::Io(ioe) if ioe.kind() == std::io::ErrorKind::WouldBlock => {
                    TransportError::Timeout(timeout)
                }
                WireError::Io(ioe) if ioe.kind() == std::io::ErrorKind::TimedOut => {
                    TransportError::Timeout(timeout)
                }
                other => TransportError::Closed(other.to_string()),
            });
        if result.is_err() {
            // Drop the connection: the next forward reconnects fresh.
            if let Some(s) = guard.take() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        result
    }
}

impl PeerLink for TcpPeerLink {
    fn forward(
        &self,
        request: &ScheduleRequest,
        hops: u8,
        timeout: Duration,
    ) -> Result<ScheduleReply, TransportError> {
        let frame = WireRequest::Forward {
            request: Box::new(request.clone()),
            hops,
        };
        match self.exchange(&frame, timeout)? {
            WireResponse::ForwardReply(reply) if reply.op_id == request.op_id => Ok(reply),
            WireResponse::ForwardReply(reply) => Err(TransportError::Protocol(format!(
                "forward reply for op {} while awaiting op {}",
                reply.op_id, request.op_id
            ))),
            other => Err(TransportError::Protocol(format!(
                "expected ForwardReply, got {other:?}"
            ))),
        }
    }

    fn describe(&self) -> String {
        format!("tcp peer {}", self.addr)
    }
}

/// Shared shutdown state of a [`MasterServer`].
struct MasterServerShared {
    stop: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
    forwards: AtomicUsize,
}

/// A running master peer listener (see [`serve_master`]).
pub struct MasterServer {
    local_addr: SocketAddr,
    shared: Arc<MasterServerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MasterServer {
    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Forward frames served so far.
    pub fn forwards(&self) -> usize {
        self.shared.forwards.load(Ordering::SeqCst)
    }

    /// Stops accepting and severs live peer connections.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for conn in self.shared.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(100));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MasterServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// Puts a master behind a TCP listener answering peer
/// `Forward`/`ForwardReply` frames — how masters in different processes
/// form one sharded fabric. `Identify`/`Schedule` frames from stray
/// clients are answered with a protocol error rather than silence.
pub fn serve_master(master: Arc<WebComMaster>, addr: &str) -> std::io::Result<MasterServer> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(MasterServerShared {
        stop: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
        forwards: AtomicUsize::new(0),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("webcom-master-serve".to_string())
        .spawn(move || {
            while !accept_shared.stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if accept_shared.stop.load(Ordering::SeqCst) {
                            let _ = stream.shutdown(Shutdown::Both);
                            break;
                        }
                        stream.set_nodelay(true).ok();
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        if let Ok(clone) = stream.try_clone() {
                            accept_shared.conns.lock().push(clone);
                        }
                        let master = Arc::clone(&master);
                        let shared = Arc::clone(&accept_shared);
                        let _ = std::thread::Builder::new()
                            .name("webcom-master-conn".to_string())
                            .spawn(move || serve_peer_connection(stream, master, shared));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })?;
    Ok(MasterServer {
        local_addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

fn serve_peer_connection(
    mut stream: TcpStream,
    master: Arc<WebComMaster>,
    shared: Arc<MasterServerShared>,
) {
    while let Ok(request) = read_frame::<WireRequest, _>(&mut stream) {
        let response = match request {
            WireRequest::Forward { request, hops } => {
                shared.forwards.fetch_add(1, Ordering::SeqCst);
                WireResponse::ForwardReply(master.handle_forward(*request, hops))
            }
            WireRequest::Schedule(req) => WireResponse::Reply(ScheduleReply {
                op_id: req.op_id,
                client: "master".to_string(),
                outcome: ExecOutcome::Failed(ExecError::protocol(
                    "this endpoint serves master-to-master forwards, not client scheduling",
                )),
                replayed: false,
            }),
            // A typed error frame, not a fabricated ForwardReply: a
            // lockstep/mux client that misdials a peer port must get a
            // protocol error it can surface, never something that looks
            // like a schedule reply.
            WireRequest::Identify => WireResponse::Error(ExecError::protocol(
                "this endpoint serves master-to-master forwards, not client identify",
            )),
        };
        if write_frame(&mut stream, &response).is_err() {
            break;
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Routes bursts across a set of shard masters by principal, running
/// each shard's share concurrently. The masters stay independently
/// usable — handing a master an op it does not own just makes it
/// forward over its peer link, which is exactly what the forwarding
/// property tests exercise.
pub struct ShardRouter {
    ring: Arc<ShardRing>,
    masters: Vec<Arc<WebComMaster>>,
}

impl ShardRouter {
    /// Builds a router over `masters` and wires each one's
    /// [`ShardInfo`] with in-process [`LocalPeerLink`]s to all peers.
    pub fn local(masters: Vec<Arc<WebComMaster>>) -> Self {
        let ring = Arc::new(ShardRing::new(masters.len()));
        for (i, m) in masters.iter().enumerate() {
            let peers: HashMap<usize, Arc<dyn PeerLink>> = masters
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(j, pm)| {
                    (
                        j,
                        Arc::new(LocalPeerLink::new(pm, format!("shard-{j}")))
                            as Arc<dyn PeerLink>,
                    )
                })
                .collect();
            m.set_shard(Arc::new(ShardInfo {
                ring: Arc::clone(&ring),
                shard_id: i,
                peers,
            }));
        }
        ShardRouter { ring, masters }
    }

    /// Builds a router over masters whose [`ShardInfo`] the caller has
    /// already wired (e.g. with [`TcpPeerLink`]s); `ring` must be the
    /// same ring the masters were given.
    pub fn from_parts(ring: Arc<ShardRing>, masters: Vec<Arc<WebComMaster>>) -> Self {
        ShardRouter { ring, masters }
    }

    /// The ring the router partitions by.
    pub fn ring(&self) -> &Arc<ShardRing> {
        &self.ring
    }

    /// The shard masters, in shard-id order.
    pub fn masters(&self) -> &[Arc<WebComMaster>] {
        &self.masters
    }

    /// The shard owning `principal`.
    pub fn shard_of(&self, principal: &str) -> usize {
        self.ring.owner_of(principal)
    }

    /// Fans a burst across the shards: each op goes to its home
    /// master, every shard's share is scheduled concurrently as one
    /// per-shard burst, and outcomes come back positionally aligned
    /// with `ops`.
    pub fn schedule_burst(&self, ops: Vec<BurstOp>) -> Vec<ExecOutcome> {
        if ops.is_empty() {
            return Vec::new();
        }
        if self.masters.len() == 1 {
            return self.masters[0].schedule_burst(ops);
        }
        let total = ops.len();
        let mut per_shard: Vec<(Vec<usize>, Vec<BurstOp>)> =
            (0..self.masters.len()).map(|_| (Vec::new(), Vec::new())).collect();
        for (i, op) in ops.into_iter().enumerate() {
            let shard = self.ring.owner_of(&op.principal);
            per_shard[shard].0.push(i);
            per_shard[shard].1.push(op);
        }
        let mut outcomes: Vec<Option<ExecOutcome>> = (0..total).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = per_shard
                .into_iter()
                .enumerate()
                .filter(|(_, (idx, _))| !idx.is_empty())
                .map(|(shard, (idx, share))| {
                    let master = &self.masters[shard];
                    s.spawn(move || (idx, master.schedule_burst(share)))
                })
                .collect();
            for h in handles {
                let (idx, outs) = h.join().expect("shard burst worker panicked");
                for (i, out) in idx.into_iter().zip(outs) {
                    outcomes[i] = Some(out);
                }
            }
        });
        outcomes
            .into_iter()
            .map(|o| o.expect("every op produces an outcome"))
            .collect()
    }

    /// Fleet-wide statistics: counters summed and dispatch-latency
    /// histograms merged across all shards.
    pub fn merged_stats(&self) -> MasterStats {
        let mut merged = MasterStats::default();
        for m in &self.masters {
            merged.merge(&m.stats());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_total() {
        let a = ShardRing::new(4);
        let b = ShardRing::new(4);
        for i in 0..1000 {
            let p = format!("K{i}");
            let owner = a.owner_of(&p);
            assert_eq!(owner, b.owner_of(&p), "two rings disagree on {p}");
            assert!(owner < 4);
        }
    }

    #[test]
    fn ring_spreads_principals_roughly_evenly() {
        let ring = ShardRing::new(4);
        let mut counts = [0usize; 4];
        for i in 0..40_000 {
            counts[ring.owner_of(&format!("Kuser{i}"))] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            // Mean is 10k; with 64 vnodes the spread stays well within
            // a factor of two of it.
            assert!(
                (5_000..=20_000).contains(&c),
                "shard {shard} owns {c} of 40000: {counts:?}"
            );
        }
    }

    #[test]
    fn single_shard_ring_owns_everything() {
        let ring = ShardRing::new(1);
        for i in 0..100 {
            assert_eq!(ring.owner_of(&format!("K{i}")), 0);
        }
    }

    #[test]
    fn growing_the_ring_moves_a_bounded_share() {
        // Consistent hashing's point: going 3 → 4 shards should move
        // roughly 1/4 of the keys, not rehash everything.
        let small = ShardRing::new(3);
        let big = ShardRing::new(4);
        let mut moved = 0usize;
        let n = 20_000;
        for i in 0..n {
            let p = format!("Kuser{i}");
            if small.owner_of(&p) != big.owner_of(&p) {
                moved += 1;
            }
        }
        let frac = moved as f64 / n as f64;
        assert!(
            frac < 0.45,
            "adding one shard to three moved {:.0}% of keys",
            frac * 100.0
        );
    }
}
