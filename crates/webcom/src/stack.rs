//! The stacked authorisation architecture (paper §5, Figure 10).
//!
//! Security mediation is a stack of pluggable layers:
//!
//! ```text
//! L3  Application security   (workflow rules in the condensed graph)
//! L2  Trust management       (KeyNote)
//! L1  Middleware security    (COM+/EJB/CORBA)
//! L0  OS security            (Windows ACLs / Unix modes)
//! ```
//!
//! Layers are pluggable "in the sense of PAM" [17, 25]: an environment
//! stacks whatever its platform provides (Figure 9's System X has only
//! OS(U) + T(KN); System Y has OS(W) + M(COM)). Each layer returns a
//! [`Verdict`]; the stack combines them under a configurable rule.

use crate::authz::{AuthzRequest, ScheduledAction, TrustManager};
use crate::cache::{decision_fingerprint, CacheKey, CacheStats, DecisionCache};
use hetsec_keynote::eval::ActionAttributes;
use hetsec_middleware::security::MiddlewareSecurity;
use hetsec_os::unix::{UnixAccess, UnixSecurity};
use hetsec_os::windows::{AccessMask, WindowsSecurity};
use hetsec_rbac::User;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The four layer positions of Figure 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LayerLevel {
    /// Operating system security.
    L0Os,
    /// Middleware security.
    L1Middleware,
    /// Trust management.
    L2TrustManagement,
    /// Application (workflow) security.
    L3Application,
}

impl std::fmt::Display for LayerLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LayerLevel::L0Os => "L0/OS",
            LayerLevel::L1Middleware => "L1/Middleware",
            LayerLevel::L2TrustManagement => "L2/TrustManagement",
            LayerLevel::L3Application => "L3/Application",
        };
        write!(f, "{s}")
    }
}

/// One layer's opinion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The layer explicitly permits the action.
    Grant,
    /// The layer explicitly forbids the action.
    Deny(String),
    /// The layer has no opinion (e.g. the OS layer for an action with no
    /// OS-level object).
    Abstain,
}

/// Everything a layer may need to decide.
#[derive(Clone, Debug)]
pub struct AuthzContext {
    /// The requesting user (middleware/OS identity).
    pub user: User,
    /// The requesting principal's key text (trust-management identity).
    pub principal: String,
    /// The action.
    pub action: ScheduledAction,
    /// Credentials presented with the request (delegation chains etc.);
    /// consumed by the trust-management layer.
    pub credentials: Vec<hetsec_keynote::ast::Assertion>,
}

impl AuthzContext {
    /// A context with no presented credentials.
    pub fn new(user: impl Into<User>, principal: impl Into<String>, action: ScheduledAction) -> Self {
        AuthzContext {
            user: user.into(),
            principal: principal.into(),
            action,
            credentials: Vec::new(),
        }
    }
}

/// A pluggable mediation layer.
pub trait AuthzLayer: Send + Sync {
    /// Where the layer sits in the stack.
    fn level(&self) -> LayerLevel;

    /// Diagnostic name.
    fn name(&self) -> String;

    /// The layer's verdict for a request.
    fn decide(&self, ctx: &AuthzContext) -> Verdict;

    /// The layer's verdicts for a burst of requests, positionally
    /// aligned with `ctxs`. The default consults
    /// [`decide`](Self::decide) per request; layers with batch-aware
    /// backends (trust management) override it to amortise lock
    /// acquisition and evaluation setup across the burst. Overrides
    /// must be element-wise equivalent to the sequential default.
    fn decide_batch(&self, ctxs: &[&AuthzContext]) -> Vec<Verdict> {
        ctxs.iter().map(|c| self.decide(c)).collect()
    }

    /// Version of the layer's decision-relevant state. A layer whose
    /// verdicts can change over time (e.g. trust management as
    /// credentials arrive and keys are revoked) must bump this whenever
    /// they may; stateless layers keep the default constant. Stack-level
    /// decision caching is invalidated whenever any layer's epoch moves.
    fn epoch(&self) -> u64 {
        0
    }
}

/// How layer verdicts combine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CombinationRule {
    /// Every present layer that does not abstain must grant, and at
    /// least one layer must grant (the paper's stacked semantics:
    /// mediation mechanisms that exist must all permit).
    #[default]
    AllPresentMustGrant,
    /// Every layer must explicitly grant; abstentions deny. Used when an
    /// environment requires full-stack mediation.
    Conjunctive,
    /// The first non-abstaining layer (highest level first) decides —
    /// e.g. trust management overrides middleware during migration.
    FirstOpinion,
}

/// The outcome of a stack evaluation, with the per-layer trace.
#[derive(Clone, Debug)]
pub struct StackDecision {
    /// Whether the request is permitted.
    pub permitted: bool,
    /// (layer name, verdict) in evaluation order (L3 down to L0).
    pub trace: Vec<(String, Verdict)>,
}

/// An authorisation stack: layers sorted top (L3) to bottom (L0).
pub struct AuthzStack {
    layers: Vec<Arc<dyn AuthzLayer>>,
    rule: CombinationRule,
    /// Optional whole-stack decision cache, invalidated whenever any
    /// layer's epoch moves (see [`AuthzLayer::epoch`]).
    cache: Option<DecisionCache>,
}

impl AuthzStack {
    /// An empty stack with the default combination rule.
    pub fn new() -> Self {
        AuthzStack {
            layers: Vec::new(),
            rule: CombinationRule::default(),
            cache: None,
        }
    }

    /// Sets the combination rule.
    pub fn with_rule(mut self, rule: CombinationRule) -> Self {
        self.rule = rule;
        self
    }

    /// Enables whole-stack decision caching, memoising up to `capacity`
    /// (principal, user, action, credentials) → permitted results.
    /// Cached decisions skip every layer but carry a single-entry
    /// `"cache"` trace instead of the per-layer one.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(DecisionCache::new(capacity));
        self
    }

    /// Stack-cache counters, when caching is enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(DecisionCache::stats)
    }

    /// Combined epoch over all layers. Layer epochs are monotone, so
    /// the (wrapping) sum moves whenever any layer's state does.
    fn combined_epoch(&self) -> u64 {
        self.layers
            .iter()
            .fold(0u64, |acc, l| acc.wrapping_add(l.epoch()))
    }

    /// Plugs a layer in (kept sorted top-down).
    pub fn push(&mut self, layer: Arc<dyn AuthzLayer>) {
        self.layers.push(layer);
        self.layers.sort_by_key(|l| std::cmp::Reverse(l.level()));
    }

    /// The installed levels, top-down.
    pub fn levels(&self) -> Vec<LayerLevel> {
        self.layers.iter().map(|l| l.level()).collect()
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when no layers are installed.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Evaluates the stack for one request: a batch of one through
    /// [`decide_batch`](Self::decide_batch).
    pub fn decide(&self, ctx: &AuthzContext) -> StackDecision {
        self.decide_batch(std::slice::from_ref(ctx))
            .pop()
            .expect("batch of one yields one decision")
    }

    /// Evaluates the stack for a burst of requests, consulting the
    /// decision cache first when one is configured. The combined epoch
    /// is read once *before* any layer runs, so a mutation racing with
    /// the evaluation leaves cached entries stale rather than wrong;
    /// cache lookups and refills take each shard's lock at most once
    /// per burst, and every layer sees the still-undecided requests as
    /// one [`AuthzLayer::decide_batch`] call. Results are positionally
    /// aligned with `ctxs` and identical to deciding each request on
    /// its own.
    pub fn decide_batch(&self, ctxs: &[AuthzContext]) -> Vec<StackDecision> {
        let Some(cache) = &self.cache else {
            let refs: Vec<&AuthzContext> = ctxs.iter().collect();
            return self.evaluate_batch(&refs);
        };
        let keys: Vec<CacheKey> = ctxs
            .iter()
            .map(|ctx| CacheKey {
                principal: ctx.principal.clone(),
                fingerprint: decision_fingerprint(
                    &ctx.action.attributes(),
                    &ctx.credentials,
                    &format!("{}\u{0}{:?}", ctx.user, self.rule),
                ),
            })
            .collect();
        let epoch = self.combined_epoch();
        let cached = cache.get_many(&keys, epoch);
        let mut out: Vec<Option<StackDecision>> = cached
            .iter()
            .map(|c| {
                c.map(|permitted| StackDecision {
                    permitted,
                    trace: vec![(
                        "cache".to_string(),
                        if permitted {
                            Verdict::Grant
                        } else {
                            Verdict::Deny("cached stack denial".to_string())
                        },
                    )],
                })
            })
            .collect();
        let miss_idx: Vec<usize> = cached
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.is_none().then_some(i))
            .collect();
        if !miss_idx.is_empty() {
            let miss_ctxs: Vec<&AuthzContext> = miss_idx.iter().map(|&i| &ctxs[i]).collect();
            let decisions = self.evaluate_batch(&miss_ctxs);
            let mut inserts: Vec<(CacheKey, bool)> = Vec::with_capacity(miss_idx.len());
            for (&i, decision) in miss_idx.iter().zip(decisions) {
                inserts.push((keys[i].clone(), decision.permitted));
                out[i] = Some(decision);
            }
            cache.insert_many(inserts, epoch);
        }
        out.into_iter()
            .map(|d| d.expect("every request decided"))
            .collect()
    }

    fn evaluate_batch(&self, ctxs: &[&AuthzContext]) -> Vec<StackDecision> {
        struct Acc {
            trace: Vec<(String, Verdict)>,
            grants: usize,
            denied: bool,
            first_opinion: Option<bool>,
        }
        let mut accs: Vec<Acc> = ctxs
            .iter()
            .map(|_| Acc {
                trace: Vec::with_capacity(self.layers.len()),
                grants: 0,
                denied: false,
                first_opinion: None,
            })
            .collect();
        // Requests a layer still needs to see. Under FirstOpinion the
        // decision is fixed by the highest non-abstaining layer, so a
        // decided request drops out of the burst handed to lower
        // layers; the other rules consult every layer for every
        // request.
        let mut live: Vec<usize> = (0..ctxs.len()).collect();
        for layer in &self.layers {
            if live.is_empty() {
                break;
            }
            let burst: Vec<&AuthzContext> = live.iter().map(|&i| ctxs[i]).collect();
            let verdicts = layer.decide_batch(&burst);
            debug_assert_eq!(verdicts.len(), burst.len());
            let name = layer.name();
            for (&i, v) in live.iter().zip(verdicts) {
                let acc = &mut accs[i];
                match &v {
                    Verdict::Grant => {
                        acc.grants += 1;
                        acc.first_opinion.get_or_insert(true);
                    }
                    Verdict::Deny(_) => {
                        acc.denied = true;
                        acc.first_opinion.get_or_insert(false);
                    }
                    Verdict::Abstain => {}
                }
                acc.trace.push((name.clone(), v));
            }
            if self.rule == CombinationRule::FirstOpinion {
                live.retain(|&i| accs[i].first_opinion.is_none());
            }
        }
        accs.into_iter()
            .map(|acc| {
                let permitted = match self.rule {
                    CombinationRule::AllPresentMustGrant => !acc.denied && acc.grants > 0,
                    CombinationRule::Conjunctive => {
                        !acc.denied && acc.grants == self.layers.len() && !self.layers.is_empty()
                    }
                    CombinationRule::FirstOpinion => acc.first_opinion.unwrap_or(false),
                };
                StackDecision {
                    permitted,
                    trace: acc.trace,
                }
            })
            .collect()
    }
}

impl Default for AuthzStack {
    fn default() -> Self {
        Self::new()
    }
}

// ---- Concrete layers ----

/// L2: trust management via KeyNote.
pub struct TrustLayer {
    tm: Arc<TrustManager>,
}

impl TrustLayer {
    /// Wraps a trust manager.
    pub fn new(tm: Arc<TrustManager>) -> Self {
        TrustLayer { tm }
    }
}

impl AuthzLayer for TrustLayer {
    fn level(&self) -> LayerLevel {
        LayerLevel::L2TrustManagement
    }

    fn name(&self) -> String {
        "T(KN)".to_string()
    }

    fn decide(&self, ctx: &AuthzContext) -> Verdict {
        // Presented credentials are evaluated request-scoped: vetted
        // like stored ones (invalid ones are simply not taken into
        // account) but never added to the layer's store, so authority
        // presented with one request cannot leak into later requests.
        if self.tm.decide(
            &AuthzRequest::principal(&ctx.principal)
                .action(&ctx.action)
                .credentials(&ctx.credentials),
        ) {
            Verdict::Grant
        } else {
            Verdict::Deny(format!(
                "KeyNote: {} not authorised for {}",
                ctx.principal,
                ctx.action.component.identifier()
            ))
        }
    }

    fn decide_batch(&self, ctxs: &[&AuthzContext]) -> Vec<Verdict> {
        // Attribute sets are materialised once per request and lent to
        // the trust manager, which answers the whole burst under one
        // session lock / one cache pass.
        let attr_sets: Vec<ActionAttributes> =
            ctxs.iter().map(|c| c.action.attributes()).collect();
        let requests: Vec<AuthzRequest<'_>> = ctxs
            .iter()
            .zip(&attr_sets)
            .map(|(c, attrs)| {
                AuthzRequest::principal(&c.principal)
                    .attributes_ref(attrs)
                    .credentials(&c.credentials)
            })
            .collect();
        self.tm
            .decide_batch(&requests)
            .into_iter()
            .zip(ctxs)
            .map(|(permitted, c)| {
                if permitted {
                    Verdict::Grant
                } else {
                    Verdict::Deny(format!(
                        "KeyNote: {} not authorised for {}",
                        c.principal,
                        c.action.component.identifier()
                    ))
                }
            })
            .collect()
    }

    fn epoch(&self) -> u64 {
        self.tm.epoch()
    }
}

/// L1: middleware security. Abstains for components hosted on a foreign
/// domain (another environment's middleware mediates those).
pub struct MiddlewareLayer {
    middleware: Arc<dyn MiddlewareSecurity>,
}

impl MiddlewareLayer {
    /// Wraps a middleware endpoint.
    pub fn new(middleware: Arc<dyn MiddlewareSecurity>) -> Self {
        MiddlewareLayer { middleware }
    }
}

impl AuthzLayer for MiddlewareLayer {
    fn level(&self) -> LayerLevel {
        LayerLevel::L1Middleware
    }

    fn name(&self) -> String {
        format!("M({})", self.middleware.kind())
    }

    fn decide(&self, ctx: &AuthzContext) -> Verdict {
        if !self.middleware.owned_domains().contains(&ctx.action.domain) {
            return Verdict::Abstain;
        }
        let decision = self.middleware.check(
            &ctx.user,
            &ctx.action.domain,
            Some(&ctx.action.role),
            &ctx.action.component.object_type,
            &ctx.action.permission,
        );
        match decision {
            hetsec_middleware::security::Decision::Granted => Verdict::Grant,
            hetsec_middleware::security::Decision::Denied(r) => Verdict::Deny(r),
        }
    }
}

/// L0 on Windows: the object named by the component's `ObjectType` must
/// grant the user the mask implied by the permission. Abstains for
/// objects with no ACL registered.
pub struct WindowsOsLayer {
    os: Arc<WindowsSecurity>,
    /// Objects known to the OS layer (only these are mediated).
    mediated: BTreeSet<String>,
}

impl WindowsOsLayer {
    /// Wraps a Windows machine, mediating the listed objects.
    pub fn new(os: Arc<WindowsSecurity>, mediated: impl IntoIterator<Item = String>) -> Self {
        WindowsOsLayer {
            os,
            mediated: mediated.into_iter().collect(),
        }
    }

    /// The access mask a permission implies, or `None` for permissions
    /// the layer does not understand. Unknown permissions must *deny*,
    /// not silently degrade to EXECUTE — a mediation layer guessing at
    /// semantics it does not know is fail-open.
    fn mask_for(permission: &str) -> Option<AccessMask> {
        match permission {
            "read" => Some(AccessMask::READ),
            "write" => Some(AccessMask::WRITE),
            "Launch" | "Access" | "execute" | "invoke" => Some(AccessMask::EXECUTE),
            _ => None,
        }
    }
}

impl AuthzLayer for WindowsOsLayer {
    fn level(&self) -> LayerLevel {
        LayerLevel::L0Os
    }

    fn name(&self) -> String {
        "OS(W)".to_string()
    }

    fn decide(&self, ctx: &AuthzContext) -> Verdict {
        let object = ctx.action.component.object_type.as_str();
        if !self.mediated.contains(object) {
            return Verdict::Abstain;
        }
        let Some(mask) = Self::mask_for(ctx.action.permission.as_str()) else {
            return Verdict::Deny(format!(
                "Windows layer does not understand permission `{}` on {object}",
                ctx.action.permission.as_str()
            ));
        };
        if self.os.access_check(ctx.user.as_str(), object, mask) {
            Verdict::Grant
        } else {
            Verdict::Deny(format!("Windows ACL denies {} on {object}", ctx.user))
        }
    }
}

/// L0 on Unix: like [`WindowsOsLayer`] with rwx semantics.
pub struct UnixOsLayer {
    os: Arc<UnixSecurity>,
    mediated: BTreeSet<String>,
}

impl UnixOsLayer {
    /// Wraps a Unix machine, mediating the listed objects.
    pub fn new(os: Arc<UnixSecurity>, mediated: impl IntoIterator<Item = String>) -> Self {
        UnixOsLayer {
            os,
            mediated: mediated.into_iter().collect(),
        }
    }

    fn access_for(permission: &str) -> UnixAccess {
        match permission {
            "read" => UnixAccess::Read,
            "write" => UnixAccess::Write,
            _ => UnixAccess::Execute,
        }
    }
}

impl AuthzLayer for UnixOsLayer {
    fn level(&self) -> LayerLevel {
        LayerLevel::L0Os
    }

    fn name(&self) -> String {
        "OS(U)".to_string()
    }

    fn decide(&self, ctx: &AuthzContext) -> Verdict {
        let object = ctx.action.component.object_type.as_str();
        if !self.mediated.contains(object) {
            return Verdict::Abstain;
        }
        let access = Self::access_for(ctx.action.permission.as_str());
        if self.os.access_check(ctx.user.as_str(), object, access) {
            Verdict::Grant
        } else {
            Verdict::Deny(format!("Unix mode denies {} on {object}", ctx.user))
        }
    }
}

/// L3: application/workflow security — an allow/deny list over component
/// identifiers encoded alongside the condensed graph. The paper notes L3
/// is out of scope; this minimal layer exists so the full four-layer
/// stack is exercisable.
pub struct ApplicationLayer {
    denied_components: BTreeSet<String>,
}

impl ApplicationLayer {
    /// A layer denying the listed component identifiers.
    pub fn denying(components: impl IntoIterator<Item = String>) -> Self {
        ApplicationLayer {
            denied_components: components.into_iter().collect(),
        }
    }
}

impl AuthzLayer for ApplicationLayer {
    fn level(&self) -> LayerLevel {
        LayerLevel::L3Application
    }

    fn name(&self) -> String {
        "App(CG)".to_string()
    }

    fn decide(&self, ctx: &AuthzContext) -> Verdict {
        if self
            .denied_components
            .contains(&ctx.action.component.identifier())
        {
            Verdict::Deny("workflow policy denies component".to_string())
        } else {
            Verdict::Abstain
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_ejb::EjbMiddleware;
    use hetsec_middleware::component::ComponentRef;
    use hetsec_middleware::naming::{EjbDomain, MiddlewareKind};
    use hetsec_os::windows::{Ace, AceKind, Sid};
    use hetsec_rbac::{PermissionGrant, RoleAssignment};
    use hetsec_translate::{encode_policy, SymbolicDirectory};

    fn ejb_domain() -> EjbDomain {
        EjbDomain::new("h", "s", "j")
    }

    fn ctx(user: &str, principal: &str, perm: &str) -> AuthzContext {
        let component = ComponentRef::new(
            MiddlewareKind::Ejb,
            ejb_domain().to_string(),
            "SalariesBean",
            perm,
        );
        AuthzContext::new(
            user,
            principal,
            ScheduledAction::new(component, ejb_domain().to_string(), "Manager"),
        )
    }

    fn middleware_layer() -> Arc<MiddlewareLayer> {
        let m = EjbMiddleware::new(ejb_domain());
        let d = ejb_domain().to_string();
        m.grant(&PermissionGrant::new(d.as_str(), "Manager", "SalariesBean", "read"))
            .unwrap();
        m.assign(&RoleAssignment::new("bob", d.as_str(), "Manager"))
            .unwrap();
        Arc::new(MiddlewareLayer::new(Arc::new(m)))
    }

    fn trust_layer() -> Arc<TrustLayer> {
        let tm = Arc::new(TrustManager::permissive());
        // Policy granting Manager read on SalariesBean in the EJB domain.
        let mut p = hetsec_rbac::RbacPolicy::new();
        p.grant(PermissionGrant::new(
            ejb_domain().to_string().as_str(),
            "Manager",
            "SalariesBean",
            "read",
        ));
        p.assign(RoleAssignment::new(
            "Bob",
            ejb_domain().to_string().as_str(),
            "Manager",
        ));
        for a in encode_policy(&p, "KWebCom", &SymbolicDirectory::default()) {
            tm.add_policy_assertion(a).unwrap();
        }
        Arc::new(TrustLayer::new(tm))
    }

    #[test]
    fn two_layer_stack_grants_when_both_grant() {
        let mut stack = AuthzStack::new();
        stack.push(middleware_layer());
        stack.push(trust_layer());
        assert_eq!(stack.len(), 2);
        assert_eq!(
            stack.levels(),
            vec![LayerLevel::L2TrustManagement, LayerLevel::L1Middleware]
        );
        let d = stack.decide(&ctx("bob", "Kbob", "read"));
        assert!(d.permitted, "{:?}", d.trace);
        assert_eq!(d.trace.len(), 2);
    }

    #[test]
    fn any_deny_denies() {
        let mut stack = AuthzStack::new();
        stack.push(middleware_layer());
        stack.push(trust_layer());
        // Middleware knows bob, trust layer doesn't know Kmallory.
        let d = stack.decide(&ctx("bob", "Kmallory", "read"));
        assert!(!d.permitted);
        assert!(d
            .trace
            .iter()
            .any(|(_, v)| matches!(v, Verdict::Deny(_))));
    }

    #[test]
    fn empty_stack_denies() {
        let stack = AuthzStack::new();
        assert!(stack.is_empty());
        let d = stack.decide(&ctx("bob", "Kbob", "read"));
        assert!(!d.permitted);
    }

    #[test]
    fn abstaining_layers_are_neutral_by_default() {
        let mut stack = AuthzStack::new();
        stack.push(trust_layer());
        // An application layer with nothing denied always abstains.
        stack.push(Arc::new(ApplicationLayer::denying(Vec::new())));
        let d = stack.decide(&ctx("bob", "Kbob", "read"));
        assert!(d.permitted);
    }

    #[test]
    fn conjunctive_rule_rejects_abstentions() {
        let mut stack = AuthzStack::new().with_rule(CombinationRule::Conjunctive);
        stack.push(trust_layer());
        stack.push(Arc::new(ApplicationLayer::denying(Vec::new())));
        let d = stack.decide(&ctx("bob", "Kbob", "read"));
        assert!(!d.permitted); // the app layer abstained
    }

    #[test]
    fn first_opinion_rule_takes_highest_layer() {
        let mut stack = AuthzStack::new().with_rule(CombinationRule::FirstOpinion);
        stack.push(middleware_layer());
        stack.push(trust_layer());
        // Trust layer (L2) grants Kbob before middleware is consulted;
        // with an unknown middleware user the request still passes.
        let d = stack.decide(&ctx("stranger", "Kbob", "read"));
        assert!(d.permitted);
    }

    #[test]
    fn application_layer_vetoes_specific_components() {
        let component_id = ctx("bob", "Kbob", "read").action.component.identifier();
        let mut stack = AuthzStack::new();
        stack.push(trust_layer());
        stack.push(Arc::new(ApplicationLayer::denying([component_id])));
        let d = stack.decide(&ctx("bob", "Kbob", "read"));
        assert!(!d.permitted);
    }

    #[test]
    fn presented_credentials_are_request_scoped() {
        // Request A presents a delegation credential; it must authorise
        // request A only. Before the fix, TrustLayer persisted presented
        // credentials into the trust manager, so request B (without the
        // credential) kept the authority.
        let tm = Arc::new(TrustManager::permissive());
        tm.add_policy(
            "Authorizer: POLICY\nLicensees: \"Kboss\"\nConditions: app_domain==\"WebCom\";\n",
        )
        .unwrap();
        let layer = TrustLayer::new(Arc::clone(&tm));
        let delegation = hetsec_keynote::parser::parse_assertion(
            "Authorizer: \"Kboss\"\nLicensees: \"Ktemp\"\n",
        )
        .unwrap();

        let count_before = tm.credential_count();
        let mut request_a = ctx("temp", "Ktemp", "read");
        request_a.credentials.push(delegation);
        assert!(matches!(layer.decide(&request_a), Verdict::Grant));
        // Nothing leaked into the store...
        assert_eq!(tm.credential_count(), count_before);
        // ...so request B, without the credential, is denied.
        let request_b = ctx("temp", "Ktemp", "read");
        assert!(matches!(layer.decide(&request_b), Verdict::Deny(_)));
    }

    #[test]
    fn stack_decide_does_not_grow_credential_store() {
        let tm = Arc::new(TrustManager::permissive());
        tm.add_policy(
            "Authorizer: POLICY\nLicensees: \"Kboss\"\nConditions: app_domain==\"WebCom\";\n",
        )
        .unwrap();
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(Arc::clone(&tm))));
        let delegation = hetsec_keynote::parser::parse_assertion(
            "Authorizer: \"Kboss\"\nLicensees: \"Ktemp\"\n",
        )
        .unwrap();
        let mut c = ctx("temp", "Ktemp", "read");
        c.credentials.push(delegation);
        let count_before = tm.credential_count();
        assert!(stack.decide(&c).permitted);
        assert_eq!(tm.credential_count(), count_before);
    }

    /// A probe layer recording how often it is consulted.
    struct ProbeLayer {
        level: LayerLevel,
        verdict: Verdict,
        calls: std::sync::atomic::AtomicUsize,
    }

    impl ProbeLayer {
        fn new(level: LayerLevel, verdict: Verdict) -> Self {
            ProbeLayer { level, verdict, calls: std::sync::atomic::AtomicUsize::new(0) }
        }

        fn calls(&self) -> usize {
            self.calls.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    impl AuthzLayer for ProbeLayer {
        fn level(&self) -> LayerLevel {
            self.level
        }

        fn name(&self) -> String {
            format!("probe@{}", self.level)
        }

        fn decide(&self, _ctx: &AuthzContext) -> Verdict {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.verdict.clone()
        }
    }

    #[test]
    fn first_opinion_short_circuits_lower_layers() {
        let upper = Arc::new(ProbeLayer::new(LayerLevel::L2TrustManagement, Verdict::Grant));
        let lower = Arc::new(ProbeLayer::new(
            LayerLevel::L0Os,
            Verdict::Deny("should never run".to_string()),
        ));
        let mut stack = AuthzStack::new().with_rule(CombinationRule::FirstOpinion);
        stack.push(Arc::clone(&upper) as Arc<dyn AuthzLayer>);
        stack.push(Arc::clone(&lower) as Arc<dyn AuthzLayer>);
        let d = stack.decide(&ctx("bob", "Kbob", "read"));
        assert!(d.permitted);
        assert_eq!(upper.calls(), 1);
        assert_eq!(lower.calls(), 0, "lower layer consulted after decision was fixed");
        assert_eq!(d.trace.len(), 1);
        // Under the default rule every layer still runs.
        let mut full = AuthzStack::new();
        let probe = Arc::new(ProbeLayer::new(LayerLevel::L0Os, Verdict::Grant));
        full.push(Arc::new(ProbeLayer::new(LayerLevel::L2TrustManagement, Verdict::Grant)));
        full.push(Arc::clone(&probe) as Arc<dyn AuthzLayer>);
        assert!(full.decide(&ctx("bob", "Kbob", "read")).permitted);
        assert_eq!(probe.calls(), 1);
    }

    #[test]
    fn cached_stack_serves_repeats_and_respects_epochs() {
        let tm = Arc::new(TrustManager::permissive());
        tm.add_policy(
            "Authorizer: POLICY\nLicensees: \"Kbob\"\nConditions: app_domain==\"WebCom\";\n",
        )
        .unwrap();
        let mut stack = AuthzStack::new().with_cache(256);
        stack.push(Arc::new(TrustLayer::new(Arc::clone(&tm))));
        let c = ctx("bob", "Kbob", "read");
        assert!(stack.decide(&c).permitted);
        let d = stack.decide(&c);
        assert!(d.permitted);
        assert_eq!(d.trace.len(), 1);
        assert_eq!(d.trace[0].0, "cache");
        assert_eq!(stack.cache_stats().unwrap().hits, 1);
        // A revocation bumps the trust layer's epoch; the cached grant
        // must not be served again.
        tm.revoke_key("Kbob");
        let d = stack.decide(&c);
        assert!(!d.permitted);
        assert_ne!(d.trace[0].0, "cache");
        assert!(stack.cache_stats().unwrap().invalidations >= 1);
        // The denial is itself cached under the new epoch.
        assert!(!stack.decide(&c).permitted);
        assert_eq!(stack.cache_stats().unwrap().hits, 2);
    }

    #[test]
    fn windows_os_layer_denies_unknown_permission() {
        // Unknown permissions used to degrade to an EXECUTE check —
        // fail-open whenever the trustee happened to hold EXECUTE.
        let os = Arc::new(WindowsSecurity::new("CORP"));
        os.with_domain(|d| {
            d.add_member("Payroll", "bob");
        });
        os.add_ace(
            "SalariesBean",
            Ace {
                kind: AceKind::Allow,
                trustee: Sid::of("CORP", "Payroll"),
                mask: AccessMask::EXECUTE,
            },
        );
        let layer = WindowsOsLayer::new(os, ["SalariesBean".to_string()]);
        // bob holds EXECUTE, so a real execute permission passes...
        assert!(matches!(layer.decide(&ctx("bob", "Kbob", "execute")), Verdict::Grant));
        // ...but a permission the layer does not understand is denied.
        match layer.decide(&ctx("bob", "Kbob", "transmogrify")) {
            Verdict::Deny(reason) => assert!(reason.contains("transmogrify")),
            v => panic!("expected deny for unknown permission, got {v:?}"),
        }
    }

    #[test]
    fn windows_os_layer_mediates_known_objects() {
        let os = Arc::new(WindowsSecurity::new("CORP"));
        os.with_domain(|d| {
            d.add_member("Payroll", "bob");
        });
        os.add_ace(
            "SalariesBean",
            Ace {
                kind: AceKind::Allow,
                trustee: Sid::of("CORP", "Payroll"),
                mask: AccessMask::READ,
            },
        );
        let layer = WindowsOsLayer::new(os, ["SalariesBean".to_string()]);
        assert!(matches!(layer.decide(&ctx("bob", "Kbob", "read")), Verdict::Grant));
        assert!(matches!(
            layer.decide(&ctx("bob", "Kbob", "write")),
            Verdict::Deny(_)
        ));
        assert!(matches!(
            layer.decide(&ctx("mallory", "Km", "read")),
            Verdict::Deny(_)
        ));
        let unmediated = WindowsOsLayer::new(Arc::new(WindowsSecurity::new("X")), []);
        assert!(matches!(
            unmediated.decide(&ctx("bob", "Kbob", "read")),
            Verdict::Abstain
        ));
    }

    #[test]
    fn unix_os_layer_mediates_known_objects() {
        use hetsec_os::unix::{Mode, UnixObject, UnixUser};
        let os = Arc::new(UnixSecurity::new());
        os.add_user("bob", UnixUser { uid: 1000, gid: 100, groups: vec![] });
        os.set_object(
            "SalariesBean",
            UnixObject { owner: 1000, group: 100, mode: Mode::from_octal(0o400) },
        );
        let layer = UnixOsLayer::new(os, ["SalariesBean".to_string()]);
        assert!(matches!(layer.decide(&ctx("bob", "Kbob", "read")), Verdict::Grant));
        assert!(matches!(
            layer.decide(&ctx("bob", "Kbob", "write")),
            Verdict::Deny(_)
        ));
    }

    #[test]
    fn middleware_layer_abstains_for_foreign_domain() {
        let layer = middleware_layer();
        let mut c = ctx("bob", "Kbob", "read");
        c.action.domain = "elsewhere".into();
        assert!(matches!(layer.decide(&c), Verdict::Abstain));
    }

    #[test]
    fn four_layer_stack_full_trace() {
        use hetsec_os::unix::{Mode, UnixObject, UnixUser};
        let os = Arc::new(UnixSecurity::new());
        os.add_user("bob", UnixUser { uid: 1, gid: 1, groups: vec![] });
        os.set_object(
            "SalariesBean",
            UnixObject { owner: 1, group: 1, mode: Mode::from_octal(0o700) },
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(UnixOsLayer::new(os, ["SalariesBean".to_string()])));
        stack.push(middleware_layer());
        stack.push(trust_layer());
        stack.push(Arc::new(ApplicationLayer::denying(Vec::new())));
        let d = stack.decide(&ctx("bob", "Kbob", "read"));
        assert!(d.permitted, "{:?}", d.trace);
        assert_eq!(d.trace.len(), 4);
        // Trace order is top-down.
        assert_eq!(d.trace[0].0, "App(CG)");
        assert_eq!(d.trace[3].0, "OS(U)");
    }
}
