//! Closed-loop load harness for the sharded scheduling fabric.
//!
//! Builds a real fabric — serving clients behind TCP with pipelined
//! connection handling, one [`WebComMaster`] per shard, a
//! [`ShardRouter`] partitioning ops by principal — and drives it with a
//! synthetic workload: up to millions of distinct principals whose
//! policy assertions are compiled into ONE shared store, a
//! Zipf-distributed principal mix (a few hot principals, a long cold
//! tail, like any real tenant population), and a component executor
//! that sleeps for a configurable service time so throughput honestly
//! reflects how much concurrency the transport and dispatch layers
//! keep in flight rather than how fast the host does arithmetic.
//!
//! The interesting comparisons, emitted by the `fig_load` bench into
//! `BENCH_load.json`:
//!
//! * lockstep [`crate::TcpTransport`] vs pipelined
//!   [`crate::MuxTransport`] on one shard — the mux win is latency
//!   hiding on a single socket;
//! * 1 → 2 → 4 shards under the mux — the sharding win is parallel
//!   dispatch pipelines, one per shard, each with its own decision
//!   cache and health model.

use crate::authz::{ScheduledAction, TrustManager};
use crate::fabric::ShardRouter;
use crate::histogram::LatencySnapshot;
use crate::master::{BurstOp, WebComMaster};
use crate::mux::MuxTransport;
use crate::net::{serve_tcp_with, ServeOptions, TcpClientServer};
use crate::protocol::{ArithComponentExecutor, ComponentExecutor, ExecError, ExecOutcome};
use crate::stack::{AuthzStack, TrustLayer};
use crate::transport::{ClientTransport, TcpTransport};
use crate::{ClientConfig, ClientEngine, HealthConfig};
use hetsec_graphs::Value;
use hetsec_keynote::{
    Assertion, Clause, CmpOp, ConditionsProgram, Expr, LicenseeExpr, Principal, Term,
};
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_rbac::User;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How ops arrive at the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Arrival {
    /// Closed loop: a fixed caller population per shard, each issuing
    /// its next op as soon as the previous one completes.
    Closed,
    /// Open loop: ops are injected at a fixed offered rate regardless
    /// of completions (tick-batched), so queueing shows up as latency.
    Open {
        /// Offered load across the whole fabric.
        ops_per_sec: f64,
    },
}

/// One load-run configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Distinct synthetic principals; each gets one compiled policy
    /// assertion in the shared client-side store.
    pub principals: usize,
    /// Total operations to drive through the fabric.
    pub ops: usize,
    /// Shard (master) count.
    pub shards: usize,
    /// Pipelined [`MuxTransport`] when true, lockstep
    /// [`crate::TcpTransport`] when false.
    pub mux: bool,
    /// Mux in-flight window per connection.
    pub window: usize,
    /// Closed-loop caller population per shard (the master's burst
    /// parallelism).
    pub callers: usize,
    /// Server-side worker threads per client connection.
    pub pipeline: usize,
    /// Synthetic component service time (the executor sleeps this
    /// long per invocation).
    pub service_time: Duration,
    /// Zipf exponent for the principal mix (higher = more skew).
    pub zipf_exponent: f64,
    /// Arrival process.
    pub arrival: Arrival,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            principals: 100_000,
            ops: 4_000,
            shards: 1,
            mux: true,
            window: 32,
            callers: 4,
            pipeline: 8,
            service_time: Duration::from_millis(2),
            zipf_exponent: 1.1,
            arrival: Arrival::Closed,
            seed: 0x5EED_0001,
        }
    }
}

/// What one load run measured.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadReport {
    /// Shard count the fabric ran with.
    pub shards: usize,
    /// Whether the mux transport was used.
    pub mux: bool,
    /// Distinct principals in the compiled store.
    pub principals: usize,
    /// Ops driven.
    pub ops: usize,
    /// Ops that completed with [`ExecOutcome::Ok`].
    pub completed: usize,
    /// Ops that were denied or failed.
    pub failed: usize,
    /// Wall-clock microseconds for the measured phase (excludes
    /// store/fabric setup; the vendored serde has no `Duration` impl).
    pub elapsed_us: u64,
    /// Completed ops per second of wall clock.
    pub throughput: f64,
    /// Merged per-dispatch latency distribution across all shards.
    pub latency: LatencySnapshot,
    /// Cross-shard forwards observed (0 when the router pre-partitions).
    pub forwarded: usize,
    /// Fleet-wide dispatch timeouts.
    pub timeouts: usize,
    /// Fleet-wide failovers.
    pub failovers: usize,
}

impl LoadReport {
    /// The measured phase as a [`Duration`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_micros(self.elapsed_us)
    }
}

// ---- Deterministic workload generation (the vendored `rand` is an
// empty placeholder, so the generator is self-contained). ----

/// splitmix64: tiny, fast, and good enough to spread a Zipf draw.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Zipf sampler over ranks `0..n`: a cumulative-weight table sampled by
/// binary search, exact for any exponent.
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl ZipfSampler {
    /// A sampler over `n` ranks with the given exponent.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf over an empty population");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(exponent);
            cumulative.push(total);
        }
        ZipfSampler { cumulative, total }
    }

    /// Draws a rank in `0..n` (rank 0 is the hottest).
    pub fn sample(&self, state: &mut u64) -> usize {
        // 53 uniform mantissa bits → u in [0, 1).
        let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
        let target = u * self.total;
        self.cumulative
            .partition_point(|&c| c < target)
            .min(self.cumulative.len() - 1)
    }
}

/// The synthetic principal key for rank `i`.
pub fn principal_key(i: usize) -> String {
    format!("Kp{i:07}")
}

/// One compiled policy assertion licensing `key` inside the WebCom
/// application domain — the same shape `encode_policy` emits, built
/// directly so a million-principal store skips a million text parses.
fn principal_assertion(key: &str) -> Assertion {
    let mut a = Assertion::new(Principal::Policy, LicenseeExpr::Principal(key.to_string()));
    a.conditions = Some(ConditionsProgram {
        clauses: vec![Clause::Bare(Expr::Cmp {
            op: CmpOp::Eq,
            lhs: Term::Attr("app_domain".to_string()),
            rhs: Term::Str("WebCom".to_string()),
        })],
    });
    a
}

/// Builds the shared client-side authorisation stack: one
/// [`TrustManager`] whose compiled store licenses all `n` synthetic
/// principals. Built once and shared by every serving client — the
/// compiled store's licensee index keeps per-decision cost independent
/// of `n`.
pub fn synthetic_stack(n: usize) -> Arc<AuthzStack> {
    let tm = TrustManager::permissive();
    for i in 0..n {
        tm.add_policy_assertion(principal_assertion(&principal_key(i)))
            .expect("synthetic policy assertion");
    }
    let mut stack = AuthzStack::new();
    stack.push(Arc::new(TrustLayer::new(Arc::new(tm))));
    Arc::new(stack)
}

/// Wraps the arithmetic executor with a fixed synthetic service time,
/// so the fabric's throughput reflects in-flight concurrency (latency
/// hiding) rather than host arithmetic speed.
pub struct SleepingExecutor {
    service: Duration,
}

impl SleepingExecutor {
    /// An executor sleeping `service` per invocation.
    pub fn new(service: Duration) -> Self {
        SleepingExecutor { service }
    }
}

impl ComponentExecutor for SleepingExecutor {
    fn invoke(
        &self,
        user: &User,
        component: &ComponentRef,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        if !self.service.is_zero() {
            std::thread::sleep(self.service);
        }
        ArithComponentExecutor.invoke(user, component, args)
    }
}

fn trust_keys(keys: &[String]) -> Arc<TrustManager> {
    let tm = TrustManager::permissive();
    for k in keys {
        tm.add_policy_assertion(principal_assertion(k))
            .expect("fleet trust assertion");
    }
    Arc::new(tm)
}

/// A running load fabric: serving clients, masters, and the router.
struct Fabric {
    router: ShardRouter,
    servers: Vec<TcpClientServer>,
}

impl Fabric {
    /// Builds `cfg.shards` masters, each with one TCP serving client
    /// (pipelined connection handling) reached over the configured
    /// transport, and wires them into a [`ShardRouter`].
    fn build(cfg: &LoadConfig, stack: &Arc<AuthzStack>) -> Fabric {
        let master_keys: Vec<String> = (0..cfg.shards).map(|s| format!("Kmaster{s}")).collect();
        let master_trust = trust_keys(&master_keys);
        let executor: Arc<dyn ComponentExecutor> =
            Arc::new(SleepingExecutor::new(cfg.service_time));
        let mut servers = Vec::with_capacity(cfg.shards);
        let mut masters = Vec::with_capacity(cfg.shards);
        for (s, master_key) in master_keys.iter().enumerate() {
            let worker_key = format!("Kw{s}");
            let engine = Arc::new(ClientEngine::new(ClientConfig {
                name: format!("w{s}"),
                key_text: worker_key.clone(),
                master_trust: Arc::clone(&master_trust),
                stack: Arc::clone(stack),
                executor: Arc::clone(&executor),
            }));
            let server = serve_tcp_with(
                engine,
                vec!["Dom".into()],
                "127.0.0.1:0",
                ServeOptions {
                    pipeline: cfg.pipeline,
                },
            )
            .expect("serve load client");
            let master = WebComMaster::new(
                master_key.clone(),
                trust_keys(std::slice::from_ref(&worker_key)),
            )
            .with_op_timeout(Duration::from_secs(10))
            .with_burst_parallelism(cfg.callers)
            .with_health_config(HealthConfig {
                max_in_flight: (cfg.window.max(cfg.callers) * 2).max(64),
                ..HealthConfig::default()
            });
            let transport: Arc<dyn ClientTransport> = if cfg.mux {
                Arc::new(MuxTransport::new(server.local_addr()).with_window(cfg.window))
            } else {
                Arc::new(TcpTransport::new(server.local_addr()))
            };
            master.register_transport(format!("w{s}"), &worker_key, transport, vec!["Dom".into()]);
            servers.push(server);
            masters.push(Arc::new(master));
        }
        Fabric {
            router: ShardRouter::local(masters),
            servers,
        }
    }

    fn teardown(self) {
        for s in self.servers {
            s.stop();
        }
    }
}

/// Generates the op mix: every op is the same cheap component under a
/// Zipf-drawn principal, so routing and authorisation — not payload
/// shape — are what varies.
fn generate_ops(cfg: &LoadConfig) -> Vec<BurstOp> {
    let zipf = ZipfSampler::new(cfg.principals, cfg.zipf_exponent);
    let mut state = cfg.seed;
    let component = ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add");
    (0..cfg.ops)
        .map(|i| {
            let rank = zipf.sample(&mut state);
            BurstOp {
                action: ScheduledAction::new(component.clone(), "Dom", "Worker"),
                user: "worker".into(),
                principal: principal_key(rank),
                args: vec![Value::Int(i as i64), Value::Int(1)],
            }
        })
        .collect()
}

/// Runs one configuration end to end and reports what it measured.
/// Setup (compiling the principal store, binding sockets) happens
/// before the clock starts.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let stack = synthetic_stack(cfg.principals);
    run_load_with_stack(cfg, &stack)
}

/// [`run_load`] against a pre-built principal store, so a sweep over
/// fabric shapes pays the store compilation once.
pub fn run_load_with_stack(cfg: &LoadConfig, stack: &Arc<AuthzStack>) -> LoadReport {
    let fabric = Fabric::build(cfg, stack);
    let ops = generate_ops(cfg);
    let total = ops.len();
    let started = Instant::now();
    let outcomes = match cfg.arrival {
        Arrival::Closed => fabric.router.schedule_burst(ops),
        Arrival::Open { ops_per_sec } => run_open(&fabric.router, ops, ops_per_sec),
    };
    let elapsed = started.elapsed();
    let completed = outcomes
        .iter()
        .filter(|o| matches!(o, ExecOutcome::Ok(_)))
        .count();
    let stats = fabric.router.merged_stats();
    let report = LoadReport {
        shards: cfg.shards,
        mux: cfg.mux,
        principals: cfg.principals,
        ops: total,
        completed,
        failed: total - completed,
        elapsed_us: elapsed.as_micros() as u64,
        throughput: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: stats.dispatch_latency.clone(),
        forwarded: stats.forwarded,
        timeouts: stats.timeouts,
        failovers: stats.failovers,
    };
    fabric.teardown();
    report
}

/// Open arrival: inject tick-sized batches at the offered rate from
/// spawned threads, then join them all. Completion lag shows up as
/// dispatch latency, not as a slower injection rate.
fn run_open(router: &ShardRouter, mut ops: Vec<BurstOp>, ops_per_sec: f64) -> Vec<ExecOutcome> {
    const TICK: Duration = Duration::from_millis(20);
    let per_tick = ((ops_per_sec * TICK.as_secs_f64()).ceil() as usize).max(1);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let t0 = Instant::now();
        let mut tick = 0u32;
        while !ops.is_empty() {
            let batch: Vec<BurstOp> = ops.drain(..per_tick.min(ops.len())).collect();
            handles.push(scope.spawn(move || router.schedule_burst(batch)));
            tick += 1;
            let next = TICK * tick;
            if let Some(wait) = next.checked_sub(t0.elapsed()) {
                std::thread::sleep(wait);
            }
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("open-arrival batch"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = ZipfSampler::new(1000, 1.1);
        let mut state = 7u64;
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            let r = zipf.sample(&mut state);
            counts[r] += 1;
        }
        // Rank 0 must dominate any deep-tail rank, and the tail must
        // still be reachable.
        assert!(counts[0] > counts[500] * 5, "head {} tail {}", counts[0], counts[500]);
        assert!(counts.iter().skip(500).sum::<usize>() > 0, "tail never sampled");
    }

    #[test]
    fn synthetic_store_licenses_its_principals() {
        let stack = synthetic_stack(50);
        let ctx = crate::stack::AuthzContext {
            user: "worker".into(),
            principal: principal_key(17),
            action: ScheduledAction::new(
                ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                "Dom",
                "Worker",
            ),
            credentials: vec![],
        };
        assert!(stack.decide(&ctx).permitted);
        let stranger = crate::stack::AuthzContext {
            principal: "Kp9999999".to_string(),
            ..ctx
        };
        assert!(!stack.decide(&stranger).permitted);
    }

    #[test]
    fn tiny_closed_loop_run_completes_everything() {
        let cfg = LoadConfig {
            principals: 200,
            ops: 60,
            shards: 2,
            mux: true,
            window: 8,
            callers: 2,
            pipeline: 4,
            service_time: Duration::from_micros(200),
            ..LoadConfig::default()
        };
        let report = run_load(&cfg);
        assert_eq!(report.completed, 60, "report: {report:?}");
        assert_eq!(report.failed, 0);
        assert!(report.throughput > 0.0);
        assert_eq!(report.latency.count(), 60);
    }

    #[test]
    fn tiny_open_loop_run_completes_everything() {
        let cfg = LoadConfig {
            principals: 100,
            ops: 40,
            shards: 1,
            mux: true,
            window: 8,
            callers: 2,
            pipeline: 4,
            service_time: Duration::from_micros(100),
            arrival: Arrival::Open { ops_per_sec: 2000.0 },
            ..LoadConfig::default()
        };
        let report = run_load(&cfg);
        assert_eq!(report.completed, 40, "report: {report:?}");
    }
}
