//! The WebCom master: authenticates clients, selects an authorised
//! client for every fireable component, and drives condensed-graph
//! applications through the scheduler (Figure 3, §6).

use crate::authz::{ScheduledAction, TrustManager};
use crate::protocol::{ClientMessage, ExecOutcome, ScheduleRequest};
use crate::client::ClientHandle;
use crossbeam::channel::{unbounded, Sender};
use hetsec_graphs::{EngineError, OpExecutor, Value};
use hetsec_keynote::ast::Assertion;
use hetsec_middleware::component::ComponentRef;
use hetsec_rbac::{Domain, Role, User};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A client as the master sees it.
struct ClientEntry {
    name: String,
    key_text: String,
    sender: Sender<ClientMessage>,
    /// Domains this client can serve.
    domains: Vec<Domain>,
}

/// The binding of a graph primitive onto a component and an execution
/// identity — what the IDE's palette/partial-spec resolution produces
/// (§6, Figure 11).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Binding {
    /// The component to invoke.
    pub component: ComponentRef,
    /// Execution domain.
    pub domain: Domain,
    /// Execution role.
    pub role: Role,
    /// Executing user.
    pub user: User,
    /// The user's key text.
    pub principal: String,
}

/// Per-scheduling statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MasterStats {
    /// Operations scheduled successfully.
    pub scheduled: usize,
    /// Operations with no authorised client.
    pub unschedulable: usize,
    /// Denials returned by clients.
    pub client_denials: usize,
    /// Failovers: a dead client was skipped and the operation retried on
    /// another authorised client (WebCom's fault tolerance).
    pub rescheduled: usize,
    /// Client-selection authorization decisions served from the trust
    /// manager's decision cache.
    pub cache_hits: u64,
    /// Client-selection decisions that ran the full KeyNote query.
    pub cache_misses: u64,
    /// Cached decisions discarded because the trust policy's epoch had
    /// moved (policy/credential/revocation change).
    pub cache_invalidations: u64,
}

/// The WebCom master.
pub struct WebComMaster {
    /// The master's own key text (sent to clients for mutual checks).
    key_text: String,
    /// Trust policy over *client* keys: which clients may be handed
    /// which operations (Figure 3: "uses their credentials to determine
    /// what operations it may schedule to them").
    client_trust: Arc<TrustManager>,
    clients: RwLock<Vec<ClientEntry>>,
    bindings: RwLock<HashMap<String, Binding>>,
    /// Credentials forwarded with every request.
    forwarded_credentials: RwLock<Vec<Assertion>>,
    op_counter: AtomicU64,
    stats: Mutex<MasterStats>,
}

impl WebComMaster {
    /// A master with the given identity and client-trust policy.
    pub fn new(key_text: impl Into<String>, client_trust: Arc<TrustManager>) -> Self {
        WebComMaster {
            key_text: key_text.into(),
            client_trust,
            clients: RwLock::new(Vec::new()),
            bindings: RwLock::new(HashMap::new()),
            forwarded_credentials: RwLock::new(Vec::new()),
            op_counter: AtomicU64::new(0),
            stats: Mutex::new(MasterStats::default()),
        }
    }

    /// Registers a connected client as serving `domains`.
    pub fn register_client(&self, handle: &ClientHandle, domains: Vec<Domain>) {
        self.clients.write().push(ClientEntry {
            name: handle.name.clone(),
            key_text: handle.key_text.clone(),
            sender: handle.sender(),
            domains,
        });
    }

    /// Binds a graph primitive name to a component + execution identity.
    pub fn bind(&self, primitive: &str, binding: Binding) {
        self.bindings.write().insert(primitive.to_string(), binding);
    }

    /// Adds a credential forwarded with every scheduling request (e.g. a
    /// delegation chain supporting the executing user).
    pub fn forward_credential(&self, credential: Assertion) {
        self.forwarded_credentials.write().push(credential);
    }

    /// Scheduling statistics so far, including the client-trust
    /// decision-cache counters (every client × operation authorization
    /// check in [`schedule`](Self::schedule) goes through that cache).
    pub fn stats(&self) -> MasterStats {
        let mut stats = self.stats.lock().clone();
        let cache = self.client_trust.cache_stats();
        stats.cache_hits = cache.hits;
        stats.cache_misses = cache.misses;
        stats.cache_invalidations = cache.invalidations;
        stats
    }

    /// Schedules one action, blocking for the reply. Every client that
    /// (a) serves the action's domain and (b) whose key the master's
    /// trust policy authorises for the action is eligible; clients whose
    /// channel is dead are skipped and the operation fails over to the
    /// next eligible client (WebCom's fault tolerance).
    pub fn schedule(
        &self,
        action: &ScheduledAction,
        user: &User,
        principal: &str,
        args: Vec<Value>,
    ) -> ExecOutcome {
        let op_id = self.op_counter.fetch_add(1, Ordering::Relaxed);
        let targets: Vec<(String, Sender<ClientMessage>)> = {
            let clients = self.clients.read();
            clients
                .iter()
                .filter(|c| {
                    c.domains.contains(&action.domain)
                        && self.client_trust.authorizes(&c.key_text, action)
                })
                .map(|c| (c.name.clone(), c.sender.clone()))
                .collect()
        };
        if targets.is_empty() {
            self.stats.lock().unschedulable += 1;
            return ExecOutcome::Denied(format!(
                "no authorised client for {} in {}",
                action.component.identifier(),
                action.domain
            ));
        }
        let mut attempts = 0usize;
        for (_name, sender) in &targets {
            let (reply_tx, reply_rx) = unbounded();
            let request = ScheduleRequest {
                op_id,
                action: action.clone(),
                user: user.clone(),
                principal: principal.to_string(),
                master_key: self.key_text.clone(),
                credentials: self.forwarded_credentials.read().clone(),
                args: args.clone(),
                reply_to: reply_tx,
            };
            attempts += 1;
            if sender.send(ClientMessage::Request(Box::new(request))).is_err() {
                continue; // dead client: fail over
            }
            match reply_rx.recv() {
                Ok(reply) => {
                    let mut stats = self.stats.lock();
                    if attempts > 1 {
                        stats.rescheduled += 1;
                    }
                    match &reply.outcome {
                        ExecOutcome::Ok(_) => stats.scheduled += 1,
                        ExecOutcome::Denied(_) => stats.client_denials += 1,
                        ExecOutcome::Failed(_) => {}
                    }
                    return reply.outcome;
                }
                Err(_) => continue, // client died mid-request: fail over
            }
        }
        self.stats.lock().unschedulable += 1;
        ExecOutcome::Failed(format!(
            "all {} authorised clients for {} are unreachable",
            targets.len(),
            action.component.identifier()
        ))
    }

    /// Schedules the binding registered for a primitive.
    pub fn schedule_primitive(&self, primitive: &str, args: Vec<Value>) -> ExecOutcome {
        let binding = { self.bindings.read().get(primitive).cloned() };
        let Some(b) = binding else {
            return ExecOutcome::Failed(format!("no binding for primitive `{primitive}`"));
        };
        let action = ScheduledAction::new(b.component.clone(), b.domain.clone(), b.role.clone());
        self.schedule(&action, &b.user, &b.principal, args)
    }
}

/// The master as a condensed-graph executor: every `Primitive` node is
/// scheduled to an authorised client, so evaluating a graph *is*
/// distributing the application (Figure 3).
impl OpExecutor for WebComMaster {
    fn execute(&self, op: &str, args: &[Value]) -> Result<Value, EngineError> {
        match self.schedule_primitive(op, args.to_vec()) {
            ExecOutcome::Ok(v) => Ok(v),
            ExecOutcome::Denied(reason) => Err(EngineError::Refused {
                op: op.to_string(),
                reason,
            }),
            ExecOutcome::Failed(reason) => Err(EngineError::BadArguments {
                op: op.to_string(),
                reason,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{spawn_client, ClientConfig};
    use crate::protocol::ArithComponentExecutor;
    use crate::stack::{AuthzStack, TrustLayer};
    use hetsec_graphs::{Engine, GraphBuilder, Source};
    use hetsec_middleware::naming::MiddlewareKind;

    fn tm(policy: &str) -> Arc<TrustManager> {
        let t = TrustManager::permissive();
        t.add_policy(policy).unwrap();
        Arc::new(t)
    }

    fn full_fixture() -> (WebComMaster, ClientHandle) {
        // Master trusts client key Kc1 for everything in Dom.
        let client_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kc1\"\n\
             Conditions: app_domain==\"WebCom\" && Domain==\"Dom\";\n",
        );
        let master = WebComMaster::new("Kmaster", client_trust);
        // Client trusts the master for WebCom, and the worker user key.
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\n\
             Conditions: app_domain==\"WebCom\" && Domain==\"Dom\" && Role==\"Worker\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        let client = spawn_client(ClientConfig {
            name: "c1".to_string(),
            key_text: "Kc1".to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        });
        master.register_client(&client, vec!["Dom".into()]);
        (master, client)
    }

    fn bind_op(master: &WebComMaster, primitive: &str, operation: &str) {
        master.bind(
            primitive,
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", operation),
                domain: "Dom".into(),
                role: "Worker".into(),
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
    }

    #[test]
    fn schedules_to_authorised_client() {
        let (master, client) = full_fixture();
        bind_op(&master, "add", "add");
        let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(3)));
        assert_eq!(master.stats().scheduled, 1);
        client.shutdown();
    }

    #[test]
    fn repeated_scheduling_reuses_cached_client_selection() {
        let (master, client) = full_fixture();
        bind_op(&master, "add", "add");
        for _ in 0..5 {
            let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
            assert_eq!(out, ExecOutcome::Ok(Value::Int(3)));
        }
        let stats = master.stats();
        assert_eq!(stats.scheduled, 5);
        // The first selection runs the KeyNote query; the other four are
        // served from the decision cache.
        assert!(stats.cache_hits >= 4, "stats: {stats:?}");
        client.shutdown();
    }

    #[test]
    fn no_client_for_foreign_domain() {
        let (master, client) = full_fixture();
        master.bind(
            "far",
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Elsewhere", "Calc", "add"),
                domain: "Elsewhere".into(),
                role: "Worker".into(),
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
        let out = master.schedule_primitive("far", vec![]);
        assert!(matches!(out, ExecOutcome::Denied(ref m) if m.contains("no authorised client")));
        assert_eq!(master.stats().unschedulable, 1);
        client.shutdown();
    }

    #[test]
    fn untrusted_client_key_not_selected() {
        // Master policy trusts only Kc1; register a client with key Kevil.
        let client_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kc1\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let master = WebComMaster::new("Kmaster", client_trust);
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        ))));
        let client = spawn_client(ClientConfig {
            name: "evil".to_string(),
            key_text: "Kevil".to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        });
        master.register_client(&client, vec!["Dom".into()]);
        bind_op(&master, "add", "add");
        let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
        assert!(matches!(out, ExecOutcome::Denied(_)));
        client.shutdown();
    }

    #[test]
    fn unbound_primitive_fails() {
        let (master, client) = full_fixture();
        let out = master.schedule_primitive("ghost", vec![]);
        assert!(matches!(out, ExecOutcome::Failed(ref m) if m.contains("no binding")));
        client.shutdown();
    }

    #[test]
    fn drives_condensed_graph_end_to_end() {
        let (master, client) = full_fixture();
        bind_op(&master, "add", "add");
        bind_op(&master, "mul", "mul");
        // (p0 + p1) * p0
        let mut b = GraphBuilder::new("app", 2);
        let s = b.primitive("sum", "add", vec![Source::Param(0), Source::Param(1)]);
        let m = b.primitive("scale", "mul", vec![Source::Node(s), Source::Param(0)]);
        let t = b.output(Source::Node(m)).unwrap();
        let engine = Engine::new(&master);
        let result = engine.evaluate(&t, &[Value::Int(3), Value::Int(4)]).unwrap();
        assert_eq!(result, Value::Int(21));
        assert_eq!(master.stats().scheduled, 2);
        let stats = client.shutdown();
        assert_eq!(stats.executed, 2);
    }

    #[test]
    fn graph_refusal_propagates_as_engine_error() {
        let (master, client) = full_fixture();
        // Bind to a role the user's trust policy does not cover.
        master.bind(
            "add",
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                domain: "Dom".into(),
                role: "Admin".into(), // worker only holds Worker
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
        let mut b = GraphBuilder::new("app", 0);
        let c1 = b.constant("a", 1i64);
        let n = b.primitive("go", "add", vec![Source::Node(c1), Source::Node(c1)]);
        let t = b.output(Source::Node(n)).unwrap();
        let engine = Engine::new(&master);
        let err = engine.evaluate(&t, &[]).unwrap_err();
        assert!(matches!(err, EngineError::Refused { .. }));
        client.shutdown();
    }
}

#[cfg(test)]
mod failover_tests {
    use super::*;
    use crate::client::{spawn_client, ClientConfig};
    use crate::protocol::ArithComponentExecutor;
    use crate::stack::{AuthzStack, TrustLayer};
    use hetsec_middleware::naming::MiddlewareKind;

    fn tm(policy: &str) -> Arc<TrustManager> {
        let t = TrustManager::permissive();
        t.add_policy(policy).unwrap();
        Arc::new(t)
    }

    fn spawn(name: &str, key: &str) -> crate::client::ClientHandle {
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        spawn_client(ClientConfig {
            name: name.to_string(),
            key_text: key.to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        })
    }

    fn master_for(keys: &[&str]) -> WebComMaster {
        let mut policy = String::new();
        for k in keys {
            policy.push_str(&format!(
                "Authorizer: POLICY\nLicensees: \"{k}\"\nConditions: app_domain==\"WebCom\";\n\n"
            ));
        }
        let master = WebComMaster::new("Kmaster", tm(&policy));
        master.bind(
            "add",
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                domain: "Dom".into(),
                role: "Worker".into(),
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
        master
    }

    #[test]
    fn fails_over_to_surviving_client() {
        let master = master_for(&["Kc1", "Kc2"]);
        let c1 = spawn("c1", "Kc1");
        let c2 = spawn("c2", "Kc2");
        master.register_client(&c1, vec!["Dom".into()]);
        master.register_client(&c2, vec!["Dom".into()]);
        // Kill the first client; the master should fail over to c2.
        c1.shutdown();
        let out = master.schedule_primitive("add", vec![Value::Int(20), Value::Int(22)]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(42)));
        let stats = master.stats();
        assert_eq!(stats.scheduled, 1);
        assert_eq!(stats.rescheduled, 1);
        let s2 = c2.shutdown();
        assert_eq!(s2.executed, 1);
    }

    #[test]
    fn all_clients_dead_reports_failure() {
        let master = master_for(&["Kc1", "Kc2"]);
        let c1 = spawn("c1", "Kc1");
        let c2 = spawn("c2", "Kc2");
        master.register_client(&c1, vec!["Dom".into()]);
        master.register_client(&c2, vec!["Dom".into()]);
        c1.shutdown();
        c2.shutdown();
        let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(1)]);
        assert!(matches!(out, ExecOutcome::Failed(ref m) if m.contains("unreachable")));
        assert_eq!(master.stats().unschedulable, 1);
    }

    #[test]
    fn no_failover_needed_when_first_client_healthy() {
        let master = master_for(&["Kc1", "Kc2"]);
        let c1 = spawn("c1", "Kc1");
        let c2 = spawn("c2", "Kc2");
        master.register_client(&c1, vec!["Dom".into()]);
        master.register_client(&c2, vec!["Dom".into()]);
        let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(1)]);
        assert!(out.is_ok());
        assert_eq!(master.stats().rescheduled, 0);
        let s1 = c1.shutdown();
        let s2 = c2.shutdown();
        assert_eq!(s1.executed + s2.executed, 1);
    }
}
