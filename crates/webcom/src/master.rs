//! The WebCom master: authenticates clients, selects an authorised
//! client for every fireable component, and drives condensed-graph
//! applications through the scheduler (Figure 3, §6).
//!
//! Scheduling goes through the [`ClientTransport`] abstraction, so the
//! same dispatch loop drives in-process clients (channel fabric) and
//! remote ones (TCP). The loop implements WebCom's fault-tolerance
//! story: every call carries a deadline, retryable failures are retried
//! with bounded exponential backoff, and a client that times out or
//! crashes has its operation rescheduled on another client registered
//! for the same domain (the paper's "failed operations are
//! rescheduled").
//!
//! Dispatch is *health-aware* (see [`crate::health`]): every transport
//! call feeds a per-client EWMA latency / error-rate record, eligible
//! clients are tried in health order rather than registration order, a
//! circuit breaker ejects a client that keeps failing (so a dead peer
//! is discovered once, not once per operation) and probes it back with
//! a single half-open trial call after a cooldown, and bounded
//! per-client in-flight quotas shed load to the next eligible client
//! instead of queueing. Each `schedule` call is additionally bounded by
//! a whole-operation deadline so one operation can never block for
//! `targets × max_attempts × op_timeout`.

use crate::authz::{AuthzRequest, ScheduledAction, TrustManager};
use crate::client::ClientHandle;
use crate::fabric::ShardInfo;
use crate::health::{ClientHealth, HealthConfig, HealthSnapshot, Refusal};
use crate::histogram::{LatencyHistogram, LatencySnapshot};
use crate::stamp::{StampIssuer, StampVerifier};
use crate::protocol::{
    ExecError, ExecErrorKind, ExecOutcome, ScheduleReply, ScheduleRequest, MAX_FORWARD_HOPS,
};
use crate::transport::{ChannelTransport, ClientTransport, TcpTransport};
use hetsec_graphs::{EngineError, OpExecutor, Value};
use hetsec_keynote::ast::Assertion;
use hetsec_middleware::component::ComponentRef;
use hetsec_rbac::{Domain, Role, User};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A client as the master sees it: an identity, the domains it serves,
/// the transport to reach it, and its observed health.
struct ClientEntry {
    name: String,
    key_text: String,
    transport: Arc<dyn ClientTransport>,
    /// Domains this client can serve.
    domains: Vec<Domain>,
    /// Observed behaviour: EWMA latency/error rate, breaker, quota.
    health: Arc<ClientHealth>,
}

/// One eligible dispatch target for a scheduling decision.
struct Target {
    transport: Arc<dyn ClientTransport>,
    health: Arc<ClientHealth>,
}

/// A routed burst op awaiting dispatch: original position, wire op id,
/// the op, its home shard (if off-shard), and the authorised targets.
type IndexedJob = (usize, u64, BurstOp, Option<usize>, Vec<Target>);

/// Panic-safe increment/decrement of the in-flight gauge.
struct GaugeGuard<'a>(&'a AtomicUsize);

impl<'a> GaugeGuard<'a> {
    fn new(gauge: &'a AtomicUsize) -> Self {
        gauge.fetch_add(1, Ordering::SeqCst);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Time left before a whole-operation deadline, or `None` once it has
/// passed (a zero remainder counts as passed: there is no budget left
/// to give a transport call).
fn remaining_budget(started: Instant, deadline: Duration) -> Option<Duration> {
    let remaining = deadline.checked_sub(started.elapsed())?;
    if remaining.is_zero() {
        None
    } else {
        Some(remaining)
    }
}

/// The binding of a graph primitive onto a component and an execution
/// identity — what the IDE's palette/partial-spec resolution produces
/// (§6, Figure 11).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Binding {
    /// The component to invoke.
    pub component: ComponentRef,
    /// Execution domain.
    pub domain: Domain,
    /// Execution role.
    pub role: Role,
    /// Executing user.
    pub user: User,
    /// The user's key text.
    pub principal: String,
}

/// One operation of a burst handed to
/// [`WebComMaster::schedule_burst`]: the per-op arguments of
/// [`WebComMaster::schedule`], owned so a burst can be built up front.
#[derive(Clone, Debug)]
pub struct BurstOp {
    /// The action to schedule.
    pub action: ScheduledAction,
    /// The executing user.
    pub user: User,
    /// The requesting principal's key text.
    pub principal: String,
    /// Operand values for the component.
    pub args: Vec<Value>,
}

/// How the master retries retryable failures on one client before
/// failing over to the next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per client (1 = no retry).
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// No retries at all (first failure fails over immediately).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The backoff before retry number `retry` (1-based): exponential,
    /// capped at `max_delay`.
    pub fn backoff(&self, retry: usize) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16) as u32;
        self.base_delay
            .saturating_mul(factor)
            .min(self.max_delay)
    }
}

/// Per-scheduling statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MasterStats {
    /// Operations scheduled successfully.
    pub scheduled: usize,
    /// Operations with no authorised client at selection time (nobody
    /// serves the domain, or the trust policy licenses no registered
    /// key). Dispatch exhaustion is counted separately in `exhausted`.
    pub unschedulable: usize,
    /// Operations whose every authorised client was tried (or refused
    /// by its breaker/quota) without success — the dispatch loop ran
    /// out of targets.
    pub exhausted: usize,
    /// Operations aborted because the whole-operation scheduling
    /// deadline elapsed mid-dispatch.
    pub deadline_exceeded: usize,
    /// Denials returned by clients.
    pub client_denials: usize,
    /// Operations that completed only after failing over off their first
    /// client (WebCom's fault tolerance).
    pub rescheduled: usize,
    /// Same-client re-attempts of retryable failures.
    pub retries: usize,
    /// Calls that hit their per-request deadline.
    pub timeouts: usize,
    /// Times the dispatch loop gave up on one client and moved the
    /// operation to another.
    pub failovers: usize,
    /// Operations currently inside the dispatch loop (gauge).
    pub in_flight: usize,
    /// Closed → open circuit-breaker transitions across all clients.
    pub breaker_trips: u64,
    /// Half-open probe calls admitted across all clients.
    pub half_open_probes: u64,
    /// Operations shed off a client at its in-flight quota (backpressure).
    pub shed: u64,
    /// Replies served from a client's executed-op memo instead of a
    /// second execution (idempotent replay after a timed-out call).
    pub replayed: usize,
    /// Client-selection authorization decisions served from the trust
    /// manager's decision cache.
    pub cache_hits: u64,
    /// Client-selection decisions that ran the full KeyNote query.
    pub cache_misses: u64,
    /// Cached decisions discarded because the trust policy's epoch had
    /// moved (policy/credential/revocation change).
    pub cache_invalidations: u64,
    /// Operations this master handed to the peer master owning the
    /// principal's shard (sharded fabric only).
    pub forwarded: usize,
    /// Operations received from a peer master and dispatched locally
    /// because this master owns the principal's shard.
    pub forward_received: usize,
    /// Forwards rejected by the hop-count guard — the shard rings of
    /// two masters disagree and the op would otherwise loop.
    pub forward_rejected: usize,
    /// Verdict stamps this master signed over its forwarded credentials
    /// (fresh signings only; memoized re-attachment is free).
    pub stamps_issued: u64,
    /// Stamps arriving on forwarded requests whose signature checked
    /// out against a fleet key; their verdicts were admitted into this
    /// master's verify cache.
    pub stamps_admitted: u64,
    /// Incoming stamps refused: issuer outside the fleet trust set,
    /// malformed fields, or a signature that does not verify.
    pub stamps_rejected: u64,
    /// Incoming stamps ignored as stale (older than the issuer's
    /// highest seen epoch); their credentials fall back to full
    /// verification.
    pub stamps_stale: u64,
    /// Log-bucketed distribution of whole-dispatch latencies (queue +
    /// retries + failover per op); `dispatch_latency.p50()/p99()/p999()`
    /// read the percentiles.
    pub dispatch_latency: LatencySnapshot,
}

impl MasterStats {
    /// Folds another master's stats into this one: counters summed,
    /// gauges summed, latency histograms merged. Used for fleet-wide
    /// views over a sharded fabric.
    pub fn merge(&mut self, other: &MasterStats) {
        self.scheduled += other.scheduled;
        self.unschedulable += other.unschedulable;
        self.exhausted += other.exhausted;
        self.deadline_exceeded += other.deadline_exceeded;
        self.client_denials += other.client_denials;
        self.rescheduled += other.rescheduled;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.failovers += other.failovers;
        self.in_flight += other.in_flight;
        self.breaker_trips += other.breaker_trips;
        self.half_open_probes += other.half_open_probes;
        self.shed += other.shed;
        self.replayed += other.replayed;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_invalidations += other.cache_invalidations;
        self.forwarded += other.forwarded;
        self.forward_received += other.forward_received;
        self.forward_rejected += other.forward_rejected;
        self.stamps_issued += other.stamps_issued;
        self.stamps_admitted += other.stamps_admitted;
        self.stamps_rejected += other.stamps_rejected;
        self.stamps_stale += other.stamps_stale;
        self.dispatch_latency.merge(&other.dispatch_latency);
    }
}

/// The WebCom master.
pub struct WebComMaster {
    /// The master's own key text (sent to clients for mutual checks).
    key_text: String,
    /// Trust policy over *client* keys: which clients may be handed
    /// which operations (Figure 3: "uses their credentials to determine
    /// what operations it may schedule to them").
    client_trust: Arc<TrustManager>,
    clients: RwLock<Vec<ClientEntry>>,
    bindings: RwLock<HashMap<String, Binding>>,
    /// Credentials forwarded with every request.
    forwarded_credentials: RwLock<Vec<Assertion>>,
    op_counter: AtomicU64,
    retry: RetryPolicy,
    /// Per-call reply deadline.
    op_timeout: Duration,
    /// Whole-operation deadline for one `schedule` call; defaults to
    /// 4 × `op_timeout` when unset.
    schedule_deadline: Option<Duration>,
    /// Health model applied to clients registered from here on.
    health_cfg: HealthConfig,
    /// Worker threads a `schedule_burst` call may use to dispatch its
    /// operations concurrently (1 = the classic sequential loop).
    burst_parallelism: usize,
    /// Signs verdict stamps over the forwarded credentials so receiving
    /// nodes can admit their verdicts without per-credential RSA.
    stamp_issuer: Option<Arc<StampIssuer>>,
    /// Admits stamps riding forwarded requests into this master's
    /// verify cache (fleet trust set + epoch watermarks).
    stamp_verifier: Option<Arc<StampVerifier>>,
    /// This master's place in a sharded fabric, if any: the consistent-
    /// hash ring, its own shard id, and links to its peers.
    shard: RwLock<Option<Arc<ShardInfo>>>,
    /// Dispatch-latency histogram behind `MasterStats::dispatch_latency`.
    dispatch_hist: LatencyHistogram,
    in_flight: AtomicUsize,
    stats: Mutex<MasterStats>,
}

impl WebComMaster {
    /// A master with the given identity and client-trust policy.
    pub fn new(key_text: impl Into<String>, client_trust: Arc<TrustManager>) -> Self {
        WebComMaster {
            key_text: key_text.into(),
            client_trust,
            clients: RwLock::new(Vec::new()),
            bindings: RwLock::new(HashMap::new()),
            forwarded_credentials: RwLock::new(Vec::new()),
            op_counter: AtomicU64::new(0),
            retry: RetryPolicy::default(),
            op_timeout: Duration::from_secs(5),
            schedule_deadline: None,
            health_cfg: HealthConfig::default(),
            burst_parallelism: 1,
            stamp_issuer: None,
            stamp_verifier: None,
            shard: RwLock::new(None),
            dispatch_hist: LatencyHistogram::new(),
            in_flight: AtomicUsize::new(0),
            stats: Mutex::new(MasterStats::default()),
        }
    }

    /// Overrides the retry policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the per-call reply deadline.
    pub fn with_op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Overrides the whole-operation scheduling deadline (default:
    /// 4 × the per-call `op_timeout`). One `schedule` call never blocks
    /// longer than this, regardless of how many targets and retries the
    /// dispatch loop walks.
    pub fn with_schedule_deadline(mut self, deadline: Duration) -> Self {
        self.schedule_deadline = Some(deadline);
        self
    }

    /// Overrides the health model (breaker thresholds, cooldown, EWMA
    /// weight, in-flight quota). Applies to clients registered *after*
    /// this call — configure the master before registering clients.
    pub fn with_health_config(mut self, cfg: HealthConfig) -> Self {
        self.health_cfg = cfg;
        self
    }

    /// Lets one [`schedule_burst`](Self::schedule_burst) call dispatch
    /// up to `n` operations concurrently. The default of 1 keeps the
    /// sequential loop (and its deterministic call ordering, which the
    /// scripted-transport tests rely on); the sharded fabric and the
    /// load harness raise it so a burst's ops overlap in flight — the
    /// whole point of the multiplexed transport.
    pub fn with_burst_parallelism(mut self, n: usize) -> Self {
        self.burst_parallelism = n.max(1);
        self
    }

    /// Gives this master a stamp-signing identity: every request it
    /// builds carries verdict stamps over its forwarded credentials, so
    /// receiving nodes that trust `issuer`'s key skip per-credential
    /// RSA verification.
    pub fn with_stamp_issuer(mut self, issuer: Arc<StampIssuer>) -> Self {
        self.stamp_issuer = Some(issuer);
        self
    }

    /// Lets this master admit verdict stamps riding forwarded requests
    /// into its own verify cache, per `verifier`'s fleet trust set.
    pub fn with_stamp_verifier(mut self, verifier: Arc<StampVerifier>) -> Self {
        self.stamp_verifier = Some(verifier);
        self
    }

    /// Places this master in a sharded fabric. Ops whose principal
    /// hashes to a different shard are forwarded over the peer links in
    /// `info` instead of being dispatched locally. May be called after
    /// construction because peer links typically reference the other
    /// masters, which must exist first.
    pub fn set_shard(&self, info: Arc<ShardInfo>) {
        *self.shard.write() = Some(info);
    }

    /// This master's shard id, when sharded.
    pub fn shard_id(&self) -> Option<usize> {
        self.shard.read().as_ref().map(|s| s.shard_id)
    }

    /// The effective whole-operation deadline.
    fn schedule_deadline(&self) -> Duration {
        self.schedule_deadline
            .unwrap_or_else(|| self.op_timeout.saturating_mul(4))
    }

    /// Registers an in-process client as serving `domains` (channel
    /// transport — the fast path).
    pub fn register_client(&self, handle: &ClientHandle, domains: Vec<Domain>) {
        self.register_transport(
            handle.name.clone(),
            handle.key_text.clone(),
            Arc::new(ChannelTransport::new(handle.sender())),
            domains,
        );
    }

    /// Registers a client reachable over an arbitrary transport.
    pub fn register_transport(
        &self,
        name: impl Into<String>,
        key_text: impl Into<String>,
        transport: Arc<dyn ClientTransport>,
        domains: Vec<Domain>,
    ) {
        self.clients.write().push(ClientEntry {
            name: name.into(),
            key_text: key_text.into(),
            transport,
            domains,
            health: Arc::new(ClientHealth::new(self.health_cfg)),
        });
    }

    /// Dials a serving client at `addr`, performs the Identify
    /// handshake, and registers it under the identity and domains it
    /// announced. Returns the client's announced name.
    pub fn register_tcp(&self, addr: SocketAddr) -> Result<String, ExecError> {
        let transport = TcpTransport::new(addr);
        let identity = transport
            .identify(self.op_timeout)
            .map_err(|e| e.to_exec_error())?;
        let name = identity.name.clone();
        self.register_transport(
            identity.name,
            identity.key_text,
            Arc::new(transport),
            identity.domains,
        );
        Ok(name)
    }

    /// Names of the registered clients, in registration order.
    pub fn client_names(&self) -> Vec<String> {
        self.clients.read().iter().map(|c| c.name.clone()).collect()
    }

    /// Binds a graph primitive name to a component + execution identity.
    pub fn bind(&self, primitive: &str, binding: Binding) {
        self.bindings.write().insert(primitive.to_string(), binding);
    }

    /// Adds a credential forwarded with every scheduling request (e.g. a
    /// delegation chain supporting the executing user).
    pub fn forward_credential(&self, credential: Assertion) {
        self.forwarded_credentials.write().push(credential);
    }

    /// Scheduling statistics so far, including the client-trust
    /// decision-cache counters (every client × operation authorization
    /// check in [`schedule`](Self::schedule) goes through that cache).
    pub fn stats(&self) -> MasterStats {
        let mut stats = self.stats.lock().clone();
        stats.in_flight = self.in_flight.load(Ordering::Relaxed);
        stats.dispatch_latency = self.dispatch_hist.snapshot();
        let cache = self.client_trust.cache_stats();
        stats.cache_hits = cache.hits;
        stats.cache_misses = cache.misses;
        stats.cache_invalidations = cache.invalidations;
        if let Some(issuer) = &self.stamp_issuer {
            stats.stamps_issued = issuer.issued();
        }
        for c in self.clients.read().iter() {
            let h = c.health.snapshot(&c.name);
            stats.breaker_trips += h.trips;
            stats.half_open_probes += h.probes;
            stats.shed += h.shed;
        }
        stats
    }

    /// Per-client health snapshots (breaker state, EWMA latency and
    /// error rate, in-flight, trip/probe/shed counters), in
    /// registration order.
    pub fn client_health(&self) -> Vec<HealthSnapshot> {
        self.clients
            .read()
            .iter()
            .map(|c| c.health.snapshot(&c.name))
            .collect()
    }

    /// Schedules one action, blocking for the reply. Every client that
    /// (a) serves the action's domain and (b) whose key the master's
    /// trust policy authorises for the action is eligible. Dispatch
    /// walks the eligible clients in *health order* (breaker state,
    /// then observed error rate, then EWMA latency; registration order
    /// breaks ties): retryable failures and timeouts are retried on the
    /// same client under the [`RetryPolicy`], a client that crashes or
    /// exhausts its retries has the operation failed over to the next
    /// eligible client, a client with an open breaker or a full
    /// in-flight quota is skipped, and the whole operation is bounded
    /// by the scheduling deadline
    /// ([`with_schedule_deadline`](Self::with_schedule_deadline)).
    pub fn schedule(
        &self,
        action: &ScheduledAction,
        user: &User,
        principal: &str,
        args: Vec<Value>,
    ) -> ExecOutcome {
        self.schedule_burst(vec![BurstOp {
            action: action.clone(),
            user: user.clone(),
            principal: principal.to_string(),
            args,
        }])
        .pop()
        .expect("burst of one yields one outcome")
    }

    /// Schedules a whole burst of operations, pre-authorising every
    /// (client × operation) pair in a single
    /// [`TrustManager::decide_batch`] call before any dispatch begins —
    /// the client registry is read once and each trust-cache shard lock
    /// is taken once for the whole burst, instead of once per
    /// operation. Operations are then dispatched in order, each through
    /// the same health-ordered retry/failover loop as
    /// [`schedule`](Self::schedule); outcomes are positionally aligned
    /// with `ops`.
    pub fn schedule_burst(&self, ops: Vec<BurstOp>) -> Vec<ExecOutcome> {
        if ops.is_empty() {
            return Vec::new();
        }
        let shard = self.shard.read().clone();
        // Route each op: `Some(home)` means the principal hashes to a
        // peer's shard and the op is forwarded there — the owner
        // authorises against its own policy and cache, so forwarded ops
        // are excluded from the local authorisation matrix entirely
        // (share-nothing hot path).
        let route: Vec<Option<usize>> = ops
            .iter()
            .map(|op| {
                shard.as_ref().and_then(|s| {
                    let home = s.ring.owner_of(&op.principal);
                    (home != s.shard_id).then_some(home)
                })
            })
            .collect();
        let per_op_targets: Vec<Vec<Target>> = {
            let clients = self.clients.read();
            // One attribute set per op, lent to every client's request:
            // requests for the same op share the set by address, so the
            // trust manager hashes one fingerprint per op and collapses
            // op-coincident evaluations into one fixpoint pass.
            let attr_sets: Vec<_> = ops.iter().map(|op| op.action.attributes()).collect();
            let mut requests: Vec<AuthzRequest<'_>> = Vec::new();
            let mut slots: Vec<(usize, usize)> = Vec::new();
            for (oi, op) in ops.iter().enumerate() {
                if route[oi].is_some() {
                    continue;
                }
                for (ci, c) in clients.iter().enumerate() {
                    if c.domains.contains(&op.action.domain) {
                        requests.push(
                            AuthzRequest::principal(&c.key_text).attributes_ref(&attr_sets[oi]),
                        );
                        slots.push((oi, ci));
                    }
                }
            }
            let verdicts = self.client_trust.decide_batch(&requests);
            let mut targets: Vec<Vec<Target>> = ops.iter().map(|_| Vec::new()).collect();
            for ((oi, ci), authorised) in slots.into_iter().zip(verdicts) {
                if authorised {
                    let c = &clients[ci];
                    targets[oi].push(Target {
                        transport: Arc::clone(&c.transport),
                        health: Arc::clone(&c.health),
                    });
                }
            }
            targets
        };
        let jobs: Vec<(u64, BurstOp, Option<usize>, Vec<Target>)> = ops
            .into_iter()
            .zip(route)
            .zip(per_op_targets)
            .map(|((op, home), targets)| {
                let op_id = self.op_counter.fetch_add(1, Ordering::Relaxed);
                (op_id, op, home, targets)
            })
            .collect();
        let par = self.burst_parallelism.min(jobs.len()).max(1);
        if par == 1 {
            return jobs
                .into_iter()
                .map(|(op_id, op, home, targets)| {
                    self.run_op(shard.as_deref(), op_id, op, home, targets)
                })
                .collect();
        }
        // Round-robin the jobs over `par` scoped workers and reassemble
        // positionally, so outcomes stay aligned with `ops` while up to
        // `par` dispatches are in flight at once (a pipelined transport
        // turns that into many requests down one socket).
        let total = jobs.len();
        let mut worker_jobs: Vec<Vec<IndexedJob>> = (0..par).map(|_| Vec::new()).collect();
        for (i, (op_id, op, home, targets)) in jobs.into_iter().enumerate() {
            worker_jobs[i % par].push((i, op_id, op, home, targets));
        }
        let mut outcomes: Vec<Option<ExecOutcome>> = (0..total).map(|_| None).collect();
        std::thread::scope(|s| {
            let shard = &shard;
            let handles: Vec<_> = worker_jobs
                .into_iter()
                .map(|jobs| {
                    s.spawn(move || {
                        jobs.into_iter()
                            .map(|(i, op_id, op, home, targets)| {
                                (i, self.run_op(shard.as_deref(), op_id, op, home, targets))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (i, out) in h.join().expect("burst worker panicked") {
                    outcomes[i] = Some(out);
                }
            }
        });
        outcomes
            .into_iter()
            .map(|o| o.expect("every burst op produces an outcome"))
            .collect()
    }

    /// Runs one routed burst op: forwards it to its home shard or
    /// dispatches it locally.
    fn run_op(
        &self,
        shard: Option<&ShardInfo>,
        op_id: u64,
        op: BurstOp,
        home: Option<usize>,
        targets: Vec<Target>,
    ) -> ExecOutcome {
        match (shard, home) {
            (Some(info), Some(home)) => self.forward_op(info, home, op_id, op),
            _ => self.schedule_on(op_id, op, targets),
        }
    }

    /// Hands an op to the peer master owning `home`. One forward
    /// attempt — the owner runs the full retry/failover loop among its
    /// own clients, so re-forwarding would only double the work.
    fn forward_op(&self, info: &ShardInfo, home: usize, op_id: u64, op: BurstOp) -> ExecOutcome {
        let Some(peer) = info.peers.get(&home) else {
            self.stats.lock().unschedulable += 1;
            return ExecOutcome::Failed(ExecError::transport(format!(
                "principal shard {home} has no peer link from shard {}",
                info.shard_id
            )));
        };
        let request = self.build_request(op_id, op);
        self.stats.lock().forwarded += 1;
        match peer.forward(&request, 1, self.schedule_deadline()) {
            Ok(reply) => reply.outcome,
            Err(te) => ExecOutcome::Failed(te.to_exec_error()),
        }
    }

    /// Serves a peer's [`WireRequest::Forward`](crate::WireRequest):
    /// dispatches locally when this master owns the principal's shard,
    /// re-forwards (with the hop guard) when it does not — which only
    /// happens when peers disagree about ring layout.
    pub fn handle_forward(&self, request: ScheduleRequest, hops: u8) -> ScheduleReply {
        // Admit the originating master's verdict stamps before any
        // dispatch: verdicts land in this node's verify cache so its
        // own credential vetting (and anything sharing the cache) skips
        // per-credential RSA.
        if let Some(verifier) = &self.stamp_verifier {
            if !request.stamps.is_empty() {
                let delta = verifier.admit(&request.stamps);
                let mut stats = self.stats.lock();
                stats.stamps_admitted += delta.admitted;
                stats.stamps_rejected += delta.rejected;
                stats.stamps_stale += delta.stale;
            }
        }
        let op_id = request.op_id;
        let shard = self.shard.read().clone();
        let shard_name = shard
            .as_ref()
            .map(|s| format!("shard-{}", s.shard_id))
            .unwrap_or_else(|| "unsharded".to_string());
        if let Some(info) = shard.as_deref() {
            let home = info.ring.owner_of(&request.principal);
            if home != info.shard_id {
                if hops >= MAX_FORWARD_HOPS {
                    self.stats.lock().forward_rejected += 1;
                    return ScheduleReply {
                        op_id,
                        client: shard_name,
                        outcome: ExecOutcome::Failed(ExecError::protocol(format!(
                            "forward hop limit ({MAX_FORWARD_HOPS}) reached for principal \
                             `{}`: peer shard rings disagree about its owner",
                            request.principal
                        ))),
                        replayed: false,
                    };
                }
                if let Some(peer) = info.peers.get(&home) {
                    self.stats.lock().forwarded += 1;
                    return match peer.forward(&request, hops + 1, self.schedule_deadline()) {
                        Ok(reply) => reply,
                        Err(te) => ScheduleReply {
                            op_id,
                            client: shard_name,
                            outcome: ExecOutcome::Failed(te.to_exec_error()),
                            replayed: false,
                        },
                    };
                }
                // No link to the owner: dispatch locally as a degraded
                // fallback rather than dropping the op.
            }
        }
        self.stats.lock().forward_received += 1;
        let targets = self.authorised_targets(&request.action);
        let outcome = if targets.is_empty() {
            self.stats.lock().unschedulable += 1;
            ExecOutcome::Denied(format!(
                "no authorised client for {} in {}",
                request.action.component.identifier(),
                request.action.domain
            ))
        } else {
            self.dispatch_to(&request, targets)
        };
        ScheduleReply {
            op_id,
            client: shard_name,
            outcome,
            replayed: false,
        }
    }

    /// Clients that serve `action`'s domain and whose key the trust
    /// policy authorises for it (one decide_batch over the registry).
    fn authorised_targets(&self, action: &ScheduledAction) -> Vec<Target> {
        let clients = self.clients.read();
        let attrs = action.attributes();
        let mut requests: Vec<AuthzRequest<'_>> = Vec::new();
        let mut idx: Vec<usize> = Vec::new();
        for (ci, c) in clients.iter().enumerate() {
            if c.domains.contains(&action.domain) {
                requests.push(AuthzRequest::principal(&c.key_text).attributes_ref(&attrs));
                idx.push(ci);
            }
        }
        let verdicts = self.client_trust.decide_batch(&requests);
        idx.into_iter()
            .zip(verdicts)
            .filter(|&(_, authorised)| authorised)
            .map(|(ci, _)| {
                let c = &clients[ci];
                Target {
                    transport: Arc::clone(&c.transport),
                    health: Arc::clone(&c.health),
                }
            })
            .collect()
    }

    /// Builds the wire request for one op, attaching verdict stamps
    /// over the forwarded credentials when an issuer is configured
    /// (memoized in the issuer — steady-state requests re-attach the
    /// same stamps without re-signing).
    fn build_request(&self, op_id: u64, op: BurstOp) -> ScheduleRequest {
        let credentials = self.forwarded_credentials.read().clone();
        let stamps = match &self.stamp_issuer {
            Some(issuer) if !credentials.is_empty() => issuer
                .stamps_for(self.client_trust.epoch(), &credentials)
                .as_ref()
                .clone(),
            _ => Vec::new(),
        };
        ScheduleRequest {
            op_id,
            action: op.action,
            user: op.user,
            principal: op.principal,
            master_key: self.key_text.clone(),
            credentials,
            stamps,
            args: op.args,
        }
    }

    /// Dispatches one already-authorised operation: health-ordered
    /// target selection, request construction, and the retry/failover
    /// loop.
    fn schedule_on(&self, op_id: u64, op: BurstOp, targets: Vec<Target>) -> ExecOutcome {
        if targets.is_empty() {
            self.stats.lock().unschedulable += 1;
            return ExecOutcome::Denied(format!(
                "no authorised client for {} in {}",
                op.action.component.identifier(),
                op.action.domain
            ));
        }
        let request = self.build_request(op_id, op);
        self.dispatch_to(&request, targets)
    }

    /// Health-sorts the targets, then runs the dispatch loop under the
    /// in-flight gauge, recording the whole-dispatch latency.
    fn dispatch_to(&self, request: &ScheduleRequest, targets: Vec<Target>) -> ExecOutcome {
        // Health-ordered selection: healthiest first; the sort is
        // stable, so untouched clients keep registration order.
        let mut keyed: Vec<((u8, f64, f64), Target)> = targets
            .into_iter()
            .map(|t| (t.health.rank(), t))
            .collect();
        keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let targets: Vec<Target> = keyed.into_iter().map(|(_, t)| t).collect();
        let _gauge = GaugeGuard::new(&self.in_flight);
        let started = Instant::now();
        let outcome = self.dispatch(request, &targets);
        self.dispatch_hist.record(started.elapsed());
        outcome
    }

    /// The dispatch loop: health admission, per-target retry,
    /// cross-target failover, all under one whole-operation deadline.
    fn dispatch(&self, request: &ScheduleRequest, targets: &[Target]) -> ExecOutcome {
        let started = Instant::now();
        let deadline = self.schedule_deadline();
        let mut last_error: Option<ExecError> = None;
        let mut attempted_targets = 0usize;
        for force in [false, true] {
            for (idx, target) in targets.iter().enumerate() {
                if remaining_budget(started, deadline).is_none() {
                    return self.deadline_exceeded(request, deadline, last_error);
                }
                let mut permit = match target.health.try_begin(force) {
                    Ok(p) => p,
                    // Open breaker or saturated quota: skip to the next
                    // eligible client (sheds are counted per client and
                    // aggregated into `MasterStats::shed`).
                    Err(Refusal::Open | Refusal::Saturated) => continue,
                };
                attempted_targets += 1;
                // A half-open probe gets exactly one trial call.
                let max_attempts = if permit.is_probe() {
                    1
                } else {
                    self.retry.max_attempts
                };
                let mut attempt = 0usize;
                let target_error = loop {
                    attempt += 1;
                    let Some(remaining) = remaining_budget(started, deadline) else {
                        drop(permit);
                        return self.deadline_exceeded(request, deadline, last_error);
                    };
                    let budget = remaining.min(self.op_timeout);
                    let call_started = Instant::now();
                    match target.transport.call(request, budget) {
                        Ok(reply) => match reply.outcome {
                            ExecOutcome::Ok(v) => {
                                permit.record(call_started.elapsed(), true);
                                let mut stats = self.stats.lock();
                                stats.scheduled += 1;
                                if reply.replayed {
                                    stats.replayed += 1;
                                }
                                if attempted_targets > 1 {
                                    stats.rescheduled += 1;
                                }
                                return ExecOutcome::Ok(v);
                            }
                            ExecOutcome::Denied(reason) => {
                                // An authorisation denial is
                                // authoritative: policy does not change
                                // because we ask a different client.
                                // The client answered, so its transport
                                // is healthy.
                                permit.record(call_started.elapsed(), true);
                                self.stats.lock().client_denials += 1;
                                return ExecOutcome::Denied(reason);
                            }
                            ExecOutcome::Failed(e) if !e.retryable => {
                                // Deterministic failure: every client
                                // would fail the same way.
                                permit.record(call_started.elapsed(), true);
                                if reply.replayed {
                                    self.stats.lock().replayed += 1;
                                }
                                return ExecOutcome::Failed(e);
                            }
                            ExecOutcome::Failed(e) => {
                                permit.record(call_started.elapsed(), false);
                                if attempt < max_attempts {
                                    self.stats.lock().retries += 1;
                                    self.backoff_sleep(attempt, started, deadline);
                                    continue;
                                }
                                break e; // retries exhausted: fail over
                            }
                        },
                        Err(te) => {
                            permit.record(call_started.elapsed(), false);
                            if te.is_timeout() {
                                self.stats.lock().timeouts += 1;
                                // A timed-out client may already have
                                // executed the op. Re-ask it first —
                                // its executed-op memo replays the
                                // recorded result instead of a second
                                // execution — before failing over.
                                if attempt < max_attempts {
                                    self.stats.lock().retries += 1;
                                    self.backoff_sleep(attempt, started, deadline);
                                    continue;
                                }
                            }
                            // Unreachable, hung past its retries, or a
                            // protocol violation: reschedule elsewhere.
                            break te.to_exec_error();
                        }
                    }
                };
                drop(permit);
                last_error = Some(target_error);
                if idx + 1 < targets.len() {
                    self.stats.lock().failovers += 1;
                }
            }
            if attempted_targets > 0 {
                break;
            }
            // Nothing was even attempted — every breaker open or quota
            // full. One forced pass (admissions become probes) so an
            // operation never dies to ejection alone; the deadline
            // still bounds it.
        }
        self.stats.lock().exhausted += 1;
        let kind = last_error
            .as_ref()
            .map(|e| e.kind)
            .unwrap_or(ExecErrorKind::Transport);
        let detail = match last_error {
            Some(e) => format!(
                "all {} authorised clients for {} are unreachable or failing (last: {e})",
                targets.len(),
                request.action.component.identifier()
            ),
            None => format!(
                "all {} authorised clients for {} are unreachable or failing",
                targets.len(),
                request.action.component.identifier()
            ),
        };
        ExecOutcome::Failed(ExecError {
            kind,
            retryable: false,
            detail,
        })
    }

    /// Accounts a whole-operation deadline expiry and builds its error.
    fn deadline_exceeded(
        &self,
        request: &ScheduleRequest,
        deadline: Duration,
        last_error: Option<ExecError>,
    ) -> ExecOutcome {
        self.stats.lock().deadline_exceeded += 1;
        let last = last_error
            .map(|e| format!(" (last: {e})"))
            .unwrap_or_default();
        ExecOutcome::Failed(ExecError {
            kind: ExecErrorKind::Timeout,
            retryable: false,
            detail: format!(
                "schedule deadline {deadline:?} exceeded dispatching {}{last}",
                request.action.component.identifier()
            ),
        })
    }

    /// Sleeps the retry backoff, clipped to the remaining deadline.
    fn backoff_sleep(&self, attempt: usize, started: Instant, deadline: Duration) {
        let remaining = deadline.saturating_sub(started.elapsed());
        let sleep = self.retry.backoff(attempt).min(remaining);
        if !sleep.is_zero() {
            std::thread::sleep(sleep);
        }
    }

    /// Schedules the binding registered for a primitive.
    pub fn schedule_primitive(&self, primitive: &str, args: Vec<Value>) -> ExecOutcome {
        let binding = { self.bindings.read().get(primitive).cloned() };
        let Some(b) = binding else {
            return ExecOutcome::failed(format!("no binding for primitive `{primitive}`"));
        };
        let action = ScheduledAction::new(b.component.clone(), b.domain.clone(), b.role.clone());
        self.schedule(&action, &b.user, &b.principal, args)
    }
}

/// The master as a condensed-graph executor: every `Primitive` node is
/// scheduled to an authorised client, so evaluating a graph *is*
/// distributing the application (Figure 3).
impl OpExecutor for WebComMaster {
    fn execute(&self, op: &str, args: &[Value]) -> Result<Value, EngineError> {
        match self.schedule_primitive(op, args.to_vec()) {
            ExecOutcome::Ok(v) => Ok(v),
            ExecOutcome::Denied(reason) => Err(EngineError::Refused {
                op: op.to_string(),
                reason,
            }),
            ExecOutcome::Failed(e) => Err(EngineError::BadArguments {
                op: op.to_string(),
                reason: e.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{spawn_client, ClientConfig};
    use crate::protocol::ArithComponentExecutor;
    use crate::stack::{AuthzStack, TrustLayer};
    use hetsec_graphs::{Engine, GraphBuilder, Source};
    use hetsec_middleware::naming::MiddlewareKind;

    fn tm(policy: &str) -> Arc<TrustManager> {
        let t = TrustManager::permissive();
        t.add_policy(policy).unwrap();
        Arc::new(t)
    }

    fn full_fixture() -> (WebComMaster, ClientHandle) {
        // Master trusts client key Kc1 for everything in Dom.
        let client_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kc1\"\n\
             Conditions: app_domain==\"WebCom\" && Domain==\"Dom\";\n",
        );
        let master = WebComMaster::new("Kmaster", client_trust);
        // Client trusts the master for WebCom, and the worker user key.
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\n\
             Conditions: app_domain==\"WebCom\" && Domain==\"Dom\" && Role==\"Worker\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        let client = spawn_client(ClientConfig {
            name: "c1".to_string(),
            key_text: "Kc1".to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        });
        master.register_client(&client, vec!["Dom".into()]);
        (master, client)
    }

    fn bind_op(master: &WebComMaster, primitive: &str, operation: &str) {
        master.bind(
            primitive,
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", operation),
                domain: "Dom".into(),
                role: "Worker".into(),
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
    }

    #[test]
    fn schedules_to_authorised_client() {
        let (master, client) = full_fixture();
        bind_op(&master, "add", "add");
        let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(3)));
        let stats = master.stats();
        assert_eq!(stats.scheduled, 1);
        assert_eq!(stats.in_flight, 0);
        client.shutdown();
    }

    #[test]
    fn repeated_scheduling_reuses_cached_client_selection() {
        let (master, client) = full_fixture();
        bind_op(&master, "add", "add");
        for _ in 0..5 {
            let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
            assert_eq!(out, ExecOutcome::Ok(Value::Int(3)));
        }
        let stats = master.stats();
        assert_eq!(stats.scheduled, 5);
        // The first selection runs the KeyNote query; the other four are
        // served from the decision cache.
        assert!(stats.cache_hits >= 4, "stats: {stats:?}");
        client.shutdown();
    }

    #[test]
    fn no_client_for_foreign_domain() {
        let (master, client) = full_fixture();
        master.bind(
            "far",
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Elsewhere", "Calc", "add"),
                domain: "Elsewhere".into(),
                role: "Worker".into(),
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
        let out = master.schedule_primitive("far", vec![]);
        assert!(matches!(out, ExecOutcome::Denied(ref m) if m.contains("no authorised client")));
        assert_eq!(master.stats().unschedulable, 1);
        client.shutdown();
    }

    #[test]
    fn untrusted_client_key_not_selected() {
        // Master policy trusts only Kc1; register a client with key Kevil.
        let client_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kc1\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let master = WebComMaster::new("Kmaster", client_trust);
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        ))));
        let client = spawn_client(ClientConfig {
            name: "evil".to_string(),
            key_text: "Kevil".to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        });
        master.register_client(&client, vec!["Dom".into()]);
        bind_op(&master, "add", "add");
        let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
        assert!(matches!(out, ExecOutcome::Denied(_)));
        client.shutdown();
    }

    #[test]
    fn unbound_primitive_fails() {
        let (master, client) = full_fixture();
        let out = master.schedule_primitive("ghost", vec![]);
        assert!(matches!(out, ExecOutcome::Failed(ref e) if e.detail.contains("no binding")));
        client.shutdown();
    }

    #[test]
    fn drives_condensed_graph_end_to_end() {
        let (master, client) = full_fixture();
        bind_op(&master, "add", "add");
        bind_op(&master, "mul", "mul");
        // (p0 + p1) * p0
        let mut b = GraphBuilder::new("app", 2);
        let s = b.primitive("sum", "add", vec![Source::Param(0), Source::Param(1)]);
        let m = b.primitive("scale", "mul", vec![Source::Node(s), Source::Param(0)]);
        let t = b.output(Source::Node(m)).unwrap();
        let engine = Engine::new(&master);
        let result = engine.evaluate(&t, &[Value::Int(3), Value::Int(4)]).unwrap();
        assert_eq!(result, Value::Int(21));
        assert_eq!(master.stats().scheduled, 2);
        let stats = client.shutdown();
        assert_eq!(stats.executed, 2);
    }

    #[test]
    fn graph_refusal_propagates_as_engine_error() {
        let (master, client) = full_fixture();
        // Bind to a role the user's trust policy does not cover.
        master.bind(
            "add",
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                domain: "Dom".into(),
                role: "Admin".into(), // worker only holds Worker
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
        let mut b = GraphBuilder::new("app", 0);
        let c1 = b.constant("a", 1i64);
        let n = b.primitive("go", "add", vec![Source::Node(c1), Source::Node(c1)]);
        let t = b.output(Source::Node(n)).unwrap();
        let engine = Engine::new(&master);
        let err = engine.evaluate(&t, &[]).unwrap_err();
        assert!(matches!(err, EngineError::Refused { .. }));
        client.shutdown();
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(55),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(55)); // capped
        assert_eq!(p.backoff(40), Duration::from_millis(55)); // no overflow
    }
}

#[cfg(test)]
mod dispatch_tests {
    use super::*;
    use crate::health::BreakerState;
    use crate::protocol::ScheduleReply;
    use crate::transport::{ClientTransport, FaultyTransport, TransportError};
    use hetsec_middleware::naming::MiddlewareKind;

    fn tm(policy: &str) -> Arc<TrustManager> {
        let t = TrustManager::permissive();
        t.add_policy(policy).unwrap();
        Arc::new(t)
    }

    /// A transport replaying a script of canned results.
    struct ScriptedTransport {
        name: String,
        script: Mutex<Vec<Result<ExecOutcome, TransportError>>>,
        calls: AtomicUsize,
    }

    impl ScriptedTransport {
        fn new(
            name: &str,
            script: Vec<Result<ExecOutcome, TransportError>>,
        ) -> Arc<Self> {
            Arc::new(ScriptedTransport {
                name: name.to_string(),
                script: Mutex::new(script),
                calls: AtomicUsize::new(0),
            })
        }

        fn calls(&self) -> usize {
            self.calls.load(Ordering::SeqCst)
        }
    }

    impl ClientTransport for ScriptedTransport {
        fn call(
            &self,
            request: &ScheduleRequest,
            timeout: Duration,
        ) -> Result<ScheduleReply, TransportError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let mut script = self.script.lock();
            let next = if script.is_empty() {
                Ok(ExecOutcome::Ok(Value::Unit))
            } else {
                script.remove(0)
            };
            match next {
                Ok(outcome) => Ok(ScheduleReply {
                    op_id: request.op_id,
                    client: self.name.clone(),
                    outcome,
                    replayed: false,
                }),
                Err(TransportError::Timeout(_)) => Err(TransportError::Timeout(timeout)),
                Err(e) => Err(e),
            }
        }
    }

    /// A master over arbitrary `(name, key, transport)` targets, with a
    /// hook to adjust builders (health config, deadline) before the
    /// clients register.
    /// A master over arbitrary `(name, key, transport)` targets, with a
    /// hook to adjust builders (health config, deadline) before the
    /// clients register.
    fn master_of(
        entries: Vec<(String, String, Arc<dyn ClientTransport>)>,
        retry: RetryPolicy,
        configure: impl FnOnce(WebComMaster) -> WebComMaster,
    ) -> WebComMaster {
        let mut policy = String::new();
        for (_, key, _) in &entries {
            policy.push_str(&format!(
                "Authorizer: POLICY\nLicensees: \"{key}\"\nConditions: app_domain==\"WebCom\";\n\n"
            ));
        }
        let master = configure(
            WebComMaster::new("Kmaster", tm(&policy))
                .with_retry_policy(retry)
                .with_op_timeout(Duration::from_millis(200)),
        );
        for (name, key, t) in entries {
            master.register_transport(name, key, t, vec!["Dom".into()]);
        }
        master
    }

    fn master_with(
        entries: Vec<(&str, Arc<ScriptedTransport>)>,
        retry: RetryPolicy,
    ) -> WebComMaster {
        let entries = entries
            .into_iter()
            .map(|(key, t)| {
                (
                    t.name.clone(),
                    key.to_string(),
                    t as Arc<dyn ClientTransport>,
                )
            })
            .collect();
        master_of(entries, retry, |m| m)
    }

    fn action() -> ScheduledAction {
        ScheduledAction::new(
            ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            "Dom",
            "Worker",
        )
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        }
    }

    #[test]
    fn retryable_failures_are_retried_with_backoff() {
        let t = ScriptedTransport::new(
            "c1",
            vec![
                Ok(ExecOutcome::Failed(ExecError::component_transient("blip"))),
                Ok(ExecOutcome::Failed(ExecError::component_transient("blip"))),
                Ok(ExecOutcome::Ok(Value::Int(7))),
            ],
        );
        let master = master_with(vec![("Kc1", Arc::clone(&t))], fast_retry());
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(7)));
        assert_eq!(t.calls(), 3);
        let stats = master.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.scheduled, 1);
        assert_eq!(stats.failovers, 0);
    }

    #[test]
    fn non_retryable_failure_returns_immediately() {
        let t1 = ScriptedTransport::new(
            "c1",
            vec![Ok(ExecOutcome::Failed(ExecError::component("div by zero")))],
        );
        let t2 = ScriptedTransport::new("c2", vec![]);
        let master = master_with(
            vec![("Kc1", Arc::clone(&t1)), ("Kc2", Arc::clone(&t2))],
            fast_retry(),
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert!(matches!(out, ExecOutcome::Failed(ref e) if e.detail == "div by zero"));
        assert_eq!(t1.calls(), 1);
        assert_eq!(t2.calls(), 0, "deterministic failure must not fail over");
        assert_eq!(master.stats().retries, 0);
    }

    #[test]
    fn timeout_fails_over_and_is_counted() {
        // With retries disabled a timeout fails over immediately.
        let t1 = ScriptedTransport::new(
            "c1",
            vec![Err(TransportError::Timeout(Duration::from_millis(1)))],
        );
        let t2 = ScriptedTransport::new("c2", vec![Ok(ExecOutcome::Ok(Value::Int(9)))]);
        let master = master_with(
            vec![("Kc1", Arc::clone(&t1)), ("Kc2", Arc::clone(&t2))],
            RetryPolicy::none(),
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(9)));
        let stats = master.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.rescheduled, 1);
        assert_eq!(stats.scheduled, 1);
    }

    #[test]
    fn timeout_is_retried_on_the_same_client_before_failover() {
        // Under a retry policy a timed-out client is re-asked first:
        // it may already have executed, and its executed-op memo makes
        // the re-ask cheap and duplicate-safe. Only when retries are
        // exhausted does the op fail over.
        let t1 = ScriptedTransport::new(
            "c1",
            vec![
                Err(TransportError::Timeout(Duration::from_millis(1))),
                Ok(ExecOutcome::Ok(Value::Int(5))),
            ],
        );
        let t2 = ScriptedTransport::new("c2", vec![]);
        let master = master_with(
            vec![("Kc1", Arc::clone(&t1)), ("Kc2", Arc::clone(&t2))],
            fast_retry(),
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(5)));
        assert_eq!(t1.calls(), 2);
        assert_eq!(t2.calls(), 0, "retry must stay on the timed-out client");
        let stats = master.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.failovers, 0);
        assert_eq!(stats.rescheduled, 0);
    }

    #[test]
    fn retries_exhausted_then_failover() {
        let t1 = ScriptedTransport::new(
            "c1",
            vec![
                Ok(ExecOutcome::Failed(ExecError::component_transient("down"))),
                Ok(ExecOutcome::Failed(ExecError::component_transient("down"))),
                Ok(ExecOutcome::Failed(ExecError::component_transient("down"))),
            ],
        );
        let t2 = ScriptedTransport::new("c2", vec![Ok(ExecOutcome::Ok(Value::Unit))]);
        let master = master_with(
            vec![("Kc1", Arc::clone(&t1)), ("Kc2", Arc::clone(&t2))],
            fast_retry(),
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert!(out.is_ok());
        assert_eq!(t1.calls(), 3); // max_attempts
        let stats = master.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.rescheduled, 1);
    }

    #[test]
    fn all_targets_failing_reports_unreachable() {
        let t1 = ScriptedTransport::new(
            "c1",
            vec![Err(TransportError::Unreachable("refused".into()))],
        );
        let t2 = ScriptedTransport::new(
            "c2",
            vec![Err(TransportError::Closed("reset".into()))],
        );
        let master = master_with(
            vec![("Kc1", Arc::clone(&t1)), ("Kc2", Arc::clone(&t2))],
            RetryPolicy::none(),
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert!(
            matches!(out, ExecOutcome::Failed(ref e) if e.detail.contains("unreachable")),
            "{out:?}"
        );
        let stats = master.stats();
        // Exhaustion (every authorised target tried and failed) is
        // counted separately from "no authorised client at all".
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.unschedulable, 0);
        // Only target switches count as failovers — giving up entirely
        // after the last target is not one.
        assert_eq!(stats.failovers, 1);
    }

    #[test]
    fn no_authorised_client_is_unschedulable_not_exhausted() {
        // The only client's key is not in the master's policy, so
        // selection itself finds nothing: that is `unschedulable`,
        // distinct from exhaustion after trying real targets.
        let t1 = ScriptedTransport::new("c1", vec![]);
        let master = WebComMaster::new(
            "Kmaster",
            tm("Authorizer: POLICY\nLicensees: \"Knobody\"\nConditions: app_domain==\"WebCom\";\n"),
        );
        master.register_transport(
            "c1".to_string(),
            "Kc1".to_string(),
            Arc::clone(&t1) as Arc<dyn ClientTransport>,
            vec!["Dom".into()],
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert!(matches!(out, ExecOutcome::Denied(_)));
        let stats = master.stats();
        assert_eq!(stats.unschedulable, 1);
        assert_eq!(stats.exhausted, 0);
        assert_eq!(t1.calls(), 0);
    }

    #[test]
    fn exhaustion_error_carries_the_last_error_kind() {
        // Both clients time out: the terminal error must say Timeout,
        // not a generic Transport.
        let t1 = ScriptedTransport::new(
            "c1",
            vec![Err(TransportError::Timeout(Duration::from_millis(1)))],
        );
        let t2 = ScriptedTransport::new(
            "c2",
            vec![Err(TransportError::Timeout(Duration::from_millis(1)))],
        );
        let master = master_with(
            vec![("Kc1", Arc::clone(&t1)), ("Kc2", Arc::clone(&t2))],
            RetryPolicy::none(),
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        let ExecOutcome::Failed(e) = out else {
            panic!("expected failure, got {out:?}");
        };
        assert_eq!(e.kind, ExecErrorKind::Timeout);
        assert!(!e.retryable);
        assert!(e.detail.contains("unreachable or failing"));
        assert_eq!(master.stats().exhausted, 1);
    }

    /// A transport that hangs for the full per-call budget every time.
    struct HangingTransport {
        calls: AtomicUsize,
    }

    impl ClientTransport for HangingTransport {
        fn call(
            &self,
            _request: &ScheduleRequest,
            timeout: Duration,
        ) -> Result<ScheduleReply, TransportError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(timeout);
            Err(TransportError::Timeout(timeout))
        }
    }

    #[test]
    fn schedule_deadline_bounds_the_whole_operation() {
        let hanging = Arc::new(HangingTransport {
            calls: AtomicUsize::new(0),
        });
        // Generous retries, short op timeout, a deadline that allows
        // only a couple of attempts: without the deadline this schedule
        // would hang for max_attempts × op_timeout.
        let master = master_of(
            vec![(
                "c1".to_string(),
                "Kc1".to_string(),
                Arc::clone(&hanging) as Arc<dyn ClientTransport>,
            )],
            RetryPolicy {
                max_attempts: 50,
                base_delay: Duration::ZERO,
                max_delay: Duration::ZERO,
            },
            |m| {
                m.with_op_timeout(Duration::from_millis(30))
                    .with_schedule_deadline(Duration::from_millis(80))
            },
        );
        let started = Instant::now();
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        let elapsed = started.elapsed();
        let ExecOutcome::Failed(e) = out else {
            panic!("expected deadline failure, got {out:?}");
        };
        assert_eq!(e.kind, ExecErrorKind::Timeout);
        assert!(e.detail.contains("deadline"), "{}", e.detail);
        assert!(
            elapsed < Duration::from_millis(500),
            "schedule ran {elapsed:?}, deadline was 80ms"
        );
        let stats = master.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert!(
            hanging.calls.load(Ordering::SeqCst) <= 4,
            "deadline should cap attempts, saw {}",
            hanging.calls.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn breaker_trips_then_probes_and_recovers() {
        // One client that crashes, trips its breaker, is revived, and
        // is re-admitted through a half-open probe.
        let faulty = Arc::new(FaultyTransport::new(ScriptedOk));
        faulty.kill();
        let master = master_of(
            vec![(
                "c0".to_string(),
                "Kc0".to_string(),
                Arc::clone(&faulty) as Arc<dyn ClientTransport>,
            )],
            RetryPolicy::none(),
            |m| {
                m.with_health_config(HealthConfig {
                    failure_threshold: 3,
                    open_cooldown: Duration::from_millis(40),
                    ..HealthConfig::default()
                })
            },
        );
        // Three failures trip the breaker.
        for _ in 0..3 {
            let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
            assert!(matches!(out, ExecOutcome::Failed(_)));
        }
        let snap = &master.client_health()[0];
        assert_eq!(snap.state, BreakerState::Open);
        assert_eq!(master.stats().breaker_trips, 1);
        // While open (cooldown not elapsed) the only client is refused
        // on the normal pass, so the forced pass probes it — an op is
        // never abandoned solely because breakers are open.
        let calls_before = faulty.calls();
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert!(matches!(out, ExecOutcome::Failed(_)));
        assert_eq!(faulty.calls(), calls_before + 1);
        assert!(master.stats().half_open_probes >= 1);
        // Revive the client; after the cooldown a probe closes the
        // breaker again.
        faulty.revive();
        std::thread::sleep(Duration::from_millis(50));
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert!(out.is_ok(), "{out:?}");
        assert_eq!(master.client_health()[0].state, BreakerState::Closed);
        assert_eq!(master.stats().exhausted, 4);
    }

    /// A transport that always answers Ok(Unit) (for wrapping in
    /// fault injectors).
    struct ScriptedOk;

    impl ClientTransport for ScriptedOk {
        fn call(
            &self,
            request: &ScheduleRequest,
            _timeout: Duration,
        ) -> Result<ScheduleReply, TransportError> {
            Ok(ScheduleReply {
                op_id: request.op_id,
                client: "ok".to_string(),
                outcome: ExecOutcome::Ok(Value::Unit),
                replayed: false,
            })
        }
    }

    /// Blocks until released (or the call budget expires), then
    /// answers Ok.
    struct BlockingTransport {
        release: Mutex<crossbeam::channel::Receiver<()>>,
        calls: AtomicUsize,
    }

    impl ClientTransport for BlockingTransport {
        fn call(
            &self,
            request: &ScheduleRequest,
            timeout: Duration,
        ) -> Result<ScheduleReply, TransportError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let _ = self.release.lock().recv_timeout(timeout);
            Ok(ScheduleReply {
                op_id: request.op_id,
                client: "blocking".to_string(),
                outcome: ExecOutcome::Ok(Value::Unit),
                replayed: false,
            })
        }
    }

    #[test]
    fn saturated_client_sheds_to_next_eligible() {
        let (release_tx, release_rx) = crossbeam::channel::unbounded::<()>();
        let blocking = Arc::new(BlockingTransport {
            release: Mutex::new(release_rx),
            calls: AtomicUsize::new(0),
        });
        let fallback = ScriptedTransport::new("c1", vec![Ok(ExecOutcome::Ok(Value::Int(3)))]);
        let master = Arc::new(master_of(
            vec![
                (
                    "c0".to_string(),
                    "Kc0".to_string(),
                    Arc::clone(&blocking) as Arc<dyn ClientTransport>,
                ),
                (
                    "c1".to_string(),
                    "Kc1".to_string(),
                    Arc::clone(&fallback) as Arc<dyn ClientTransport>,
                ),
            ],
            RetryPolicy::none(),
            |m| {
                m.with_health_config(HealthConfig {
                    max_in_flight: 1,
                    ..HealthConfig::default()
                })
            },
        ));
        // Occupy c0's single in-flight slot from another thread.
        let m2 = Arc::clone(&master);
        let holder = std::thread::spawn(move || {
            m2.schedule(&action(), &"worker".into(), "Kworker", vec![])
        });
        // Wait until the blocked call is actually in flight.
        for _ in 0..200 {
            if blocking.calls.load(Ordering::SeqCst) > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(blocking.calls.load(Ordering::SeqCst), 1);
        // This schedule finds c0 saturated and sheds to c1.
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(3)));
        assert_eq!(blocking.calls.load(Ordering::SeqCst), 1);
        release_tx.send(()).unwrap();
        assert!(holder.join().unwrap().is_ok());
        let stats = master.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.scheduled, 2);
        assert_eq!(stats.exhausted, 0);
    }

    #[test]
    fn client_denial_is_not_retried() {
        let t1 = ScriptedTransport::new(
            "c1",
            vec![Ok(ExecOutcome::Denied("stack denied".into()))],
        );
        let t2 = ScriptedTransport::new("c2", vec![]);
        let master = master_with(
            vec![("Kc1", Arc::clone(&t1)), ("Kc2", Arc::clone(&t2))],
            fast_retry(),
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert!(matches!(out, ExecOutcome::Denied(_)));
        assert_eq!(t1.calls(), 1);
        assert_eq!(t2.calls(), 0);
        assert_eq!(master.stats().client_denials, 1);
    }
}

#[cfg(test)]
mod failover_tests {
    use super::*;
    use crate::client::{spawn_client, ClientConfig};
    use crate::protocol::ArithComponentExecutor;
    use crate::stack::{AuthzStack, TrustLayer};
    use hetsec_middleware::naming::MiddlewareKind;

    fn tm(policy: &str) -> Arc<TrustManager> {
        let t = TrustManager::permissive();
        t.add_policy(policy).unwrap();
        Arc::new(t)
    }

    fn spawn(name: &str, key: &str) -> crate::client::ClientHandle {
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        spawn_client(ClientConfig {
            name: name.to_string(),
            key_text: key.to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        })
    }

    fn master_for(keys: &[&str]) -> WebComMaster {
        let mut policy = String::new();
        for k in keys {
            policy.push_str(&format!(
                "Authorizer: POLICY\nLicensees: \"{k}\"\nConditions: app_domain==\"WebCom\";\n\n"
            ));
        }
        let master = WebComMaster::new("Kmaster", tm(&policy));
        master.bind(
            "add",
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                domain: "Dom".into(),
                role: "Worker".into(),
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
        master
    }

    #[test]
    fn fails_over_to_surviving_client() {
        let master = master_for(&["Kc1", "Kc2"]);
        let c1 = spawn("c1", "Kc1");
        let c2 = spawn("c2", "Kc2");
        master.register_client(&c1, vec!["Dom".into()]);
        master.register_client(&c2, vec!["Dom".into()]);
        // Kill the first client; the master should fail over to c2.
        c1.shutdown();
        let out = master.schedule_primitive("add", vec![Value::Int(20), Value::Int(22)]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(42)));
        let stats = master.stats();
        assert_eq!(stats.scheduled, 1);
        assert_eq!(stats.rescheduled, 1);
        assert_eq!(stats.failovers, 1);
        let s2 = c2.shutdown();
        assert_eq!(s2.executed, 1);
    }

    #[test]
    fn all_clients_dead_reports_failure() {
        let master = master_for(&["Kc1", "Kc2"]);
        let c1 = spawn("c1", "Kc1");
        let c2 = spawn("c2", "Kc2");
        master.register_client(&c1, vec!["Dom".into()]);
        master.register_client(&c2, vec!["Dom".into()]);
        c1.shutdown();
        c2.shutdown();
        let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(1)]);
        assert!(matches!(out, ExecOutcome::Failed(ref e) if e.detail.contains("unreachable")));
        let stats = master.stats();
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.unschedulable, 0);
    }

    #[test]
    fn no_failover_needed_when_first_client_healthy() {
        let master = master_for(&["Kc1", "Kc2"]);
        let c1 = spawn("c1", "Kc1");
        let c2 = spawn("c2", "Kc2");
        master.register_client(&c1, vec!["Dom".into()]);
        master.register_client(&c2, vec!["Dom".into()]);
        let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(1)]);
        assert!(out.is_ok());
        let stats = master.stats();
        assert_eq!(stats.rescheduled, 0);
        assert_eq!(stats.failovers, 0);
        let s1 = c1.shutdown();
        let s2 = c2.shutdown();
        assert_eq!(s1.executed + s2.executed, 1);
    }
}
