//! The WebCom master: authenticates clients, selects an authorised
//! client for every fireable component, and drives condensed-graph
//! applications through the scheduler (Figure 3, §6).
//!
//! Scheduling goes through the [`ClientTransport`] abstraction, so the
//! same dispatch loop drives in-process clients (channel fabric) and
//! remote ones (TCP). The loop implements WebCom's fault-tolerance
//! story: every call carries a deadline, retryable failures are retried
//! with bounded exponential backoff, and a client that times out or
//! crashes has its operation rescheduled on another client registered
//! for the same domain (the paper's "failed operations are
//! rescheduled").

use crate::authz::{AuthzRequest, ScheduledAction, TrustManager};
use crate::client::ClientHandle;
use crate::protocol::{ExecError, ExecErrorKind, ExecOutcome, ScheduleRequest};
use crate::transport::{ChannelTransport, ClientTransport, TcpTransport};
use hetsec_graphs::{EngineError, OpExecutor, Value};
use hetsec_keynote::ast::Assertion;
use hetsec_middleware::component::ComponentRef;
use hetsec_rbac::{Domain, Role, User};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A client as the master sees it: an identity, the domains it serves,
/// and the transport to reach it.
struct ClientEntry {
    name: String,
    key_text: String,
    transport: Arc<dyn ClientTransport>,
    /// Domains this client can serve.
    domains: Vec<Domain>,
}

/// The binding of a graph primitive onto a component and an execution
/// identity — what the IDE's palette/partial-spec resolution produces
/// (§6, Figure 11).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Binding {
    /// The component to invoke.
    pub component: ComponentRef,
    /// Execution domain.
    pub domain: Domain,
    /// Execution role.
    pub role: Role,
    /// Executing user.
    pub user: User,
    /// The user's key text.
    pub principal: String,
}

/// How the master retries retryable failures on one client before
/// failing over to the next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per client (1 = no retry).
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// No retries at all (first failure fails over immediately).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The backoff before retry number `retry` (1-based): exponential,
    /// capped at `max_delay`.
    pub fn backoff(&self, retry: usize) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16) as u32;
        self.base_delay
            .saturating_mul(factor)
            .min(self.max_delay)
    }
}

/// Per-scheduling statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MasterStats {
    /// Operations scheduled successfully.
    pub scheduled: usize,
    /// Operations with no authorised client.
    pub unschedulable: usize,
    /// Denials returned by clients.
    pub client_denials: usize,
    /// Operations that completed only after failing over off their first
    /// client (WebCom's fault tolerance).
    pub rescheduled: usize,
    /// Same-client re-attempts of retryable failures.
    pub retries: usize,
    /// Calls that hit their per-request deadline.
    pub timeouts: usize,
    /// Times the dispatch loop gave up on one client and moved the
    /// operation to another.
    pub failovers: usize,
    /// Operations currently inside the dispatch loop (gauge).
    pub in_flight: usize,
    /// Client-selection authorization decisions served from the trust
    /// manager's decision cache.
    pub cache_hits: u64,
    /// Client-selection decisions that ran the full KeyNote query.
    pub cache_misses: u64,
    /// Cached decisions discarded because the trust policy's epoch had
    /// moved (policy/credential/revocation change).
    pub cache_invalidations: u64,
}

/// The WebCom master.
pub struct WebComMaster {
    /// The master's own key text (sent to clients for mutual checks).
    key_text: String,
    /// Trust policy over *client* keys: which clients may be handed
    /// which operations (Figure 3: "uses their credentials to determine
    /// what operations it may schedule to them").
    client_trust: Arc<TrustManager>,
    clients: RwLock<Vec<ClientEntry>>,
    bindings: RwLock<HashMap<String, Binding>>,
    /// Credentials forwarded with every request.
    forwarded_credentials: RwLock<Vec<Assertion>>,
    op_counter: AtomicU64,
    retry: RetryPolicy,
    /// Per-call reply deadline.
    op_timeout: Duration,
    in_flight: AtomicUsize,
    stats: Mutex<MasterStats>,
}

impl WebComMaster {
    /// A master with the given identity and client-trust policy.
    pub fn new(key_text: impl Into<String>, client_trust: Arc<TrustManager>) -> Self {
        WebComMaster {
            key_text: key_text.into(),
            client_trust,
            clients: RwLock::new(Vec::new()),
            bindings: RwLock::new(HashMap::new()),
            forwarded_credentials: RwLock::new(Vec::new()),
            op_counter: AtomicU64::new(0),
            retry: RetryPolicy::default(),
            op_timeout: Duration::from_secs(5),
            in_flight: AtomicUsize::new(0),
            stats: Mutex::new(MasterStats::default()),
        }
    }

    /// Overrides the retry policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the per-call reply deadline.
    pub fn with_op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Registers an in-process client as serving `domains` (channel
    /// transport — the fast path).
    pub fn register_client(&self, handle: &ClientHandle, domains: Vec<Domain>) {
        self.register_transport(
            handle.name.clone(),
            handle.key_text.clone(),
            Arc::new(ChannelTransport::new(handle.sender())),
            domains,
        );
    }

    /// Registers a client reachable over an arbitrary transport.
    pub fn register_transport(
        &self,
        name: impl Into<String>,
        key_text: impl Into<String>,
        transport: Arc<dyn ClientTransport>,
        domains: Vec<Domain>,
    ) {
        self.clients.write().push(ClientEntry {
            name: name.into(),
            key_text: key_text.into(),
            transport,
            domains,
        });
    }

    /// Dials a serving client at `addr`, performs the Identify
    /// handshake, and registers it under the identity and domains it
    /// announced. Returns the client's announced name.
    pub fn register_tcp(&self, addr: SocketAddr) -> Result<String, ExecError> {
        let transport = TcpTransport::new(addr);
        let identity = transport
            .identify(self.op_timeout)
            .map_err(|e| e.to_exec_error())?;
        let name = identity.name.clone();
        self.register_transport(
            identity.name,
            identity.key_text,
            Arc::new(transport),
            identity.domains,
        );
        Ok(name)
    }

    /// Names of the registered clients, in registration order.
    pub fn client_names(&self) -> Vec<String> {
        self.clients.read().iter().map(|c| c.name.clone()).collect()
    }

    /// Binds a graph primitive name to a component + execution identity.
    pub fn bind(&self, primitive: &str, binding: Binding) {
        self.bindings.write().insert(primitive.to_string(), binding);
    }

    /// Adds a credential forwarded with every scheduling request (e.g. a
    /// delegation chain supporting the executing user).
    pub fn forward_credential(&self, credential: Assertion) {
        self.forwarded_credentials.write().push(credential);
    }

    /// Scheduling statistics so far, including the client-trust
    /// decision-cache counters (every client × operation authorization
    /// check in [`schedule`](Self::schedule) goes through that cache).
    pub fn stats(&self) -> MasterStats {
        let mut stats = self.stats.lock().clone();
        stats.in_flight = self.in_flight.load(Ordering::Relaxed);
        let cache = self.client_trust.cache_stats();
        stats.cache_hits = cache.hits;
        stats.cache_misses = cache.misses;
        stats.cache_invalidations = cache.invalidations;
        stats
    }

    /// Schedules one action, blocking for the reply. Every client that
    /// (a) serves the action's domain and (b) whose key the master's
    /// trust policy authorises for the action is eligible. Dispatch
    /// walks the eligible clients in registration order: retryable
    /// failures are retried on the same client under the
    /// [`RetryPolicy`], and a client that times out, crashes or
    /// exhausts its retries has the operation failed over to the next
    /// eligible client.
    pub fn schedule(
        &self,
        action: &ScheduledAction,
        user: &User,
        principal: &str,
        args: Vec<Value>,
    ) -> ExecOutcome {
        let op_id = self.op_counter.fetch_add(1, Ordering::Relaxed);
        let targets: Vec<(String, Arc<dyn ClientTransport>)> = {
            let clients = self.clients.read();
            clients
                .iter()
                .filter(|c| {
                    c.domains.contains(&action.domain)
                        && self
                            .client_trust
                            .decide(&AuthzRequest::principal(&c.key_text).action(action))
                })
                .map(|c| (c.name.clone(), Arc::clone(&c.transport)))
                .collect()
        };
        if targets.is_empty() {
            self.stats.lock().unschedulable += 1;
            return ExecOutcome::Denied(format!(
                "no authorised client for {} in {}",
                action.component.identifier(),
                action.domain
            ));
        }
        let request = ScheduleRequest {
            op_id,
            action: action.clone(),
            user: user.clone(),
            principal: principal.to_string(),
            master_key: self.key_text.clone(),
            credentials: self.forwarded_credentials.read().clone(),
            args,
        };
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let outcome = self.dispatch(&request, &targets);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        outcome
    }

    /// The dispatch loop: per-target retry, cross-target failover.
    fn dispatch(
        &self,
        request: &ScheduleRequest,
        targets: &[(String, Arc<dyn ClientTransport>)],
    ) -> ExecOutcome {
        let mut last_error: Option<ExecError> = None;
        for (idx, (_name, transport)) in targets.iter().enumerate() {
            let mut attempt = 0usize;
            let target_error = loop {
                attempt += 1;
                match transport.call(request, self.op_timeout) {
                    Ok(reply) => match reply.outcome {
                        ExecOutcome::Ok(v) => {
                            let mut stats = self.stats.lock();
                            stats.scheduled += 1;
                            if idx > 0 {
                                stats.rescheduled += 1;
                            }
                            return ExecOutcome::Ok(v);
                        }
                        ExecOutcome::Denied(reason) => {
                            // An authorisation denial is authoritative:
                            // policy does not change because we ask a
                            // different client.
                            self.stats.lock().client_denials += 1;
                            return ExecOutcome::Denied(reason);
                        }
                        ExecOutcome::Failed(e) if !e.retryable => {
                            // Deterministic failure: every client would
                            // fail the same way.
                            return ExecOutcome::Failed(e);
                        }
                        ExecOutcome::Failed(e) => {
                            if attempt < self.retry.max_attempts {
                                self.stats.lock().retries += 1;
                                std::thread::sleep(self.retry.backoff(attempt));
                                continue;
                            }
                            break e; // retries exhausted: fail over
                        }
                    },
                    Err(te) => {
                        if te.is_timeout() {
                            self.stats.lock().timeouts += 1;
                        }
                        // The client is unreachable, hung, or spoke the
                        // protocol wrong; its fate for this op is
                        // unknown. Reschedule on another client.
                        break te.to_exec_error();
                    }
                }
            };
            last_error = Some(target_error);
            if idx + 1 < targets.len() {
                self.stats.lock().failovers += 1;
            }
        }
        self.stats.lock().unschedulable += 1;
        let detail = match last_error {
            Some(e) => format!(
                "all {} authorised clients for {} are unreachable or failing (last: {e})",
                targets.len(),
                request.action.component.identifier()
            ),
            None => format!(
                "all {} authorised clients for {} are unreachable",
                targets.len(),
                request.action.component.identifier()
            ),
        };
        ExecOutcome::Failed(ExecError {
            kind: ExecErrorKind::Transport,
            retryable: false,
            detail,
        })
    }

    /// Schedules the binding registered for a primitive.
    pub fn schedule_primitive(&self, primitive: &str, args: Vec<Value>) -> ExecOutcome {
        let binding = { self.bindings.read().get(primitive).cloned() };
        let Some(b) = binding else {
            return ExecOutcome::failed(format!("no binding for primitive `{primitive}`"));
        };
        let action = ScheduledAction::new(b.component.clone(), b.domain.clone(), b.role.clone());
        self.schedule(&action, &b.user, &b.principal, args)
    }
}

/// The master as a condensed-graph executor: every `Primitive` node is
/// scheduled to an authorised client, so evaluating a graph *is*
/// distributing the application (Figure 3).
impl OpExecutor for WebComMaster {
    fn execute(&self, op: &str, args: &[Value]) -> Result<Value, EngineError> {
        match self.schedule_primitive(op, args.to_vec()) {
            ExecOutcome::Ok(v) => Ok(v),
            ExecOutcome::Denied(reason) => Err(EngineError::Refused {
                op: op.to_string(),
                reason,
            }),
            ExecOutcome::Failed(e) => Err(EngineError::BadArguments {
                op: op.to_string(),
                reason: e.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{spawn_client, ClientConfig};
    use crate::protocol::ArithComponentExecutor;
    use crate::stack::{AuthzStack, TrustLayer};
    use hetsec_graphs::{Engine, GraphBuilder, Source};
    use hetsec_middleware::naming::MiddlewareKind;

    fn tm(policy: &str) -> Arc<TrustManager> {
        let t = TrustManager::permissive();
        t.add_policy(policy).unwrap();
        Arc::new(t)
    }

    fn full_fixture() -> (WebComMaster, ClientHandle) {
        // Master trusts client key Kc1 for everything in Dom.
        let client_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kc1\"\n\
             Conditions: app_domain==\"WebCom\" && Domain==\"Dom\";\n",
        );
        let master = WebComMaster::new("Kmaster", client_trust);
        // Client trusts the master for WebCom, and the worker user key.
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\n\
             Conditions: app_domain==\"WebCom\" && Domain==\"Dom\" && Role==\"Worker\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        let client = spawn_client(ClientConfig {
            name: "c1".to_string(),
            key_text: "Kc1".to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        });
        master.register_client(&client, vec!["Dom".into()]);
        (master, client)
    }

    fn bind_op(master: &WebComMaster, primitive: &str, operation: &str) {
        master.bind(
            primitive,
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", operation),
                domain: "Dom".into(),
                role: "Worker".into(),
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
    }

    #[test]
    fn schedules_to_authorised_client() {
        let (master, client) = full_fixture();
        bind_op(&master, "add", "add");
        let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(3)));
        let stats = master.stats();
        assert_eq!(stats.scheduled, 1);
        assert_eq!(stats.in_flight, 0);
        client.shutdown();
    }

    #[test]
    fn repeated_scheduling_reuses_cached_client_selection() {
        let (master, client) = full_fixture();
        bind_op(&master, "add", "add");
        for _ in 0..5 {
            let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
            assert_eq!(out, ExecOutcome::Ok(Value::Int(3)));
        }
        let stats = master.stats();
        assert_eq!(stats.scheduled, 5);
        // The first selection runs the KeyNote query; the other four are
        // served from the decision cache.
        assert!(stats.cache_hits >= 4, "stats: {stats:?}");
        client.shutdown();
    }

    #[test]
    fn no_client_for_foreign_domain() {
        let (master, client) = full_fixture();
        master.bind(
            "far",
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Elsewhere", "Calc", "add"),
                domain: "Elsewhere".into(),
                role: "Worker".into(),
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
        let out = master.schedule_primitive("far", vec![]);
        assert!(matches!(out, ExecOutcome::Denied(ref m) if m.contains("no authorised client")));
        assert_eq!(master.stats().unschedulable, 1);
        client.shutdown();
    }

    #[test]
    fn untrusted_client_key_not_selected() {
        // Master policy trusts only Kc1; register a client with key Kevil.
        let client_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kc1\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let master = WebComMaster::new("Kmaster", client_trust);
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        ))));
        let client = spawn_client(ClientConfig {
            name: "evil".to_string(),
            key_text: "Kevil".to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        });
        master.register_client(&client, vec!["Dom".into()]);
        bind_op(&master, "add", "add");
        let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
        assert!(matches!(out, ExecOutcome::Denied(_)));
        client.shutdown();
    }

    #[test]
    fn unbound_primitive_fails() {
        let (master, client) = full_fixture();
        let out = master.schedule_primitive("ghost", vec![]);
        assert!(matches!(out, ExecOutcome::Failed(ref e) if e.detail.contains("no binding")));
        client.shutdown();
    }

    #[test]
    fn drives_condensed_graph_end_to_end() {
        let (master, client) = full_fixture();
        bind_op(&master, "add", "add");
        bind_op(&master, "mul", "mul");
        // (p0 + p1) * p0
        let mut b = GraphBuilder::new("app", 2);
        let s = b.primitive("sum", "add", vec![Source::Param(0), Source::Param(1)]);
        let m = b.primitive("scale", "mul", vec![Source::Node(s), Source::Param(0)]);
        let t = b.output(Source::Node(m)).unwrap();
        let engine = Engine::new(&master);
        let result = engine.evaluate(&t, &[Value::Int(3), Value::Int(4)]).unwrap();
        assert_eq!(result, Value::Int(21));
        assert_eq!(master.stats().scheduled, 2);
        let stats = client.shutdown();
        assert_eq!(stats.executed, 2);
    }

    #[test]
    fn graph_refusal_propagates_as_engine_error() {
        let (master, client) = full_fixture();
        // Bind to a role the user's trust policy does not cover.
        master.bind(
            "add",
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                domain: "Dom".into(),
                role: "Admin".into(), // worker only holds Worker
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
        let mut b = GraphBuilder::new("app", 0);
        let c1 = b.constant("a", 1i64);
        let n = b.primitive("go", "add", vec![Source::Node(c1), Source::Node(c1)]);
        let t = b.output(Source::Node(n)).unwrap();
        let engine = Engine::new(&master);
        let err = engine.evaluate(&t, &[]).unwrap_err();
        assert!(matches!(err, EngineError::Refused { .. }));
        client.shutdown();
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(55),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(55)); // capped
        assert_eq!(p.backoff(40), Duration::from_millis(55)); // no overflow
    }
}

#[cfg(test)]
mod dispatch_tests {
    use super::*;
    use crate::protocol::ScheduleReply;
    use crate::transport::{ClientTransport, TransportError};
    use hetsec_middleware::naming::MiddlewareKind;

    fn tm(policy: &str) -> Arc<TrustManager> {
        let t = TrustManager::permissive();
        t.add_policy(policy).unwrap();
        Arc::new(t)
    }

    /// A transport replaying a script of canned results.
    struct ScriptedTransport {
        name: String,
        script: Mutex<Vec<Result<ExecOutcome, TransportError>>>,
        calls: AtomicUsize,
    }

    impl ScriptedTransport {
        fn new(
            name: &str,
            script: Vec<Result<ExecOutcome, TransportError>>,
        ) -> Arc<Self> {
            Arc::new(ScriptedTransport {
                name: name.to_string(),
                script: Mutex::new(script),
                calls: AtomicUsize::new(0),
            })
        }

        fn calls(&self) -> usize {
            self.calls.load(Ordering::SeqCst)
        }
    }

    impl ClientTransport for ScriptedTransport {
        fn call(
            &self,
            request: &ScheduleRequest,
            timeout: Duration,
        ) -> Result<ScheduleReply, TransportError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let mut script = self.script.lock();
            let next = if script.is_empty() {
                Ok(ExecOutcome::Ok(Value::Unit))
            } else {
                script.remove(0)
            };
            match next {
                Ok(outcome) => Ok(ScheduleReply {
                    op_id: request.op_id,
                    client: self.name.clone(),
                    outcome,
                }),
                Err(TransportError::Timeout(_)) => Err(TransportError::Timeout(timeout)),
                Err(e) => Err(e),
            }
        }
    }

    fn master_with(
        entries: Vec<(&str, Arc<ScriptedTransport>)>,
        retry: RetryPolicy,
    ) -> WebComMaster {
        let mut policy = String::new();
        for (key, _) in &entries {
            policy.push_str(&format!(
                "Authorizer: POLICY\nLicensees: \"{key}\"\nConditions: app_domain==\"WebCom\";\n\n"
            ));
        }
        let master = WebComMaster::new("Kmaster", tm(&policy))
            .with_retry_policy(retry)
            .with_op_timeout(Duration::from_millis(200));
        for (key, t) in entries {
            master.register_transport(
                t.name.clone(),
                key.to_string(),
                t as Arc<dyn ClientTransport>,
                vec!["Dom".into()],
            );
        }
        master
    }

    fn action() -> ScheduledAction {
        ScheduledAction::new(
            ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            "Dom",
            "Worker",
        )
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        }
    }

    #[test]
    fn retryable_failures_are_retried_with_backoff() {
        let t = ScriptedTransport::new(
            "c1",
            vec![
                Ok(ExecOutcome::Failed(ExecError::component_transient("blip"))),
                Ok(ExecOutcome::Failed(ExecError::component_transient("blip"))),
                Ok(ExecOutcome::Ok(Value::Int(7))),
            ],
        );
        let master = master_with(vec![("Kc1", Arc::clone(&t))], fast_retry());
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(7)));
        assert_eq!(t.calls(), 3);
        let stats = master.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.scheduled, 1);
        assert_eq!(stats.failovers, 0);
    }

    #[test]
    fn non_retryable_failure_returns_immediately() {
        let t1 = ScriptedTransport::new(
            "c1",
            vec![Ok(ExecOutcome::Failed(ExecError::component("div by zero")))],
        );
        let t2 = ScriptedTransport::new("c2", vec![]);
        let master = master_with(
            vec![("Kc1", Arc::clone(&t1)), ("Kc2", Arc::clone(&t2))],
            fast_retry(),
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert!(matches!(out, ExecOutcome::Failed(ref e) if e.detail == "div by zero"));
        assert_eq!(t1.calls(), 1);
        assert_eq!(t2.calls(), 0, "deterministic failure must not fail over");
        assert_eq!(master.stats().retries, 0);
    }

    #[test]
    fn timeout_fails_over_and_is_counted() {
        let t1 = ScriptedTransport::new(
            "c1",
            vec![Err(TransportError::Timeout(Duration::from_millis(1)))],
        );
        let t2 = ScriptedTransport::new("c2", vec![Ok(ExecOutcome::Ok(Value::Int(9)))]);
        let master = master_with(
            vec![("Kc1", Arc::clone(&t1)), ("Kc2", Arc::clone(&t2))],
            fast_retry(),
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(9)));
        let stats = master.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.rescheduled, 1);
        assert_eq!(stats.scheduled, 1);
    }

    #[test]
    fn retries_exhausted_then_failover() {
        let t1 = ScriptedTransport::new(
            "c1",
            vec![
                Ok(ExecOutcome::Failed(ExecError::component_transient("down"))),
                Ok(ExecOutcome::Failed(ExecError::component_transient("down"))),
                Ok(ExecOutcome::Failed(ExecError::component_transient("down"))),
            ],
        );
        let t2 = ScriptedTransport::new("c2", vec![Ok(ExecOutcome::Ok(Value::Unit))]);
        let master = master_with(
            vec![("Kc1", Arc::clone(&t1)), ("Kc2", Arc::clone(&t2))],
            fast_retry(),
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert!(out.is_ok());
        assert_eq!(t1.calls(), 3); // max_attempts
        let stats = master.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.rescheduled, 1);
    }

    #[test]
    fn all_targets_failing_reports_unreachable() {
        let t1 = ScriptedTransport::new(
            "c1",
            vec![Err(TransportError::Unreachable("refused".into()))],
        );
        let t2 = ScriptedTransport::new(
            "c2",
            vec![Err(TransportError::Closed("reset".into()))],
        );
        let master = master_with(
            vec![("Kc1", Arc::clone(&t1)), ("Kc2", Arc::clone(&t2))],
            RetryPolicy::none(),
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert!(
            matches!(out, ExecOutcome::Failed(ref e) if e.detail.contains("unreachable")),
            "{out:?}"
        );
        let stats = master.stats();
        assert_eq!(stats.unschedulable, 1);
        // Only target switches count as failovers — giving up entirely
        // after the last target is not one.
        assert_eq!(stats.failovers, 1);
    }

    #[test]
    fn client_denial_is_not_retried() {
        let t1 = ScriptedTransport::new(
            "c1",
            vec![Ok(ExecOutcome::Denied("stack denied".into()))],
        );
        let t2 = ScriptedTransport::new("c2", vec![]);
        let master = master_with(
            vec![("Kc1", Arc::clone(&t1)), ("Kc2", Arc::clone(&t2))],
            fast_retry(),
        );
        let out = master.schedule(&action(), &"worker".into(), "Kworker", vec![]);
        assert!(matches!(out, ExecOutcome::Denied(_)));
        assert_eq!(t1.calls(), 1);
        assert_eq!(t2.calls(), 0);
        assert_eq!(master.stats().client_denials, 1);
    }
}

#[cfg(test)]
mod failover_tests {
    use super::*;
    use crate::client::{spawn_client, ClientConfig};
    use crate::protocol::ArithComponentExecutor;
    use crate::stack::{AuthzStack, TrustLayer};
    use hetsec_middleware::naming::MiddlewareKind;

    fn tm(policy: &str) -> Arc<TrustManager> {
        let t = TrustManager::permissive();
        t.add_policy(policy).unwrap();
        Arc::new(t)
    }

    fn spawn(name: &str, key: &str) -> crate::client::ClientHandle {
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        spawn_client(ClientConfig {
            name: name.to_string(),
            key_text: key.to_string(),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        })
    }

    fn master_for(keys: &[&str]) -> WebComMaster {
        let mut policy = String::new();
        for k in keys {
            policy.push_str(&format!(
                "Authorizer: POLICY\nLicensees: \"{k}\"\nConditions: app_domain==\"WebCom\";\n\n"
            ));
        }
        let master = WebComMaster::new("Kmaster", tm(&policy));
        master.bind(
            "add",
            Binding {
                component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                domain: "Dom".into(),
                role: "Worker".into(),
                user: "worker".into(),
                principal: "Kworker".to_string(),
            },
        );
        master
    }

    #[test]
    fn fails_over_to_surviving_client() {
        let master = master_for(&["Kc1", "Kc2"]);
        let c1 = spawn("c1", "Kc1");
        let c2 = spawn("c2", "Kc2");
        master.register_client(&c1, vec!["Dom".into()]);
        master.register_client(&c2, vec!["Dom".into()]);
        // Kill the first client; the master should fail over to c2.
        c1.shutdown();
        let out = master.schedule_primitive("add", vec![Value::Int(20), Value::Int(22)]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(42)));
        let stats = master.stats();
        assert_eq!(stats.scheduled, 1);
        assert_eq!(stats.rescheduled, 1);
        assert_eq!(stats.failovers, 1);
        let s2 = c2.shutdown();
        assert_eq!(s2.executed, 1);
    }

    #[test]
    fn all_clients_dead_reports_failure() {
        let master = master_for(&["Kc1", "Kc2"]);
        let c1 = spawn("c1", "Kc1");
        let c2 = spawn("c2", "Kc2");
        master.register_client(&c1, vec!["Dom".into()]);
        master.register_client(&c2, vec!["Dom".into()]);
        c1.shutdown();
        c2.shutdown();
        let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(1)]);
        assert!(matches!(out, ExecOutcome::Failed(ref e) if e.detail.contains("unreachable")));
        assert_eq!(master.stats().unschedulable, 1);
    }

    #[test]
    fn no_failover_needed_when_first_client_healthy() {
        let master = master_for(&["Kc1", "Kc2"]);
        let c1 = spawn("c1", "Kc1");
        let c2 = spawn("c2", "Kc2");
        master.register_client(&c1, vec!["Dom".into()]);
        master.register_client(&c2, vec!["Dom".into()]);
        let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(1)]);
        assert!(out.is_ok());
        let stats = master.stats();
        assert_eq!(stats.rescheduled, 0);
        assert_eq!(stats.failovers, 0);
        let s1 = c1.shutdown();
        let s2 = c2.shutdown();
        assert_eq!(s1.executed + s2.executed, 1);
    }
}
