//! Headless model of the WebCom IDE's security-aware component palette
//! (paper §6, Figure 11).
//!
//! *Interrogation* extracts the invocable components from each
//! middleware service, together with the security policy information
//! needed to build the palette: for every component, the combinations of
//! (domain, role, user) that are authorised to execute it. The
//! programmer may pin any subset of the three (a *partial
//! specification*); the resolver completes it with an authorised
//! binding the scheduler can use.

use hetsec_com::ComMiddleware;
use hetsec_corba::CorbaMiddleware;
use hetsec_ejb::EjbMiddleware;
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_middleware::security::MiddlewareSecurity;
use hetsec_rbac::{Domain, RbacPolicy, Role, User};
use serde::{Deserialize, Serialize};

/// An authorised execution identity for a component.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Combo {
    /// The domain.
    pub domain: Domain,
    /// The role.
    pub role: Role,
    /// The user.
    pub user: User,
}

/// One palette entry: a component plus everything the IDE shows about it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaletteEntry {
    /// The component.
    pub component: ComponentRef,
    /// Authorised (domain, role, user) combinations.
    pub authorized: Vec<Combo>,
}

/// The component palette for a set of interrogated middlewares.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentPalette {
    /// Entries, sorted by component identifier.
    pub entries: Vec<PaletteEntry>,
}

impl ComponentPalette {
    /// Number of components on the palette.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks an entry up by component identifier.
    pub fn entry(&self, identifier: &str) -> Option<&PaletteEntry> {
        self.entries
            .iter()
            .find(|e| e.component.identifier() == identifier)
    }
}

/// A source of invocable components — the per-middleware "plugin" used
/// by the interrogation process.
pub trait InterrogationPlugin: Send + Sync {
    /// The invocable components this middleware hosts.
    fn components(&self) -> Vec<ComponentRef>;

    /// The exported security policy (used to compute authorised combos).
    fn exported_policy(&self) -> RbacPolicy;
}

impl InterrogationPlugin for ComMiddleware {
    fn components(&self) -> Vec<ComponentRef> {
        let domain = self.catalog().nt_domain_name().to_string();
        let mut out = Vec::new();
        for app in self.catalog().applications() {
            if let Some(entry) = self.catalog().application(&app) {
                if entry.classes.is_empty() {
                    // Applications with no registered classes are still
                    // launchable units.
                    out.push(ComponentRef::new(
                        MiddlewareKind::ComPlus,
                        domain.as_str(),
                        app.as_str(),
                        "Launch",
                    ));
                }
                for class in entry.classes {
                    out.push(ComponentRef::new(
                        MiddlewareKind::ComPlus,
                        domain.as_str(),
                        app.as_str(),
                        class.as_str(),
                    ));
                }
            }
        }
        out
    }

    fn exported_policy(&self) -> RbacPolicy {
        self.export_policy()
    }
}

impl InterrogationPlugin for EjbMiddleware {
    fn components(&self) -> Vec<ComponentRef> {
        let domain = self.container().domain().to_string();
        let mut out = Vec::new();
        for (bean, desc) in self.container().beans() {
            for method in desc.methods {
                out.push(ComponentRef::new(
                    MiddlewareKind::Ejb,
                    domain.as_str(),
                    bean.as_str(),
                    method.as_str(),
                ));
            }
        }
        out
    }

    fn exported_policy(&self) -> RbacPolicy {
        self.export_policy()
    }
}

impl InterrogationPlugin for CorbaMiddleware {
    fn components(&self) -> Vec<ComponentRef> {
        let domain = self.orb().domain().to_string();
        let mut out = Vec::new();
        for (iface, def) in self.orb().interfaces() {
            for op in def.operations {
                out.push(ComponentRef::new(
                    MiddlewareKind::Corba,
                    domain.as_str(),
                    iface.as_str(),
                    op.as_str(),
                ));
            }
        }
        out
    }

    fn exported_policy(&self) -> RbacPolicy {
        self.export_policy()
    }
}

/// Computes the authorised combos for one component under a policy: the
/// (domain, role) pairs holding the component's required permission on
/// its object type, joined with the role members.
pub fn authorized_combos(component: &ComponentRef, policy: &RbacPolicy) -> Vec<Combo> {
    let needed = component.required_permission();
    let mut out = Vec::new();
    for g in policy.grants() {
        if g.object_type != component.object_type
            || g.permission != needed
            || g.domain != component.domain
        {
            continue;
        }
        for user in policy.members_of(&g.domain, &g.role) {
            out.push(Combo {
                domain: g.domain.clone(),
                role: g.role.clone(),
                user,
            });
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Interrogates a set of middleware plugins into a palette.
pub fn interrogate(plugins: &[&dyn InterrogationPlugin]) -> ComponentPalette {
    let mut entries = Vec::new();
    for plugin in plugins {
        let policy = plugin.exported_policy();
        for component in plugin.components() {
            let authorized = authorized_combos(&component, &policy);
            entries.push(PaletteEntry {
                component,
                authorized,
            });
        }
    }
    entries.sort_by_key(|e| e.component.identifier());
    ComponentPalette { entries }
}

/// A partial execution specification (§6): pin any of domain/role/user.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialSpec {
    /// Required domain, if pinned.
    pub domain: Option<Domain>,
    /// Required role, if pinned.
    pub role: Option<Role>,
    /// Required user, if pinned.
    pub user: Option<User>,
}

impl PartialSpec {
    /// An unconstrained specification.
    pub fn any() -> Self {
        Self::default()
    }

    /// Pins the domain.
    pub fn in_domain(mut self, d: impl Into<Domain>) -> Self {
        self.domain = Some(d.into());
        self
    }

    /// Pins the role.
    pub fn as_role(mut self, r: impl Into<Role>) -> Self {
        self.role = Some(r.into());
        self
    }

    /// Pins the user.
    pub fn as_user(mut self, u: impl Into<User>) -> Self {
        self.user = Some(u.into());
        self
    }

    fn matches(&self, combo: &Combo) -> bool {
        self.domain.as_ref().is_none_or(|d| d == &combo.domain)
            && self.role.as_ref().is_none_or(|r| r == &combo.role)
            && self.user.as_ref().is_none_or(|u| u == &combo.user)
    }
}

/// Completes a partial specification against a palette entry: the first
/// authorised combo (in sorted order, for determinism) matching every
/// pinned field.
pub fn resolve_spec(entry: &PaletteEntry, spec: &PartialSpec) -> Option<Combo> {
    entry.authorized.iter().find(|c| spec.matches(c)).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_middleware::naming::EjbDomain;
    use hetsec_rbac::{PermissionGrant, RoleAssignment};

    fn ejb_fixture() -> EjbMiddleware {
        let d = EjbDomain::new("h", "s", "j");
        let m = EjbMiddleware::new(d.clone());
        let ds = d.to_string();
        m.grant(&PermissionGrant::new(ds.as_str(), "Manager", "SalariesBean", "read"))
            .unwrap();
        m.grant(&PermissionGrant::new(ds.as_str(), "Clerk", "SalariesBean", "write"))
            .unwrap();
        m.assign(&RoleAssignment::new("bob", ds.as_str(), "Manager")).unwrap();
        m.assign(&RoleAssignment::new("eve", ds.as_str(), "Manager")).unwrap();
        m.assign(&RoleAssignment::new("alice", ds.as_str(), "Clerk")).unwrap();
        m
    }

    #[test]
    fn interrogation_lists_bean_methods() {
        let m = ejb_fixture();
        let palette = interrogate(&[&m]);
        assert_eq!(palette.len(), 2); // read + write on SalariesBean
        assert!(!palette.is_empty());
        let d = EjbDomain::new("h", "s", "j").to_string();
        let read_id = format!("ejb://{d}/SalariesBean#read");
        let entry = palette.entry(&read_id).unwrap();
        // Managers bob and eve may read.
        assert_eq!(entry.authorized.len(), 2);
        assert!(entry.authorized.iter().all(|c| c.role.as_str() == "Manager"));
    }

    #[test]
    fn combos_respect_required_permission() {
        let m = ejb_fixture();
        let palette = interrogate(&[&m]);
        let d = EjbDomain::new("h", "s", "j").to_string();
        let write_id = format!("ejb://{d}/SalariesBean#write");
        let entry = palette.entry(&write_id).unwrap();
        assert_eq!(entry.authorized.len(), 1);
        assert_eq!(entry.authorized[0].user.as_str(), "alice");
    }

    #[test]
    fn partial_spec_resolution() {
        let m = ejb_fixture();
        let palette = interrogate(&[&m]);
        let d = EjbDomain::new("h", "s", "j").to_string();
        let entry = palette
            .entry(&format!("ejb://{d}/SalariesBean#read"))
            .unwrap();
        // Fully open: first combo deterministically (alphabetical: bob).
        let c = resolve_spec(entry, &PartialSpec::any()).unwrap();
        assert_eq!(c.user.as_str(), "bob");
        // Pin the user.
        let c = resolve_spec(entry, &PartialSpec::any().as_user("eve")).unwrap();
        assert_eq!(c.user.as_str(), "eve");
        // Pin an unauthorised user: no binding.
        assert!(resolve_spec(entry, &PartialSpec::any().as_user("alice")).is_none());
        // Pin domain+role.
        let c = resolve_spec(
            entry,
            &PartialSpec::any().in_domain(d.as_str()).as_role("Manager"),
        )
        .unwrap();
        assert_eq!(c.role.as_str(), "Manager");
    }

    #[test]
    fn com_interrogation_includes_launchable_apps() {
        use hetsec_com::ComMiddleware;
        let m = ComMiddleware::new("CORP");
        m.catalog().register_application("EmptyApp");
        m.catalog().register_class("SalariesDB", "SalaryRecord");
        let palette = interrogate(&[&m]);
        assert_eq!(palette.len(), 2);
        assert!(palette.entry("com://CORP/EmptyApp#Launch").is_some());
        assert!(palette.entry("com://CORP/SalariesDB#SalaryRecord").is_some());
    }

    #[test]
    fn corba_interrogation_lists_operations() {
        use hetsec_corba::CorbaMiddleware;
        use hetsec_middleware::naming::CorbaDomain;
        let m = CorbaMiddleware::new(CorbaDomain::new("zeus", "orb"));
        m.orb().register_interface("Salaries", &["read", "write"]);
        let palette = interrogate(&[&m]);
        assert_eq!(palette.len(), 2);
    }

    #[test]
    fn multi_middleware_palette_is_sorted() {
        use hetsec_corba::CorbaMiddleware;
        use hetsec_middleware::naming::CorbaDomain;
        let ejb = ejb_fixture();
        let corba = CorbaMiddleware::new(CorbaDomain::new("zeus", "orb"));
        corba.orb().register_interface("Salaries", &["read"]);
        let palette = interrogate(&[&ejb, &corba]);
        assert_eq!(palette.len(), 3);
        let ids: Vec<String> = palette
            .entries
            .iter()
            .map(|e| e.component.identifier())
            .collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }
}
