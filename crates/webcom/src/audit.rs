//! Mediation auditing: a bounded, thread-safe log of stack decisions.
//!
//! The paper's maintenance story (§4.4) needs visibility into what the
//! layers actually decided; [`AuditedStack`] wraps an
//! [`AuthzStack`](crate::stack::AuthzStack) and records every decision
//! (principal, user, component, per-layer trace) into a ring buffer the
//! administrator can query.

use crate::cache::CacheStats;
use crate::stack::{AuthzContext, AuthzStack, StackDecision, Verdict};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One audited decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotone sequence number.
    pub seq: u64,
    /// The requesting principal (key text).
    pub principal: String,
    /// The executing user.
    pub user: String,
    /// The component identifier.
    pub component: String,
    /// Whether the stack permitted.
    pub permitted: bool,
    /// (layer name, verdict summary) top-down.
    pub trace: Vec<(String, String)>,
}

/// A bounded audit log.
pub struct AuditLog {
    records: Mutex<VecDeque<AuditRecord>>,
    capacity: usize,
    seq: AtomicU64,
    denials: AtomicU64,
    grants: AtomicU64,
    /// Latest decision-cache counters of the audited stack (all zero
    /// when the stack has no cache configured).
    cache: Mutex<CacheStats>,
}

impl AuditLog {
    /// A log keeping the last `capacity` records.
    pub fn new(capacity: usize) -> Self {
        AuditLog {
            records: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            denials: AtomicU64::new(0),
            grants: AtomicU64::new(0),
            cache: Mutex::new(CacheStats::default()),
        }
    }

    /// Records one decision (used by [`AuditedStack`] and by client
    /// engines auditing transport-served requests). Returns the record's
    /// sequence number.
    pub fn record(&self, ctx: &AuthzContext, decision: &StackDecision) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if decision.permitted {
            self.grants.fetch_add(1, Ordering::Relaxed);
        } else {
            self.denials.fetch_add(1, Ordering::Relaxed);
        }
        let rec = AuditRecord {
            seq,
            principal: ctx.principal.clone(),
            user: ctx.user.to_string(),
            component: ctx.action.component.identifier(),
            permitted: decision.permitted,
            trace: decision
                .trace
                .iter()
                .map(|(name, v)| {
                    let summary = match v {
                        Verdict::Grant => "grant".to_string(),
                        Verdict::Abstain => "abstain".to_string(),
                        Verdict::Deny(r) => format!("deny: {r}"),
                    };
                    (name.clone(), summary)
                })
                .collect(),
        };
        let mut records = self.records.lock();
        if records.len() == self.capacity {
            records.pop_front();
        }
        records.push_back(rec);
        seq
    }

    /// Records a burst of decisions in one pass: the sequence counter
    /// advances once for the whole burst, grant/denial totals are
    /// updated with one atomic add each, and the ring lock is taken
    /// once for all pushes. Returns the first sequence number assigned
    /// (records get consecutive numbers from it).
    pub fn record_batch(&self, entries: &[(&AuthzContext, &StackDecision)]) -> u64 {
        let n = entries.len() as u64;
        let seq_base = self.seq.fetch_add(n, Ordering::Relaxed);
        let grants = entries.iter().filter(|(_, d)| d.permitted).count() as u64;
        if grants > 0 {
            self.grants.fetch_add(grants, Ordering::Relaxed);
        }
        if n > grants {
            self.denials.fetch_add(n - grants, Ordering::Relaxed);
        }
        let batch: Vec<AuditRecord> = entries
            .iter()
            .enumerate()
            .map(|(i, (ctx, decision))| AuditRecord {
                seq: seq_base + i as u64,
                principal: ctx.principal.clone(),
                user: ctx.user.to_string(),
                component: ctx.action.component.identifier(),
                permitted: decision.permitted,
                trace: decision
                    .trace
                    .iter()
                    .map(|(name, v)| {
                        let summary = match v {
                            Verdict::Grant => "grant".to_string(),
                            Verdict::Abstain => "abstain".to_string(),
                            Verdict::Deny(r) => format!("deny: {r}"),
                        };
                        (name.clone(), summary)
                    })
                    .collect(),
            })
            .collect();
        let mut records = self.records.lock();
        for rec in batch {
            if records.len() == self.capacity {
                records.pop_front();
            }
            records.push_back(rec);
        }
        seq_base
    }

    /// The most recent `n` records, oldest first.
    pub fn recent(&self, n: usize) -> Vec<AuditRecord> {
        let records = self.records.lock();
        records.iter().rev().take(n).rev().cloned().collect()
    }

    /// All retained denials, oldest first.
    pub fn denials(&self) -> Vec<AuditRecord> {
        self.records
            .lock()
            .iter()
            .filter(|r| !r.permitted)
            .cloned()
            .collect()
    }

    /// Totals since creation (grants, denials) — not limited by capacity.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.grants.load(Ordering::Relaxed),
            self.denials.load(Ordering::Relaxed),
        )
    }

    /// The audited stack's decision-cache counters (hits, misses,
    /// epoch invalidations), as of the most recent decision. All zero
    /// when the stack decides without a cache.
    pub fn cache_stats(&self) -> CacheStats {
        *self.cache.lock()
    }

    fn set_cache_stats(&self, stats: CacheStats) {
        *self.cache.lock() = stats;
    }
}

/// An authorisation stack that records every decision.
pub struct AuditedStack {
    stack: AuthzStack,
    log: Arc<AuditLog>,
}

impl AuditedStack {
    /// Wraps a stack with a log of the given capacity.
    pub fn new(stack: AuthzStack, capacity: usize) -> Self {
        AuditedStack {
            stack,
            log: Arc::new(AuditLog::new(capacity)),
        }
    }

    /// The shared log handle.
    pub fn log(&self) -> Arc<AuditLog> {
        Arc::clone(&self.log)
    }

    /// Decides and records.
    pub fn decide(&self, ctx: &AuthzContext) -> StackDecision {
        let decision = self.stack.decide(ctx);
        self.log.record(ctx, &decision);
        if let Some(stats) = self.stack.cache_stats() {
            self.log.set_cache_stats(stats);
        }
        decision
    }

    /// Decides a burst and records it with batched counters
    /// ([`AuditLog::record_batch`]).
    pub fn decide_batch(&self, ctxs: &[AuthzContext]) -> Vec<StackDecision> {
        let decisions = self.stack.decide_batch(ctxs);
        let entries: Vec<(&AuthzContext, &StackDecision)> =
            ctxs.iter().zip(decisions.iter()).collect();
        self.log.record_batch(&entries);
        if let Some(stats) = self.stack.cache_stats() {
            self.log.set_cache_stats(stats);
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authz::{ScheduledAction, TrustManager};
    use crate::stack::TrustLayer;
    use hetsec_middleware::component::ComponentRef;
    use hetsec_middleware::naming::MiddlewareKind;

    fn audited() -> AuditedStack {
        let tm = TrustManager::permissive();
        tm.add_policy(
            "Authorizer: POLICY\nLicensees: \"Kok\"\nConditions: app_domain==\"WebCom\";\n",
        )
        .unwrap();
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(Arc::new(tm))));
        AuditedStack::new(stack, 4)
    }

    fn ctx(principal: &str) -> AuthzContext {
        AuthzContext::new(
            "worker",
            principal,
            ScheduledAction::new(
                ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                "Dom",
                "Worker",
            ),
        )
    }

    #[test]
    fn decisions_are_recorded_with_traces() {
        let s = audited();
        assert!(s.decide(&ctx("Kok")).permitted);
        assert!(!s.decide(&ctx("Kbad")).permitted);
        let log = s.log();
        let recent = log.recent(10);
        assert_eq!(recent.len(), 2);
        assert!(recent[0].permitted);
        assert_eq!(recent[0].principal, "Kok");
        assert_eq!(recent[0].trace.len(), 1);
        assert_eq!(recent[0].trace[0].1, "grant");
        assert!(!recent[1].permitted);
        assert!(recent[1].trace[0].1.starts_with("deny:"));
        assert_eq!(log.totals(), (1, 1));
    }

    #[test]
    fn ring_buffer_caps_retention_but_not_totals() {
        let s = audited();
        for i in 0..10 {
            let p = if i % 2 == 0 { "Kok" } else { "Kbad" };
            s.decide(&ctx(p));
        }
        let log = s.log();
        assert_eq!(log.recent(100).len(), 4); // capacity
        assert_eq!(log.totals(), (5, 5)); // full history counted
        // Sequence numbers stay monotone across eviction.
        let recent = log.recent(100);
        assert!(recent.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(recent.last().unwrap().seq, 9);
    }

    #[test]
    fn denials_filter() {
        let s = audited();
        s.decide(&ctx("Kok"));
        s.decide(&ctx("Kbad"));
        s.decide(&ctx("Kworse"));
        let denials = s.log().denials();
        assert_eq!(denials.len(), 2);
        assert!(denials.iter().all(|r| !r.permitted));
    }

    #[test]
    fn cache_counters_visible_through_log() {
        let tm = TrustManager::permissive();
        tm.add_policy(
            "Authorizer: POLICY\nLicensees: \"Kok\"\nConditions: app_domain==\"WebCom\";\n",
        )
        .unwrap();
        let mut stack = AuthzStack::new().with_cache(64);
        stack.push(Arc::new(TrustLayer::new(Arc::new(tm))));
        let s = AuditedStack::new(stack, 4);
        assert!(s.decide(&ctx("Kok")).permitted);
        assert!(s.decide(&ctx("Kok")).permitted);
        let stats = s.log().cache_stats();
        assert_eq!(stats.hits, 1);
        assert!(stats.misses >= 1);
        // An uncached stack reports zeros.
        let uncached = audited();
        uncached.decide(&ctx("Kok"));
        assert_eq!(uncached.log().cache_stats(), crate::cache::CacheStats::default());
    }

    #[test]
    fn concurrent_recording() {
        let s = Arc::new(audited());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let p = if i % 2 == 0 { "Kok" } else { "Kbad" };
                    s.decide(&ctx(p)).permitted
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.log().totals(), (4, 4));
    }
}
