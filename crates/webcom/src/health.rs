//! Per-client health for the master's dispatch loop: EWMA latency and
//! error-rate tracking fed by every transport call, a three-state
//! circuit breaker (closed → open → half-open probe), and bounded
//! in-flight quotas for backpressure.
//!
//! The master keeps one [`ClientHealth`] per registered client. Before
//! every transport call it asks for a [`CallPermit`]
//! ([`ClientHealth::try_begin`]): a client whose breaker is open is
//! skipped outright (no per-op timeout rediscovering a dead peer), a
//! client at its in-flight quota sheds the operation to the next
//! eligible client instead of queueing, and a client whose open
//! cooldown has elapsed admits exactly one half-open *probe* call — a
//! probe success closes the breaker, a probe failure re-opens it for
//! another cooldown. Every call's latency and outcome is recorded back
//! through the permit, which is also a drop guard: a panic between
//! admission and recording cannot leak the in-flight slot or wedge the
//! breaker in a probing state.
//!
//! Health feeds target *ordering* too: [`ClientHealth::rank`] sorts the
//! eligible clients by breaker state, then error rate, then latency, so
//! `schedule` prefers observed behaviour over registration order
//! (adaptive selection in the sense of Dearle et al.'s policy-free
//! middleware, with endpoint health as first-class scheduling input as
//! in de Leusse & Dimitrakos's governance middleware).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Tunables for the per-client health model.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Weight of the newest sample in the EWMA latency / error-rate
    /// estimates (0 < alpha <= 1).
    pub ewma_alpha: f64,
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// EWMA error rate that trips the breaker open (once `min_samples`
    /// calls have been observed).
    pub error_rate_threshold: f64,
    /// Calls observed before the error-rate threshold may trip.
    pub min_samples: u64,
    /// How long an open breaker waits before admitting a half-open
    /// probe.
    pub open_cooldown: Duration,
    /// In-flight calls one client may carry before further operations
    /// are shed to the next eligible client.
    pub max_in_flight: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            ewma_alpha: 0.2,
            failure_threshold: 3,
            error_rate_threshold: 0.6,
            min_samples: 8,
            open_cooldown: Duration::from_millis(250),
            max_in_flight: 64,
        }
    }
}

/// Circuit-breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// The client is ejected; calls are refused until the cooldown
    /// elapses.
    Open,
    /// The cooldown elapsed; a single trial call is in flight (or
    /// admissible) to decide between closing and re-opening.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        };
        write!(f, "{s}")
    }
}

/// Why [`ClientHealth::try_begin`] refused a call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refusal {
    /// The breaker is open (and the cooldown has not elapsed, or a
    /// half-open probe is already in flight).
    Open,
    /// The client is at its in-flight quota; shed to the next client.
    Saturated,
}

/// A point-in-time view of one client's health (accessor:
/// `WebComMaster::client_health`).
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// Client name.
    pub client: String,
    /// Breaker state.
    pub state: BreakerState,
    /// EWMA of observed call latency.
    pub ewma_latency: Duration,
    /// EWMA of the per-call failure indicator (0.0 = all succeeding,
    /// 1.0 = all failing).
    pub error_rate: f64,
    /// Current consecutive-failure run.
    pub consecutive_failures: u32,
    /// Calls currently in flight.
    pub in_flight: usize,
    /// Calls observed.
    pub samples: u64,
    /// Closed → open transitions.
    pub trips: u64,
    /// Half-open probe calls admitted.
    pub probes: u64,
    /// Operations shed off this client because it was at quota.
    pub shed: u64,
}

struct HealthInner {
    state: BreakerState,
    opened_at: Option<Instant>,
    /// A half-open probe is in flight (only one trial at a time).
    probing: bool,
    consecutive_failures: u32,
    ewma_latency_us: f64,
    ewma_error_rate: f64,
    samples: u64,
    trips: u64,
    probes: u64,
    shed: u64,
}

/// One client's health record, shared between the master's dispatch
/// loop and its stats accessors.
pub struct ClientHealth {
    cfg: HealthConfig,
    in_flight: AtomicUsize,
    inner: Mutex<HealthInner>,
}

impl ClientHealth {
    /// A fresh record (breaker closed, no samples).
    pub fn new(cfg: HealthConfig) -> Self {
        ClientHealth {
            cfg,
            in_flight: AtomicUsize::new(0),
            inner: Mutex::new(HealthInner {
                state: BreakerState::Closed,
                opened_at: None,
                probing: false,
                consecutive_failures: 0,
                ewma_latency_us: 0.0,
                ewma_error_rate: 0.0,
                samples: 0,
                trips: 0,
                probes: 0,
                shed: 0,
            }),
        }
    }

    /// Admission control for one call. `force` bypasses the breaker and
    /// the quota (the dispatch loop's last resort when *every* eligible
    /// client is refused — an op must not die solely to open breakers);
    /// a forced call through a non-closed breaker still counts as a
    /// probe so its outcome resolves the breaker.
    pub fn try_begin(&self, force: bool) -> Result<CallPermit<'_>, Refusal> {
        let mut inner = self.inner.lock();
        if self.in_flight.load(Ordering::SeqCst) >= self.cfg.max_in_flight && !force {
            inner.shed += 1;
            return Err(Refusal::Saturated);
        }
        let probe = match inner.state {
            BreakerState::Closed => false,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_some_and(|t| t.elapsed() >= self.cfg.open_cooldown);
                if !cooled && !force {
                    return Err(Refusal::Open);
                }
                inner.state = BreakerState::HalfOpen;
                inner.probing = true;
                inner.probes += 1;
                true
            }
            BreakerState::HalfOpen => {
                if inner.probing && !force {
                    return Err(Refusal::Open);
                }
                inner.probing = true;
                inner.probes += 1;
                true
            }
        };
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        Ok(CallPermit {
            health: self,
            probe,
            resolved: false,
        })
    }

    /// Sort key: breaker state first (closed < half-open < open), then
    /// EWMA error rate, then EWMA latency. Lower is healthier.
    pub fn rank(&self) -> (u8, f64, f64) {
        let inner = self.inner.lock();
        let state = match inner.state {
            BreakerState::Closed => 0u8,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        };
        (state, inner.ewma_error_rate, inner.ewma_latency_us)
    }

    /// The current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// A point-in-time snapshot labelled with `client`.
    pub fn snapshot(&self, client: &str) -> HealthSnapshot {
        let inner = self.inner.lock();
        HealthSnapshot {
            client: client.to_string(),
            state: inner.state,
            ewma_latency: Duration::from_micros(inner.ewma_latency_us as u64),
            error_rate: inner.ewma_error_rate,
            consecutive_failures: inner.consecutive_failures,
            in_flight: self.in_flight.load(Ordering::SeqCst),
            samples: inner.samples,
            trips: inner.trips,
            probes: inner.probes,
            shed: inner.shed,
        }
    }

    fn record(&self, latency: Duration, ok: bool, probe: bool) {
        let alpha = self.cfg.ewma_alpha.clamp(0.0, 1.0);
        let mut inner = self.inner.lock();
        let latency_us = latency.as_secs_f64() * 1e6;
        if inner.samples == 0 {
            inner.ewma_latency_us = latency_us;
        } else {
            inner.ewma_latency_us += alpha * (latency_us - inner.ewma_latency_us);
        }
        let indicator = if ok { 0.0 } else { 1.0 };
        inner.ewma_error_rate += alpha * (indicator - inner.ewma_error_rate);
        inner.samples += 1;
        if probe {
            inner.probing = false;
            if ok {
                // Trial call succeeded: the client is back.
                inner.state = BreakerState::Closed;
                inner.opened_at = None;
                inner.consecutive_failures = 0;
                inner.ewma_error_rate = 0.0;
            } else {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
            }
            return;
        }
        if ok {
            inner.consecutive_failures = 0;
            return;
        }
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let tripped_by_run = inner.consecutive_failures >= self.cfg.failure_threshold;
        let tripped_by_rate = inner.samples >= self.cfg.min_samples
            && inner.ewma_error_rate >= self.cfg.error_rate_threshold;
        if inner.state == BreakerState::Closed && (tripped_by_run || tripped_by_rate) {
            inner.state = BreakerState::Open;
            inner.opened_at = Some(Instant::now());
            inner.trips += 1;
        }
    }

    /// Abandoned permit (dropped without recording): release the slot
    /// and, if this was the probe, re-open so another probe can run.
    fn abandon(&self, probe: bool) {
        if probe {
            let mut inner = self.inner.lock();
            if inner.state == BreakerState::HalfOpen {
                inner.probing = false;
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
            }
        }
    }
}

/// An admitted call: holds the client's in-flight slot until dropped,
/// and carries the probe flag so the outcome resolves a half-open
/// breaker. Record each call's result with [`CallPermit::record`].
pub struct CallPermit<'a> {
    health: &'a ClientHealth,
    probe: bool,
    resolved: bool,
}

impl std::fmt::Debug for CallPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallPermit")
            .field("probe", &self.probe)
            .field("resolved", &self.resolved)
            .finish()
    }
}

impl CallPermit<'_> {
    /// True when this call is the half-open trial.
    pub fn is_probe(&self) -> bool {
        self.probe
    }

    /// Feeds one call's latency and outcome into the EWMA estimates and
    /// the breaker. May be called once per transport attempt while the
    /// permit is held (the dispatch loop's same-client retries).
    pub fn record(&mut self, latency: Duration, ok: bool) {
        self.health.record(latency, ok, self.probe);
        self.resolved = true;
    }
}

impl Drop for CallPermit<'_> {
    fn drop(&mut self) {
        self.health.in_flight.fetch_sub(1, Ordering::SeqCst);
        if !self.resolved {
            self.health.abandon(self.probe);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(20),
            max_in_flight: 2,
            ..HealthConfig::default()
        }
    }

    fn fail(h: &ClientHealth) {
        let mut p = h.try_begin(false).expect("admitted");
        p.record(Duration::from_millis(1), false);
    }

    fn succeed(h: &ClientHealth) {
        let mut p = h.try_begin(false).expect("admitted");
        p.record(Duration::from_millis(1), true);
    }

    #[test]
    fn trips_open_after_consecutive_failures() {
        let h = ClientHealth::new(cfg());
        fail(&h);
        fail(&h);
        assert_eq!(h.breaker_state(), BreakerState::Closed);
        fail(&h);
        assert_eq!(h.breaker_state(), BreakerState::Open);
        assert_eq!(h.try_begin(false).unwrap_err(), Refusal::Open);
        assert_eq!(h.snapshot("c").trips, 1);
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_failure() {
        let h = ClientHealth::new(cfg());
        for _ in 0..3 {
            fail(&h);
        }
        std::thread::sleep(Duration::from_millis(25));
        // Cooldown elapsed: exactly one probe is admitted.
        let mut probe = h.try_begin(false).expect("probe admitted");
        assert!(probe.is_probe());
        assert_eq!(h.try_begin(false).unwrap_err(), Refusal::Open);
        probe.record(Duration::from_millis(1), false);
        drop(probe); // release the slot (shadowing would keep it held)
        assert_eq!(h.breaker_state(), BreakerState::Open);
        // Second cooldown, second probe — this one succeeds.
        std::thread::sleep(Duration::from_millis(25));
        let mut probe = h.try_begin(false).expect("probe admitted");
        probe.record(Duration::from_millis(1), true);
        drop(probe);
        assert_eq!(h.breaker_state(), BreakerState::Closed);
        succeed(&h);
        assert_eq!(h.snapshot("c").probes, 2);
    }

    #[test]
    fn quota_saturation_sheds() {
        let h = ClientHealth::new(cfg());
        let a = h.try_begin(false).unwrap();
        let b = h.try_begin(false).unwrap();
        assert_eq!(h.try_begin(false).unwrap_err(), Refusal::Saturated);
        assert_eq!(h.snapshot("c").shed, 1);
        drop(a);
        assert!(h.try_begin(false).is_ok());
        drop(b);
    }

    #[test]
    fn forced_admission_bypasses_open_breaker_as_probe() {
        let h = ClientHealth::new(cfg());
        for _ in 0..3 {
            fail(&h);
        }
        let mut p = h.try_begin(true).expect("forced");
        assert!(p.is_probe());
        p.record(Duration::from_millis(1), true);
        assert_eq!(h.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn abandoned_probe_reopens_and_releases_slot() {
        let h = ClientHealth::new(cfg());
        for _ in 0..3 {
            fail(&h);
        }
        std::thread::sleep(Duration::from_millis(25));
        let probe = h.try_begin(false).expect("probe");
        drop(probe); // dropped without recording (panic path)
        assert_eq!(h.breaker_state(), BreakerState::Open);
        assert_eq!(h.snapshot("c").in_flight, 0);
    }

    #[test]
    fn rank_orders_by_state_then_error_rate() {
        let healthy = ClientHealth::new(cfg());
        succeed(&healthy);
        let flaky = ClientHealth::new(cfg());
        succeed(&flaky);
        fail(&flaky);
        let dead = ClientHealth::new(cfg());
        for _ in 0..3 {
            fail(&dead);
        }
        assert!(healthy.rank() < flaky.rank());
        assert!(flaky.rank() < dead.rank());
    }
}
