//! Transport abstraction for the master/client scheduling fabric.
//!
//! The master schedules through a [`ClientTransport`]: one synchronous,
//! deadline-bounded request/reply exchange per call, with replies
//! correlated to requests by `op_id`. Two real implementations exist —
//! [`ChannelTransport`] over the in-process channel fabric (the fast
//! path, and what tests use) and [`TcpTransport`] over a length-prefixed
//! TCP wire protocol (see [`crate::wire`]) — plus [`FaultyTransport`],
//! a wrapper that injects drops, delays and crashes at the transport
//! level for fault-tolerance tests and benches.

use crate::client::ClientMessage;
use crate::protocol::{
    ClientIdentity, ExecError, ScheduleReply, ScheduleRequest, WireRequest, WireResponse,
};
use crate::wire::{read_frame, write_frame, WireError};
use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Why a transport call failed.
#[derive(Debug)]
pub enum TransportError {
    /// No reply arrived before the deadline.
    Timeout(Duration),
    /// The peer could not be reached (connect refused, channel closed
    /// before the request was accepted).
    Unreachable(String),
    /// The connection died after the request was sent — the operation's
    /// fate is unknown and it must be rescheduled.
    Closed(String),
    /// The peer spoke the protocol wrong (bad frame, reply for a
    /// different operation).
    Protocol(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Timeout(d) => write!(f, "no reply within {d:?}"),
            TransportError::Unreachable(m) => write!(f, "peer unreachable: {m}"),
            TransportError::Closed(m) => write!(f, "connection lost: {m}"),
            TransportError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    /// True for timeouts (counted separately by the master).
    pub fn is_timeout(&self) -> bool {
        matches!(self, TransportError::Timeout(_))
    }

    /// The structured execution error this transport failure maps to.
    pub fn to_exec_error(&self) -> ExecError {
        match self {
            TransportError::Timeout(_) => ExecError::timeout(self.to_string()),
            TransportError::Unreachable(_) | TransportError::Closed(_) => {
                ExecError::transport(self.to_string())
            }
            TransportError::Protocol(_) => ExecError::protocol(self.to_string()),
        }
    }
}

/// The master's view of one client connection: a synchronous RPC with a
/// deadline. Implementations must be safe to call from multiple
/// scheduler threads.
pub trait ClientTransport: Send + Sync {
    /// Sends `request` and waits up to `timeout` for the reply whose
    /// `op_id` matches the request's.
    fn call(
        &self,
        request: &ScheduleRequest,
        timeout: Duration,
    ) -> Result<ScheduleReply, TransportError>;

    /// Human-readable description (diagnostics).
    fn describe(&self) -> String {
        "transport".to_string()
    }
}

// ---- In-process channel transport ----

/// The in-process fabric: requests travel to the client thread over a
/// channel, each carrying a fresh reply sender (the envelope owns the
/// sender — the serializable [`ScheduleRequest`] itself does not).
pub struct ChannelTransport {
    sender: Sender<ClientMessage>,
}

impl ChannelTransport {
    /// Wraps a client's request channel.
    pub fn new(sender: Sender<ClientMessage>) -> Self {
        ChannelTransport { sender }
    }
}

impl ClientTransport for ChannelTransport {
    fn call(
        &self,
        request: &ScheduleRequest,
        timeout: Duration,
    ) -> Result<ScheduleReply, TransportError> {
        let (reply_tx, reply_rx) = unbounded();
        self.sender
            .send(ClientMessage::Request(Box::new(request.clone()), reply_tx))
            .map_err(|_| TransportError::Unreachable("client channel closed".to_string()))?;
        match reply_rx.recv_timeout(timeout) {
            Ok(reply) if reply.op_id == request.op_id => Ok(reply),
            Ok(reply) => Err(TransportError::Protocol(format!(
                "reply for op {} while awaiting op {}",
                reply.op_id, request.op_id
            ))),
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout(timeout)),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed(
                "client hung up mid-request".to_string(),
            )),
        }
    }

    fn describe(&self) -> String {
        "in-process channel".to_string()
    }
}

// ---- TCP transport ----

/// How many stale (previously timed-out) replies a call will skip while
/// looking for its own `op_id`. Connections are dropped on timeout, so
/// in practice this is only exercised by misbehaving peers.
const MAX_STALE_REPLIES: usize = 8;

/// A connection-per-client TCP transport speaking the length-prefixed
/// wire protocol. The connection is established lazily, serialised by a
/// mutex (one in-flight exchange per connection), and dropped on any
/// failure so the next call reconnects from scratch.
pub struct TcpTransport {
    peer: SocketAddr,
    connect_timeout: Duration,
    stream: Mutex<Option<TcpStream>>,
}

impl TcpTransport {
    /// A transport dialing `peer` (connection made on first use).
    pub fn new(peer: SocketAddr) -> Self {
        TcpTransport {
            peer,
            connect_timeout: Duration::from_secs(5),
            stream: Mutex::new(None),
        }
    }

    /// Overrides the connect timeout.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// The peer address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Connects and performs the registration handshake: who is serving
    /// at `peer`, and which domains do they cover?
    pub fn identify(&self, timeout: Duration) -> Result<ClientIdentity, TransportError> {
        match self.exchange(&WireRequest::Identify, timeout)? {
            WireResponse::Identity(id) => Ok(id),
            WireResponse::Error(e) => Err(TransportError::Protocol(e.detail)),
            WireResponse::Reply(r) | WireResponse::ForwardReply(r) => {
                Err(TransportError::Protocol(format!(
                    "expected identity, got reply for op {}",
                    r.op_id
                )))
            }
        }
    }

    /// One framed request/response exchange under the connection lock.
    fn exchange(
        &self,
        request: &WireRequest,
        timeout: Duration,
    ) -> Result<WireResponse, TransportError> {
        let mut guard = self.stream.lock();
        if guard.is_none() {
            let stream = TcpStream::connect_timeout(&self.peer, self.connect_timeout)
                .map_err(|e| TransportError::Unreachable(format!("{}: {e}", self.peer)))?;
            stream.set_nodelay(true).ok();
            *guard = Some(stream);
        }
        let stream = guard.as_mut().expect("connection just ensured");
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| TransportError::Protocol(format!("set_read_timeout: {e}")))?;
        let result = Self::exchange_on(stream, request, timeout);
        if result.is_err() {
            // Drop the connection: a failed exchange leaves it in an
            // unknown framing state (or with a late reply in flight).
            *guard = None;
        }
        result
    }

    fn exchange_on(
        stream: &mut TcpStream,
        request: &WireRequest,
        timeout: Duration,
    ) -> Result<WireResponse, TransportError> {
        write_frame(stream, request).map_err(|e| match e {
            WireError::Io(ref io) if io.kind() == std::io::ErrorKind::BrokenPipe => {
                TransportError::Closed(e.to_string())
            }
            WireError::Truncated => TransportError::Closed("peer closed while sending".into()),
            other => TransportError::Closed(other.to_string()),
        })?;
        read_frame(stream).map_err(|e| {
            if e.is_timeout() {
                TransportError::Timeout(timeout)
            } else {
                match e {
                    WireError::Truncated => {
                        TransportError::Closed("peer closed mid-reply".to_string())
                    }
                    WireError::Io(io) => TransportError::Closed(io.to_string()),
                    other => TransportError::Protocol(other.to_string()),
                }
            }
        })
    }
}

impl ClientTransport for TcpTransport {
    fn call(
        &self,
        request: &ScheduleRequest,
        timeout: Duration,
    ) -> Result<ScheduleReply, TransportError> {
        let started = Instant::now();
        let mut response =
            self.exchange(&WireRequest::Schedule(Box::new(request.clone())), timeout)?;
        // Correlate by op_id: skip stale replies (an earlier call that
        // timed out after the client already queued its answer). The
        // whole drain runs under the call's single deadline — each
        // skipped frame shrinks the next read's budget rather than
        // re-arming the full timeout, so a misbehaving peer cannot
        // stretch one call to `MAX_STALE_REPLIES × timeout`.
        for _ in 0..MAX_STALE_REPLIES {
            match response {
                WireResponse::Reply(reply) if reply.op_id == request.op_id => return Ok(reply),
                WireResponse::Reply(stale) if stale.op_id < request.op_id => {
                    let mut guard = self.stream.lock();
                    let Some(stream) = guard.as_mut() else {
                        return Err(TransportError::Closed("connection dropped".to_string()));
                    };
                    let Some(remaining) = timeout
                        .checked_sub(started.elapsed())
                        .filter(|r| !r.is_zero())
                    else {
                        *guard = None;
                        return Err(TransportError::Timeout(timeout));
                    };
                    if let Err(e) = stream.set_read_timeout(Some(remaining)) {
                        *guard = None;
                        return Err(TransportError::Protocol(format!("set_read_timeout: {e}")));
                    }
                    response = read_frame(stream).map_err(|e| {
                        *guard = None;
                        if e.is_timeout() {
                            TransportError::Timeout(timeout)
                        } else {
                            TransportError::Closed(e.to_string())
                        }
                    })?;
                }
                WireResponse::Reply(reply) => {
                    *self.stream.lock() = None;
                    return Err(TransportError::Protocol(format!(
                        "reply for future op {} while awaiting op {}",
                        reply.op_id, request.op_id
                    )));
                }
                WireResponse::Error(e) => {
                    *self.stream.lock() = None;
                    return Err(TransportError::Protocol(e.detail));
                }
                WireResponse::Identity(_) | WireResponse::ForwardReply(_) => {
                    *self.stream.lock() = None;
                    return Err(TransportError::Protocol(
                        "unexpected frame while awaiting a schedule reply".to_string(),
                    ));
                }
            }
        }
        *self.stream.lock() = None;
        Err(TransportError::Protocol(format!(
            "gave up correlating op {} after {MAX_STALE_REPLIES} stale replies",
            request.op_id
        )))
    }

    fn describe(&self) -> String {
        format!("tcp://{}", self.peer)
    }
}

// ---- Fault injection ----

/// A transport wrapper injecting faults at the transport level: dropped
/// calls, added latency, and permanent death. Deterministic — tests and
/// benches script the faults they want.
pub struct FaultyTransport {
    inner: Box<dyn ClientTransport>,
    /// Fail this many upcoming calls with `Closed` before passing calls
    /// through again.
    drop_next: AtomicUsize,
    /// Latency added to every call (simulates a slow link; pair with a
    /// short call timeout to force timeouts).
    delay: Mutex<Duration>,
    /// Once set, every call fails with `Unreachable` (a crashed client).
    killed: AtomicBool,
    /// Calls attempted against this transport (including faulted ones).
    calls: AtomicUsize,
}

impl FaultyTransport {
    /// Wraps a transport with no faults armed.
    pub fn new(inner: impl ClientTransport + 'static) -> Self {
        FaultyTransport {
            inner: Box::new(inner),
            drop_next: AtomicUsize::new(0),
            delay: Mutex::new(Duration::ZERO),
            killed: AtomicBool::new(false),
            calls: AtomicUsize::new(0),
        }
    }

    /// Drops (fails with `Closed`) the next `n` calls.
    pub fn drop_next(&self, n: usize) {
        self.drop_next.store(n, Ordering::SeqCst);
    }

    /// Adds `delay` of latency to every subsequent call.
    pub fn set_delay(&self, delay: Duration) {
        *self.delay.lock() = delay;
    }

    /// Kills the transport: every subsequent call is `Unreachable`.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
    }

    /// True once [`kill`](Self::kill) has been called.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Revives a killed transport (a partitioned client coming back):
    /// subsequent calls pass through again.
    pub fn revive(&self) {
        self.killed.store(false, Ordering::SeqCst);
    }

    /// How many calls have been attempted, faulted or not. Lets tests
    /// assert a breaker ejected a dead client after a bounded number of
    /// probes rather than paying one call per operation.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }
}

impl ClientTransport for FaultyTransport {
    fn call(
        &self,
        request: &ScheduleRequest,
        timeout: Duration,
    ) -> Result<ScheduleReply, TransportError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if self.killed.load(Ordering::SeqCst) {
            return Err(TransportError::Unreachable("injected crash".to_string()));
        }
        if self
            .drop_next
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(TransportError::Closed("injected drop".to_string()));
        }
        let delay = *self.delay.lock();
        if delay > Duration::ZERO {
            // A real slow link costs the caller at most its deadline:
            // sleep min(delay, timeout) and report the timeout at the
            // deadline rather than charging the full injected delay.
            if delay >= timeout {
                std::thread::sleep(timeout);
                return Err(TransportError::Timeout(timeout));
            }
            std::thread::sleep(delay);
            return self.inner.call(request, timeout - delay);
        }
        self.inner.call(request, timeout)
    }

    fn describe(&self) -> String {
        format!("faulty({})", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ExecOutcome;
    use hetsec_graphs::Value;

    /// A transport answering every call successfully.
    struct EchoTransport;

    impl ClientTransport for EchoTransport {
        fn call(
            &self,
            request: &ScheduleRequest,
            _timeout: Duration,
        ) -> Result<ScheduleReply, TransportError> {
            Ok(ScheduleReply {
                op_id: request.op_id,
                client: "echo".to_string(),
                outcome: ExecOutcome::Ok(Value::Unit),
                replayed: false,
            })
        }
    }

    fn request(op_id: u64) -> ScheduleRequest {
        use hetsec_middleware::component::ComponentRef;
        use hetsec_middleware::naming::MiddlewareKind;
        ScheduleRequest {
            op_id,
            action: crate::authz::ScheduledAction::new(
                ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                "Dom",
                "Worker",
            ),
            user: "worker".into(),
            principal: "Kworker".to_string(),
            master_key: "Kmaster".to_string(),
            credentials: vec![],
            stamps: vec![],
            args: vec![],
        }
    }

    #[test]
    fn faulty_transport_drops_then_recovers() {
        let t = FaultyTransport::new(EchoTransport);
        t.drop_next(2);
        assert!(matches!(
            t.call(&request(1), Duration::from_secs(1)),
            Err(TransportError::Closed(_))
        ));
        assert!(matches!(
            t.call(&request(2), Duration::from_secs(1)),
            Err(TransportError::Closed(_))
        ));
        assert!(t.call(&request(3), Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn killed_transport_stays_dead() {
        let t = FaultyTransport::new(EchoTransport);
        assert!(t.call(&request(1), Duration::from_secs(1)).is_ok());
        t.kill();
        for op in 2..5 {
            assert!(matches!(
                t.call(&request(op), Duration::from_secs(1)),
                Err(TransportError::Unreachable(_))
            ));
        }
    }

    #[test]
    fn delay_beyond_deadline_times_out() {
        let t = FaultyTransport::new(EchoTransport);
        t.set_delay(Duration::from_millis(20));
        let err = t.call(&request(1), Duration::from_millis(5)).unwrap_err();
        assert!(err.is_timeout());
        // A deadline longer than the delay still succeeds.
        assert!(t.call(&request(2), Duration::from_millis(200)).is_ok());
    }

    #[test]
    fn injected_delay_is_charged_at_most_the_deadline() {
        // A huge injected delay must cost the caller only its timeout:
        // the old behaviour slept the full delay before reporting.
        let t = FaultyTransport::new(EchoTransport);
        t.set_delay(Duration::from_secs(30));
        let started = std::time::Instant::now();
        let err = t.call(&request(1), Duration::from_millis(20)).unwrap_err();
        assert!(err.is_timeout());
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "slept {:?}, should be ~the 20ms deadline",
            started.elapsed()
        );
    }

    #[test]
    fn revive_restores_a_killed_transport() {
        let t = FaultyTransport::new(EchoTransport);
        t.kill();
        assert!(t.call(&request(1), Duration::from_secs(1)).is_err());
        t.revive();
        assert!(!t.is_killed());
        assert!(t.call(&request(2), Duration::from_secs(1)).is_ok());
        assert_eq!(t.calls(), 2);
    }

    #[test]
    fn transport_errors_map_to_exec_errors() {
        use crate::protocol::ExecErrorKind;
        let timeout = TransportError::Timeout(Duration::from_secs(1)).to_exec_error();
        assert_eq!(timeout.kind, ExecErrorKind::Timeout);
        assert!(timeout.retryable);
        let lost = TransportError::Closed("x".into()).to_exec_error();
        assert_eq!(lost.kind, ExecErrorKind::Transport);
        assert!(lost.retryable);
        let proto = TransportError::Protocol("x".into()).to_exec_error();
        assert_eq!(proto.kind, ExecErrorKind::Protocol);
        assert!(!proto.retryable);
    }
}
