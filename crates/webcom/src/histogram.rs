//! Log-bucketed latency histogram (HDR-style) for the dispatch path.
//!
//! The master previously exposed only counters, which answer "how many"
//! but not "how slow": a p999 regression hides completely behind a
//! stable mean. [`LatencyHistogram`] records each dispatch latency into
//! one of a fixed set of logarithmic buckets — 16 sub-buckets per
//! power-of-two octave, i.e. ≤ 6.25 % relative error — using only
//! relaxed atomic increments, so recording costs a few nanoseconds and
//! never takes a lock on the hot path. [`LatencySnapshot`] is the
//! immutable, mergeable read-side view with percentile accessors; the
//! load harness merges per-shard snapshots into fleet-wide p50/p99/p999.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Values below 2^LINEAR_BITS ns are recorded exactly (one bucket per
/// nanosecond); above that, each octave splits into `SUB_BUCKETS`
/// log-spaced buckets.
const LINEAR_BITS: u32 = 4;
const SUB_BUCKETS: u64 = 16;
/// Octaves 4..=47 (16 ns .. ~2.3 min) after the linear region; samples
/// beyond the top octave clamp into the last bucket.
const OCTAVES: u32 = 44;
const BUCKETS: usize = (1 << LINEAR_BITS) + (OCTAVES as usize) * (SUB_BUCKETS as usize);

fn bucket_index(ns: u64) -> usize {
    if ns < (1 << LINEAR_BITS) {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros(); // ns in [2^octave, 2^(octave+1))
    let octave = octave.min(LINEAR_BITS + OCTAVES - 1);
    let sub = (ns >> (octave - LINEAR_BITS)) & (SUB_BUCKETS - 1);
    (1 << LINEAR_BITS) + ((octave - LINEAR_BITS) as usize) * SUB_BUCKETS as usize + sub as usize
}

/// Lower bound (ns) of the values a bucket holds — the value reported
/// for any percentile that lands in it.
fn bucket_floor(index: usize) -> u64 {
    if index < (1 << LINEAR_BITS) {
        return index as u64;
    }
    let rest = index - (1 << LINEAR_BITS);
    let octave = LINEAR_BITS + (rest as u32) / (SUB_BUCKETS as u32);
    let sub = (rest as u64) & (SUB_BUCKETS - 1);
    (1u64 << octave) + (sub << (octave - LINEAR_BITS))
}

/// Concurrent log-bucketed histogram of operation latencies.
///
/// Write side: [`LatencyHistogram::record`], lock-free. Read side:
/// [`LatencyHistogram::snapshot`], which is O(buckets) and may run
/// concurrently with writers (it sees some consistent-enough interleaving;
/// buckets are monotone counters so percentiles are never fabricated).
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `[AtomicU64::new(0); N]` needs Copy; build through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = v.into_boxed_slice().try_into().unwrap();
        LatencyHistogram {
            buckets,
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> LatencySnapshot {
        let mut counts = vec![0u64; BUCKETS];
        let mut total = 0u64;
        for (c, b) in counts.iter_mut().zip(self.buckets.iter()) {
            *c = b.load(Ordering::Relaxed);
            total += *c;
        }
        // Trim trailing empty buckets: an untouched histogram snapshots
        // to exactly `LatencySnapshot::default()`, which keeps
        // `MasterStats`' derived `PartialEq` meaningful.
        let last = counts.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
        counts.truncate(last);
        LatencySnapshot {
            counts,
            // Derive the count from the buckets actually read so the
            // snapshot is internally consistent under concurrent writes.
            count: total,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Immutable view of a [`LatencyHistogram`]: percentiles, mean, max.
/// Empty (`Default`) snapshots compare equal, so this can sit inside
/// `MasterStats` without breaking its `PartialEq`-based tests.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl LatencySnapshot {
    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Latency at quantile `q` in [0, 1] (0.5 = median). Returns zero
    /// for an empty snapshot. The answer is the lower bound of the
    /// bucket containing the q-th sample (≤ 6.25 % below the true
    /// value).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q=1.0 maps to the last.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(bucket_floor(i));
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency.
    pub fn p999(&self) -> Duration {
        self.quantile(0.999)
    }

    /// Arithmetic mean latency.
    pub fn mean(&self) -> Duration {
        match self.sum_ns.checked_div(self.count) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Folds another snapshot into this one (per-shard → fleet-wide).
    pub fn merge(&mut self, other: &LatencySnapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// `p50/p99/p999 max` one-liner for CLI output.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "no samples".to_string();
        }
        format!(
            "p50 {:?}  p99 {:?}  p999 {:?}  max {:?}  (n={})",
            self.p50(),
            self.p99(),
            self.p999(),
            self.max(),
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_consistent() {
        // Every representative value must land back in its own bucket,
        // and floors must be strictly increasing.
        let mut prev = None;
        for i in 0..BUCKETS {
            let floor = bucket_floor(i);
            assert_eq!(bucket_index(floor), i, "floor of bucket {i} maps back");
            if let Some(p) = prev {
                assert!(floor > p, "bucket {i} floor {floor} not > {p}");
            }
            prev = Some(floor);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for ns in [1u64, 17, 100, 999, 12_345, 1_000_000, 123_456_789] {
            let floor = bucket_floor(bucket_index(ns));
            assert!(floor <= ns);
            assert!(
                (ns - floor) as f64 <= ns as f64 / 16.0 + 1.0,
                "ns={ns} floor={floor}"
            );
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = LatencyHistogram::new();
        // 1000 samples: 990 at 100µs, 9 at 1ms, 1 at 100ms.
        for _ in 0..990 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..9 {
            h.record(Duration::from_millis(1));
        }
        h.record(Duration::from_millis(100));
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        let near = |d: Duration, us: u64| {
            let lo = Duration::from_micros(us).mul_f64(0.9375);
            d >= lo && d <= Duration::from_micros(us)
        };
        assert!(near(s.p50(), 100), "p50={:?}", s.p50());
        assert!(near(s.p99(), 100), "p99={:?}", s.p99());
        assert!(near(s.p999(), 1000), "p999={:?}", s.p999());
        assert!(near(s.quantile(1.0), 100_000), "max q={:?}", s.quantile(1.0));
        assert_eq!(s.max(), Duration::from_millis(100));
    }

    #[test]
    fn empty_snapshot_is_zeroes_and_equals_default() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.p50(), Duration::ZERO);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.summary(), "no samples");
        // MasterStats derives PartialEq; a fresh histogram snapshot must
        // equal the Default one or every stats assertion would break.
        assert_eq!(s.count, LatencySnapshot::default().count);
        assert_eq!(s.quantile(0.5), LatencySnapshot::default().quantile(0.5));
    }

    #[test]
    fn merge_combines_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for _ in 0..50 {
            a.record(Duration::from_micros(10));
            b.record(Duration::from_micros(1000));
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 100);
        assert!(m.p50() <= Duration::from_micros(10));
        assert!(m.quantile(0.99) >= Duration::from_micros(900));
        // Merging into an empty default works too.
        let mut e = LatencySnapshot::default();
        e.merge(&a.snapshot());
        assert_eq!(e.count(), 50);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let mut joins = Vec::new();
        for t in 0..4 {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    h.record(Duration::from_nanos(100 + t * 7 + i));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 4000);
    }
}
