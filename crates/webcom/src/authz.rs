//! WebCom's trust-management mediation: turning scheduling decisions
//! into KeyNote queries (paper §4, Figure 3).
//!
//! A scheduling action is described by the attributes the paper lists —
//! `Domain`, `Role`, `ObjectType`, `Permission` — plus
//! `app_domain = "WebCom"` and a `component` identifier; the
//! [`TrustManager`] holds the environment's policy and credential store
//! and answers whether a principal may perform the action.

use crate::cache::{decision_fingerprint, CacheKey, CacheStats, DecisionCache};
use hetsec_keynote::ast::Assertion;
use hetsec_keynote::eval::ActionAttributes;
use hetsec_keynote::session::{ActionQuery, KeyNoteSession, SessionError};
use hetsec_middleware::component::ComponentRef;
use hetsec_rbac::{Domain, Permission, Role};
use hetsec_translate::APP_DOMAIN;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// A mediated WebCom action: schedule/execute a component under a
/// (domain, role) pair.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledAction {
    /// The component to execute.
    pub component: ComponentRef,
    /// The domain the execution is pinned to.
    pub domain: Domain,
    /// The role the execution is pinned to.
    pub role: Role,
    /// The permission the component requires.
    pub permission: Permission,
}

/// Every action-attribute name the WebCom adapters set on a KeyNote
/// environment: [`ScheduledAction::attributes`] plus the key-commit
/// adapter's `oper`. Static analyzers use this as the vocabulary an
/// assertion may reference without tripping an unknown-attribute lint.
pub const ADAPTER_ATTRIBUTES: &[&str] = &[
    "app_domain",
    "Domain",
    "Role",
    "ObjectType",
    "Permission",
    "component",
    "middleware",
    "oper",
];

impl ScheduledAction {
    /// Builds an action for a component under a (domain, role), using
    /// the component's own required permission.
    pub fn new(component: ComponentRef, domain: impl Into<Domain>, role: impl Into<Role>) -> Self {
        let permission = component.required_permission();
        ScheduledAction {
            component,
            domain: domain.into(),
            role: role.into(),
            permission,
        }
    }

    /// The KeyNote action attribute set for this action.
    pub fn attributes(&self) -> ActionAttributes {
        ActionAttributes::new()
            .with("app_domain", APP_DOMAIN)
            .with("Domain", self.domain.as_str())
            .with("Role", self.role.as_str())
            .with("ObjectType", self.component.object_type.as_str())
            .with("Permission", self.permission.as_str())
            .with("component", self.component.identifier())
            .with("middleware", self.component.kind.to_string())
    }
}

/// Default number of decisions a trust manager memoises.
const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// One authorization question, built fluently: *which principal(s)*,
/// *for what action or attributes*, *supported by which request-scoped
/// credentials*. This is the single entry point into
/// [`TrustManager::decide`] — it replaces the four overlapping
/// `authorizes`/`query` variants the trust manager used to expose.
///
/// ```
/// # use hetsec_webcom::{AuthzRequest, ScheduledAction, TrustManager};
/// # use hetsec_middleware::component::ComponentRef;
/// # use hetsec_middleware::naming::MiddlewareKind;
/// let tm = TrustManager::permissive();
/// tm.add_policy("Authorizer: POLICY\nLicensees: \"Ka\"\nConditions: app_domain==\"WebCom\";\n")
///     .unwrap();
/// let action = ScheduledAction::new(
///     ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
///     "Dom",
///     "Worker",
/// );
/// assert!(tm.decide(&AuthzRequest::principal("Ka").action(&action)));
/// assert!(!tm.decide(&AuthzRequest::principal("Kb").action(&action)));
/// ```
pub struct AuthzRequest<'a> {
    principals: Vec<&'a str>,
    attrs: Cow<'a, ActionAttributes>,
    credentials: &'a [Assertion],
}

impl<'a> AuthzRequest<'a> {
    /// A request asked on behalf of one principal.
    pub fn principal(principal: &'a str) -> Self {
        AuthzRequest {
            principals: vec![principal],
            attrs: Cow::Owned(ActionAttributes::new()),
            credentials: &[],
        }
    }

    /// A request asked on behalf of several principals at once (KeyNote
    /// evaluates the set jointly, e.g. for k-of threshold licensees).
    pub fn principals(principals: &[&'a str]) -> Self {
        AuthzRequest {
            principals: principals.to_vec(),
            attrs: Cow::Owned(ActionAttributes::new()),
            credentials: &[],
        }
    }

    /// Asks about a scheduled action (sets the full WebCom attribute
    /// set: `app_domain`, `Domain`, `Role`, `ObjectType`, `Permission`,
    /// `component`, `middleware`).
    pub fn action(mut self, action: &ScheduledAction) -> Self {
        self.attrs = Cow::Owned(action.attributes());
        self
    }

    /// Asks about an arbitrary attribute set (escape hatch for callers
    /// that build their own attributes, e.g. KeyCom's admin checks).
    pub fn attributes(mut self, attrs: ActionAttributes) -> Self {
        self.attrs = Cow::Owned(attrs);
        self
    }

    /// Borrows an attribute set the caller keeps alive. Batch producers
    /// should prefer this: requests sharing one borrowed attribute set
    /// are recognised as coincident by [`TrustManager::decide_batch`]
    /// (one fingerprint, one fixpoint pass) where owned copies are not.
    pub fn attributes_ref(mut self, attrs: &'a ActionAttributes) -> Self {
        self.attrs = Cow::Borrowed(attrs);
        self
    }

    /// Attaches request-scoped credentials: they are vetted like stored
    /// credentials and support *this* decision, but are never persisted,
    /// so authority presented with one request cannot leak into later
    /// ones.
    pub fn credentials(mut self, credentials: &'a [Assertion]) -> Self {
        self.credentials = credentials;
        self
    }

    /// The comma-joined principal list (cache key component).
    fn principal_key(&self) -> String {
        self.principals.join(",")
    }

    /// True when `other` presents the same attribute set (by address —
    /// only borrowed sets can match) and the same credential slice, so
    /// its fingerprint can be reused without rehashing.
    fn shares_inputs(&self, other: &AuthzRequest<'_>) -> bool {
        let same_attrs = match (&self.attrs, &other.attrs) {
            (Cow::Borrowed(a), Cow::Borrowed(b)) => std::ptr::eq(*a, *b),
            _ => false,
        };
        same_attrs
            && std::ptr::eq(self.credentials.as_ptr(), other.credentials.as_ptr())
            && self.credentials.len() == other.credentials.len()
    }
}

/// The per-environment trust-management state: a KeyNote session behind
/// a lock, mutated as credentials arrive and queried on every
/// scheduling decision. Decisions are memoised in an epoch-invalidated
/// [`DecisionCache`]: a cached answer is only served while the session
/// epoch it was computed under is still current, so any policy,
/// credential or revocation change takes effect on the very next query.
pub struct TrustManager {
    session: RwLock<KeyNoteSession>,
    cache: DecisionCache,
}

impl TrustManager {
    /// A trust manager accepting only signed credentials.
    pub fn strict() -> Self {
        TrustManager {
            session: RwLock::new(KeyNoteSession::new()),
            cache: DecisionCache::new(DEFAULT_CACHE_CAPACITY),
        }
    }

    /// A trust manager accepting symbolic/unsigned credentials (used by
    /// the worked examples that mirror the paper's figures).
    pub fn permissive() -> Self {
        TrustManager {
            session: RwLock::new(KeyNoteSession::permissive()),
            cache: DecisionCache::new(DEFAULT_CACHE_CAPACITY),
        }
    }

    /// Installs locally-trusted policy text.
    pub fn add_policy(&self, text: &str) -> Result<usize, SessionError> {
        self.session.write().add_policy(text)
    }

    /// Installs a pre-built policy assertion.
    pub fn add_policy_assertion(&self, assertion: Assertion) -> Result<(), SessionError> {
        self.session.write().add_policy_assertion(assertion)
    }

    /// Adds a credential (verified according to the session mode).
    pub fn add_credential(&self, assertion: Assertion) -> Result<(), SessionError> {
        self.session.write().add_credential_parsed(assertion)
    }

    /// Adds credentials from text.
    pub fn add_credentials_text(&self, text: &str) -> Result<usize, SessionError> {
        self.session.write().add_credentials(text)
    }

    /// Answers one [`AuthzRequest`]: a batch of one through
    /// [`decide_batch`](Self::decide_batch).
    pub fn decide(&self, request: &AuthzRequest<'_>) -> bool {
        self.decide_batch(std::slice::from_ref(request))[0]
    }

    /// Answers a burst of [`AuthzRequest`]s in one run. The session
    /// read lock is taken once and held across the epoch read, all
    /// evaluations and the cache refill, so a concurrent mutation can
    /// never produce an entry that outlives it; each cache shard's lock
    /// is taken at most once for the lookups and once for the inserts.
    /// A request that is *fully* coincident with its predecessor (same
    /// principals, same borrowed attribute set, same credential slice)
    /// shares the predecessor's representative outright — one key, one
    /// cache probe, one verdict for the whole run; a request sharing
    /// only inputs reuses the fingerprint hash. Cache misses are sorted
    /// by (principal, fingerprint) before evaluation so coincident
    /// requests sit adjacent and collapse into a single fixpoint pass
    /// inside the session's batch evaluator. Results are positionally
    /// aligned with `requests` and identical to calling
    /// [`decide`](Self::decide) per request.
    pub fn decide_batch(&self, requests: &[AuthzRequest<'_>]) -> Vec<bool> {
        // rep[i] = dense index of the representative request whose key
        // (and therefore verdict) request i shares.
        let mut rep: Vec<usize> = Vec::with_capacity(requests.len());
        let mut keys: Vec<CacheKey> = Vec::new();
        let mut rep_req: Vec<usize> = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            let fingerprint = if i > 0 && r.shares_inputs(&requests[i - 1]) {
                let prev = rep[i - 1];
                if r.principals == requests[i - 1].principals {
                    rep.push(prev);
                    continue;
                }
                keys[prev].fingerprint
            } else {
                decision_fingerprint(&r.attrs, r.credentials, "")
            };
            keys.push(CacheKey {
                principal: r.principal_key(),
                fingerprint,
            });
            rep_req.push(i);
            rep.push(keys.len() - 1);
        }
        let session = self.session.read();
        let epoch = session.epoch();
        let cached = self.cache.get_many(&keys, epoch);
        let mut verdicts: Vec<bool> = cached.iter().map(|c| c.unwrap_or(false)).collect();
        let mut miss_idx: Vec<usize> = cached
            .iter()
            .enumerate()
            .filter_map(|(k, c)| c.is_none().then_some(k))
            .collect();
        if !miss_idx.is_empty() {
            miss_idx.sort_by(|&a, &b| {
                keys[a]
                    .principal
                    .cmp(&keys[b].principal)
                    .then(keys[a].fingerprint.cmp(&keys[b].fingerprint))
            });
            let queries: Vec<ActionQuery<'_>> = miss_idx
                .iter()
                .map(|&k| {
                    let r = &requests[rep_req[k]];
                    ActionQuery::principals(&r.principals)
                        .attributes(&r.attrs)
                        .extra(r.credentials)
                })
                .collect();
            let results = session.evaluate_batch(&queries);
            let mut inserts: Vec<(CacheKey, bool)> = Vec::with_capacity(miss_idx.len());
            for (&k, result) in miss_idx.iter().zip(results) {
                let permitted = result.is_authorized();
                verdicts[k] = permitted;
                inserts.push((keys[k].clone(), permitted));
            }
            self.cache.insert_many(inserts, epoch);
        }
        rep.iter().map(|&k| verdicts[k]).collect()
    }

    /// The underlying session's mutation epoch: rises whenever policies,
    /// credentials, the value set, or revocations change.
    pub fn epoch(&self) -> u64 {
        self.session.read().epoch()
    }

    /// Decision-cache counters (hits, misses, epoch invalidations,
    /// evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Signature-verdict memo counters from the underlying session's
    /// verified-credential cache.
    pub fn verify_cache_stats(&self) -> hetsec_keynote::VerifyCacheStats {
        self.session.read().verify_cache_stats()
    }

    /// The underlying session's signature-verdict memo cache. The stamp
    /// verifier admits attested verdicts through this handle; the cache
    /// has interior mutability, so no session write lock is involved.
    pub fn verify_cache(&self) -> std::sync::Arc<hetsec_keynote::VerifyCache> {
        std::sync::Arc::clone(self.session.read().verify_cache())
    }

    /// Points the underlying session at a shared verify cache, so every
    /// trust manager on a node can be fed by one stamp admission.
    /// Verdicts are immutable facts about credential bytes — sharing
    /// never changes decisions and does not move the epoch.
    pub fn share_verify_cache(&self, cache: std::sync::Arc<hetsec_keynote::VerifyCache>) {
        self.session.write().share_verify_cache(cache);
    }

    /// Assertion-compile diagnostics from the underlying session
    /// (e.g. malformed `~=` pattern literals).
    pub fn compile_notes(&self) -> Vec<String> {
        self.session.read().compile_notes().to_vec()
    }

    /// Number of stored credentials (diagnostic).
    pub fn credential_count(&self) -> usize {
        self.session.read().credentials().len()
    }

    /// Revokes a key for all subsequent mediation decisions.
    pub fn revoke_key(&self, key_text: impl Into<String>) {
        self.session.write().revoke_key(key_text);
    }

    /// Reinstates a previously revoked key.
    pub fn reinstate_key(&self, key_text: &str) -> bool {
        self.session.write().reinstate_key(key_text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_middleware::naming::MiddlewareKind;
    use hetsec_rbac::fixtures::salaries_policy;
    use hetsec_translate::{encode_policy, SymbolicDirectory};

    fn component() -> ComponentRef {
        ComponentRef::new(MiddlewareKind::Ejb, "Sales", "SalariesDB", "read")
    }

    fn manager_with_salaries() -> TrustManager {
        let tm = TrustManager::permissive();
        let dir = SymbolicDirectory::default();
        for a in encode_policy(&salaries_policy(), "KWebCom", &dir) {
            tm.add_policy_assertion(a).unwrap();
        }
        tm
    }

    #[test]
    fn action_attributes_shape() {
        let a = ScheduledAction::new(component(), "Sales", "Manager");
        let attrs = a.attributes();
        assert_eq!(attrs.get("app_domain"), "WebCom");
        assert_eq!(attrs.get("Domain"), "Sales");
        assert_eq!(attrs.get("Role"), "Manager");
        assert_eq!(attrs.get("ObjectType"), "SalariesDB");
        assert_eq!(attrs.get("Permission"), "read");
        assert_eq!(attrs.get("middleware"), "EJB");
        assert!(attrs.get("component").starts_with("ejb://"));
    }

    fn allowed(tm: &TrustManager, principal: &str, action: &ScheduledAction) -> bool {
        tm.decide(&AuthzRequest::principal(principal).action(action))
    }

    #[test]
    fn decide_follows_encoded_policy() {
        let tm = manager_with_salaries();
        let action = ScheduledAction::new(component(), "Sales", "Manager");
        assert!(allowed(&tm, "Kclaire", &action));
        assert!(!allowed(&tm, "Kdave", &action));
        // write is not granted to Sales/Manager.
        let write = ScheduledAction {
            permission: Permission::new("write"),
            ..action
        };
        assert!(!allowed(&tm, "Kclaire", &write));
    }

    #[test]
    fn delegation_credentials_extend_authorisation() {
        let tm = manager_with_salaries();
        let dir = SymbolicDirectory::default();
        let cred = hetsec_translate::delegate_role(
            &"Claire".into(),
            &"Fred".into(),
            &hetsec_rbac::DomainRole::new("Sales", "Manager"),
            &dir,
        );
        let action = ScheduledAction::new(component(), "Sales", "Manager");
        assert!(!allowed(&tm, "Kfred", &action));
        tm.add_credential(cred).unwrap();
        // 5 membership credentials from the encoded policy + the delegation.
        assert_eq!(tm.credential_count(), 6);
        assert!(allowed(&tm, "Kfred", &action));
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let tm = manager_with_salaries();
        let action = ScheduledAction::new(component(), "Sales", "Manager");
        assert!(allowed(&tm, "Kclaire", &action));
        let after_first = tm.cache_stats();
        assert_eq!(after_first.hits, 0);
        for _ in 0..10 {
            assert!(allowed(&tm, "Kclaire", &action));
        }
        let stats = tm.cache_stats();
        assert_eq!(stats.hits, 10);
        assert_eq!(stats.misses, after_first.misses);
    }

    #[test]
    fn revocation_invalidates_cached_decisions_immediately() {
        let tm = manager_with_salaries();
        let action = ScheduledAction::new(component(), "Sales", "Manager");
        assert!(allowed(&tm, "Kclaire", &action));
        assert!(allowed(&tm, "Kclaire", &action)); // cached grant
        let epoch_before = tm.epoch();
        tm.revoke_key("Kclaire");
        assert!(tm.epoch() > epoch_before);
        // The very next decision reflects the revocation.
        assert!(!allowed(&tm, "Kclaire", &action));
        assert!(tm.cache_stats().invalidations >= 1);
        tm.reinstate_key("Kclaire");
        assert!(allowed(&tm, "Kclaire", &action));
    }

    #[test]
    fn presented_credentials_do_not_persist() {
        let tm = manager_with_salaries();
        let dir = SymbolicDirectory::default();
        let cred = hetsec_translate::delegate_role(
            &"Claire".into(),
            &"Fred".into(),
            &hetsec_rbac::DomainRole::new("Sales", "Manager"),
            &dir,
        );
        let action = ScheduledAction::new(component(), "Sales", "Manager");
        let count_before = tm.credential_count();
        let with_cred = |tm: &TrustManager| {
            tm.decide(
                &AuthzRequest::principal("Kfred")
                    .action(&action)
                    .credentials(std::slice::from_ref(&cred)),
            )
        };
        assert!(with_cred(&tm));
        // Nothing was stored: the count and the epoch are unchanged, and
        // a request without the credential is denied.
        assert_eq!(tm.credential_count(), count_before);
        assert!(!allowed(&tm, "Kfred", &action));
        // Presenting again still works (served from cache or not).
        assert!(with_cred(&tm));
    }

    #[test]
    fn threshold_requests_take_multiple_principals() {
        let tm = TrustManager::permissive();
        tm.add_policy(
            "Authorizer: POLICY\nLicensees: 2-of(\"Ka\", \"Kb\", \"Kc\")\n\
             Conditions: app_domain==\"WebCom\";\n",
        )
        .unwrap();
        let action = ScheduledAction::new(component(), "Sales", "Manager");
        assert!(tm.decide(&AuthzRequest::principals(&["Ka", "Kb"]).action(&action)));
        assert!(!tm.decide(&AuthzRequest::principal("Ka").action(&action)));
    }

    #[test]
    fn strict_manager_rejects_unsigned() {
        let tm = TrustManager::strict();
        let a = hetsec_keynote::parser::parse_assertion(
            "Authorizer: \"Kx\"\nLicensees: \"Ky\"\n",
        )
        .unwrap();
        assert!(tm.add_credential(a).is_err());
    }
}
