//! WebCom's trust-management mediation: turning scheduling decisions
//! into KeyNote queries (paper §4, Figure 3).
//!
//! A scheduling action is described by the attributes the paper lists —
//! `Domain`, `Role`, `ObjectType`, `Permission` — plus
//! `app_domain = "WebCom"` and a `component` identifier; the
//! [`TrustManager`] holds the environment's policy and credential store
//! and answers whether a principal may perform the action.

use hetsec_keynote::ast::Assertion;
use hetsec_keynote::eval::ActionAttributes;
use hetsec_keynote::session::{KeyNoteSession, SessionError};
use hetsec_middleware::component::ComponentRef;
use hetsec_rbac::{Domain, Permission, Role};
use hetsec_translate::APP_DOMAIN;
use parking_lot::RwLock;

/// A mediated WebCom action: schedule/execute a component under a
/// (domain, role) pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledAction {
    /// The component to execute.
    pub component: ComponentRef,
    /// The domain the execution is pinned to.
    pub domain: Domain,
    /// The role the execution is pinned to.
    pub role: Role,
    /// The permission the component requires.
    pub permission: Permission,
}

impl ScheduledAction {
    /// Builds an action for a component under a (domain, role), using
    /// the component's own required permission.
    pub fn new(component: ComponentRef, domain: impl Into<Domain>, role: impl Into<Role>) -> Self {
        let permission = component.required_permission();
        ScheduledAction {
            component,
            domain: domain.into(),
            role: role.into(),
            permission,
        }
    }

    /// The KeyNote action attribute set for this action.
    pub fn attributes(&self) -> ActionAttributes {
        ActionAttributes::new()
            .with("app_domain", APP_DOMAIN)
            .with("Domain", self.domain.as_str())
            .with("Role", self.role.as_str())
            .with("ObjectType", self.component.object_type.as_str())
            .with("Permission", self.permission.as_str())
            .with("component", self.component.identifier())
            .with("middleware", self.component.kind.to_string())
    }
}

/// The per-environment trust-management state: a KeyNote session behind
/// a lock, mutated as credentials arrive and queried on every
/// scheduling decision.
pub struct TrustManager {
    session: RwLock<KeyNoteSession>,
}

impl TrustManager {
    /// A trust manager accepting only signed credentials.
    pub fn strict() -> Self {
        TrustManager {
            session: RwLock::new(KeyNoteSession::new()),
        }
    }

    /// A trust manager accepting symbolic/unsigned credentials (used by
    /// the worked examples that mirror the paper's figures).
    pub fn permissive() -> Self {
        TrustManager {
            session: RwLock::new(KeyNoteSession::permissive()),
        }
    }

    /// Installs locally-trusted policy text.
    pub fn add_policy(&self, text: &str) -> Result<usize, SessionError> {
        self.session.write().add_policy(text)
    }

    /// Installs a pre-built policy assertion.
    pub fn add_policy_assertion(&self, assertion: Assertion) -> Result<(), SessionError> {
        self.session.write().add_policy_assertion(assertion)
    }

    /// Adds a credential (verified according to the session mode).
    pub fn add_credential(&self, assertion: Assertion) -> Result<(), SessionError> {
        self.session.write().add_credential_parsed(assertion)
    }

    /// Adds credentials from text.
    pub fn add_credentials_text(&self, text: &str) -> Result<usize, SessionError> {
        self.session.write().add_credentials(text)
    }

    /// Is `principal` authorised for `action`?
    pub fn authorizes(&self, principal: &str, action: &ScheduledAction) -> bool {
        self.query(&[principal], &action.attributes())
    }

    /// Raw query against arbitrary attributes.
    pub fn query(&self, principals: &[&str], attrs: &ActionAttributes) -> bool {
        self.session
            .read()
            .query_action(principals, attrs)
            .is_authorized()
    }

    /// Number of stored credentials (diagnostic).
    pub fn credential_count(&self) -> usize {
        self.session.read().credentials().len()
    }

    /// Revokes a key for all subsequent mediation decisions.
    pub fn revoke_key(&self, key_text: impl Into<String>) {
        self.session.write().revoke_key(key_text);
    }

    /// Reinstates a previously revoked key.
    pub fn reinstate_key(&self, key_text: &str) -> bool {
        self.session.write().reinstate_key(key_text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_middleware::naming::MiddlewareKind;
    use hetsec_rbac::fixtures::salaries_policy;
    use hetsec_translate::{encode_policy, SymbolicDirectory};

    fn component() -> ComponentRef {
        ComponentRef::new(MiddlewareKind::Ejb, "Sales", "SalariesDB", "read")
    }

    fn manager_with_salaries() -> TrustManager {
        let tm = TrustManager::permissive();
        let dir = SymbolicDirectory::default();
        for a in encode_policy(&salaries_policy(), "KWebCom", &dir) {
            tm.add_policy_assertion(a).unwrap();
        }
        tm
    }

    #[test]
    fn action_attributes_shape() {
        let a = ScheduledAction::new(component(), "Sales", "Manager");
        let attrs = a.attributes();
        assert_eq!(attrs.get("app_domain"), "WebCom");
        assert_eq!(attrs.get("Domain"), "Sales");
        assert_eq!(attrs.get("Role"), "Manager");
        assert_eq!(attrs.get("ObjectType"), "SalariesDB");
        assert_eq!(attrs.get("Permission"), "read");
        assert_eq!(attrs.get("middleware"), "EJB");
        assert!(attrs.get("component").starts_with("ejb://"));
    }

    #[test]
    fn authorizes_follows_encoded_policy() {
        let tm = manager_with_salaries();
        let action = ScheduledAction::new(component(), "Sales", "Manager");
        assert!(tm.authorizes("Kclaire", &action));
        assert!(!tm.authorizes("Kdave", &action));
        // write is not granted to Sales/Manager.
        let write = ScheduledAction {
            permission: Permission::new("write"),
            ..action
        };
        assert!(!tm.authorizes("Kclaire", &write));
    }

    #[test]
    fn delegation_credentials_extend_authorisation() {
        let tm = manager_with_salaries();
        let dir = SymbolicDirectory::default();
        let cred = hetsec_translate::delegate_role(
            &"Claire".into(),
            &"Fred".into(),
            &hetsec_rbac::DomainRole::new("Sales", "Manager"),
            &dir,
        );
        let action = ScheduledAction::new(component(), "Sales", "Manager");
        assert!(!tm.authorizes("Kfred", &action));
        tm.add_credential(cred).unwrap();
        // 5 membership credentials from the encoded policy + the delegation.
        assert_eq!(tm.credential_count(), 6);
        assert!(tm.authorizes("Kfred", &action));
    }

    #[test]
    fn strict_manager_rejects_unsigned() {
        let tm = TrustManager::strict();
        let a = hetsec_keynote::parser::parse_assertion(
            "Authorizer: \"Kx\"\nLicensees: \"Ky\"\n",
        )
        .unwrap();
        assert!(tm.add_credential(a).is_err());
    }
}
