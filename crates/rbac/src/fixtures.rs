//! Shared policy fixtures, most importantly the paper's Figure 1.

use crate::ids::ObjectType;
use crate::policy::{PermissionGrant, RbacPolicy, RoleAssignment};

/// The object type of the paper's running example.
pub fn salaries_db() -> ObjectType {
    ObjectType::new("SalariesDB")
}

/// The paper's Figure 1: the RBAC relations for a salaries database.
///
/// ```text
/// HasPermission:                      UserRole:
///   Finance Clerk    write              Finance Clerk    Alice
///   Finance Manager  read/write         Finance Manager  Bob
///   Sales   Manager  read               Sales   Manager  Claire
///   Sales   Assistant no access         Sales   Assistant Dave
///                                       Sales   Manager  Elaine
/// ```
pub fn salaries_policy() -> RbacPolicy {
    let mut p = RbacPolicy::new();
    let db = "SalariesDB";
    p.grant(PermissionGrant::new("Finance", "Clerk", db, "write"));
    p.grant(PermissionGrant::new("Finance", "Manager", db, "read"));
    p.grant(PermissionGrant::new("Finance", "Manager", db, "write"));
    p.grant(PermissionGrant::new("Sales", "Manager", db, "read"));
    // Sales/Assistant has "no access": no HasPermission rows.
    p.assign(RoleAssignment::new("Alice", "Finance", "Clerk"));
    p.assign(RoleAssignment::new("Bob", "Finance", "Manager"));
    p.assign(RoleAssignment::new("Claire", "Sales", "Manager"));
    p.assign(RoleAssignment::new("Dave", "Sales", "Assistant"));
    p.assign(RoleAssignment::new("Elaine", "Sales", "Manager"));
    p
}

/// A synthetic policy generator for tests and benches: `domains` domains
/// x `roles` roles x `perms` permissions on one object type per domain,
/// plus `users_per_role` users in every role. Deterministic.
pub fn synthetic_policy(
    domains: usize,
    roles: usize,
    perms: usize,
    users_per_role: usize,
) -> RbacPolicy {
    let mut p = RbacPolicy::new();
    for d in 0..domains {
        let domain = format!("Dom{d}");
        let object = format!("Obj{d}");
        for r in 0..roles {
            let role = format!("Role{r}");
            for q in 0..perms {
                p.grant(PermissionGrant::new(
                    domain.as_str(),
                    role.as_str(),
                    object.as_str(),
                    format!("perm{q}"),
                ));
            }
            for u in 0..users_per_role {
                p.assign(RoleAssignment::new(
                    format!("user-{d}-{r}-{u}"),
                    domain.as_str(),
                    role.as_str(),
                ));
            }
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn salaries_policy_matches_figure_1_sizes() {
        let p = salaries_policy();
        assert_eq!(p.grant_count(), 4);
        assert_eq!(p.assignment_count(), 5);
        assert_eq!(p.domains().len(), 2);
    }

    #[test]
    fn synthetic_policy_sizes() {
        let p = synthetic_policy(3, 4, 2, 5);
        assert_eq!(p.grant_count(), 3 * 4 * 2);
        assert_eq!(p.assignment_count(), 3 * 4 * 5);
        assert_eq!(p.domains().len(), 3);
        assert_eq!(p.object_types().len(), 3);
    }

    #[test]
    fn synthetic_policy_is_deterministic() {
        assert_eq!(synthetic_policy(2, 2, 2, 2), synthetic_policy(2, 2, 2, 2));
    }
}
