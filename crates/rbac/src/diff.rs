//! Policy differencing — the substrate of the paper's *Policy
//! Maintenance* characteristic (§4.4).
//!
//! Consistency across heterogeneous middlewares is checked by exporting
//! each middleware's native policy to the common RBAC form and diffing
//! it against the unified (trust-management) policy.

use crate::policy::{PermissionGrant, RbacPolicy, RoleAssignment};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The difference between two policies (`from` -> `to`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyDiff {
    /// Grants present in `to` but not `from`.
    pub added_grants: Vec<PermissionGrant>,
    /// Grants present in `from` but not `to`.
    pub removed_grants: Vec<PermissionGrant>,
    /// Assignments present in `to` but not `from`.
    pub added_assignments: Vec<RoleAssignment>,
    /// Assignments present in `from` but not `to`.
    pub removed_assignments: Vec<RoleAssignment>,
}

impl PolicyDiff {
    /// Computes `to - from`.
    pub fn between(from: &RbacPolicy, to: &RbacPolicy) -> PolicyDiff {
        let from_grants: std::collections::BTreeSet<_> = from.grants().cloned().collect();
        let to_grants: std::collections::BTreeSet<_> = to.grants().cloned().collect();
        let from_assign: std::collections::BTreeSet<_> = from.assignments().cloned().collect();
        let to_assign: std::collections::BTreeSet<_> = to.assignments().cloned().collect();
        PolicyDiff {
            added_grants: to_grants.difference(&from_grants).cloned().collect(),
            removed_grants: from_grants.difference(&to_grants).cloned().collect(),
            added_assignments: to_assign.difference(&from_assign).cloned().collect(),
            removed_assignments: from_assign.difference(&to_assign).cloned().collect(),
        }
    }

    /// True when the two policies were identical.
    pub fn is_empty(&self) -> bool {
        self.added_grants.is_empty()
            && self.removed_grants.is_empty()
            && self.added_assignments.is_empty()
            && self.removed_assignments.is_empty()
    }

    /// Total number of differing rows.
    pub fn len(&self) -> usize {
        self.added_grants.len()
            + self.removed_grants.len()
            + self.added_assignments.len()
            + self.removed_assignments.len()
    }

    /// Applies the diff to `policy`, turning a `from`-shaped policy into
    /// the `to` shape. Returns the number of rows changed.
    pub fn apply(&self, policy: &mut RbacPolicy) -> usize {
        let mut changed = 0;
        for g in &self.added_grants {
            if policy.grant(g.clone()) {
                changed += 1;
            }
        }
        for g in &self.removed_grants {
            if policy.revoke(g) {
                changed += 1;
            }
        }
        for a in &self.added_assignments {
            if policy.assign(a.clone()) {
                changed += 1;
            }
        }
        for a in &self.removed_assignments {
            if policy.unassign(a) {
                changed += 1;
            }
        }
        changed
    }

    /// The reverse diff (`to` -> `from`).
    pub fn inverse(&self) -> PolicyDiff {
        PolicyDiff {
            added_grants: self.removed_grants.clone(),
            removed_grants: self.added_grants.clone(),
            added_assignments: self.removed_assignments.clone(),
            removed_assignments: self.added_assignments.clone(),
        }
    }
}

impl fmt::Display for PolicyDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "policies identical");
        }
        for g in &self.added_grants {
            writeln!(f, "+ grant {g}")?;
        }
        for g in &self.removed_grants {
            writeln!(f, "- grant {g}")?;
        }
        for a in &self.added_assignments {
            writeln!(f, "+ assign {a}")?;
        }
        for a in &self.removed_assignments {
            writeln!(f, "- assign {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::salaries_policy;

    #[test]
    fn identical_policies_have_empty_diff() {
        let a = salaries_policy();
        let d = PolicyDiff::between(&a, &a.clone());
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.to_string(), "policies identical");
    }

    #[test]
    fn diff_and_apply_roundtrip() {
        let from = salaries_policy();
        let mut to = from.clone();
        to.grant(PermissionGrant::new("HR", "Officer", "PersonnelDB", "read"));
        to.remove_user(&"Dave".into());
        let d = PolicyDiff::between(&from, &to);
        assert_eq!(d.added_grants.len(), 1);
        assert_eq!(d.removed_assignments.len(), 1);
        let mut patched = from.clone();
        let changed = d.apply(&mut patched);
        assert_eq!(changed, d.len());
        assert_eq!(patched, to);
    }

    #[test]
    fn inverse_undoes() {
        let from = salaries_policy();
        let mut to = from.clone();
        to.assign(RoleAssignment::new("Fred", "Sales", "Manager"));
        let d = PolicyDiff::between(&from, &to);
        let mut p = to.clone();
        d.inverse().apply(&mut p);
        assert_eq!(p, from);
    }

    #[test]
    fn display_lists_rows() {
        let from = RbacPolicy::new();
        let mut to = RbacPolicy::new();
        to.grant(PermissionGrant::new("D", "R", "T", "read"));
        let d = PolicyDiff::between(&from, &to);
        let s = d.to_string();
        assert!(s.contains("+ grant D/R may read on T"));
    }

    #[test]
    fn serde_roundtrip() {
        let from = RbacPolicy::new();
        let to = salaries_policy();
        let d = PolicyDiff::between(&from, &to);
        let json = serde_json::to_string(&d).unwrap();
        let back: PolicyDiff = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
