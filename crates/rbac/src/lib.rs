//! The extended Role-Based Access Control model of the paper (§2).
//!
//! Classic RBAC relates Users, Roles and Permissions; the paper extends
//! it with **Domain** (a logical grouping of roles — a department, an NT
//! domain, an EJB server) and **ObjectType** (what permissions range
//! over), giving the two relations
//!
//! ```text
//! HasPermission ⊆ Domain × Role × ObjectType × Permission
//! UserRole      ⊆ User × Domain × Role
//! ```
//!
//! which every supported middleware (COM+, EJB, CORBA) concretises and
//! which the trust layer encodes into KeyNote credentials.
//!
//! Modules: [`ids`] (typed names), [`policy`] (the relations and access
//! checks), [`hierarchy`] (RBAC1 role hierarchies + flattening),
//! [`sessions`] (RBAC96 sessions / role activation), [`constraints`]
//! (RBAC2 separation of duty), [`delegation`] (user-to-user role
//! delegation, the paper's [29]), [`diff`] (policy differencing for
//! maintenance), [`fixtures`] (the paper's Figure 1 and synthetic
//! workloads).

pub mod constraints;
pub mod delegation;
pub mod diff;
pub mod fixtures;
pub mod hierarchy;
pub mod ids;
pub mod policy;
pub mod sessions;

pub use constraints::{ConstraintSet, SodConstraint, SodKind, SodViolation};
pub use delegation::{Delegation, DelegationError, DelegationStore};
pub use diff::PolicyDiff;
pub use hierarchy::{HierarchyError, RoleHierarchy};
pub use ids::{Domain, DomainRole, ObjectType, Permission, Role, User};
pub use policy::{PermissionGrant, RbacPolicy, RoleAssignment};
pub use sessions::{RbacSession, SessionsError};
