//! Role hierarchies (RBAC1, Sandhu et al. [26]) as an extension of the
//! paper's flat model.
//!
//! A hierarchy relates roles *within one domain*: a senior role inherits
//! every permission of its juniors. The paper's middleware targets are
//! flat, so translations flatten a hierarchy into explicit
//! `HasPermission` rows before export (see [`RoleHierarchy::flatten`]).

use crate::ids::{Domain, DomainRole, Role};
use crate::policy::{PermissionGrant, RbacPolicy};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A seniority relation over (domain, role) pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoleHierarchy {
    /// senior -> set of direct juniors.
    juniors: BTreeMap<DomainRole, BTreeSet<DomainRole>>,
}

/// Errors building a hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HierarchyError {
    /// Seniority must stay within a single domain.
    CrossDomain {
        /// The senior role.
        senior: DomainRole,
        /// The junior role.
        junior: DomainRole,
    },
    /// Adding the edge would create a cycle.
    Cycle {
        /// The senior role.
        senior: DomainRole,
        /// The junior role.
        junior: DomainRole,
    },
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyError::CrossDomain { senior, junior } => {
                write!(f, "cross-domain seniority {senior} > {junior}")
            }
            HierarchyError::Cycle { senior, junior } => {
                write!(f, "seniority {senior} > {junior} would create a cycle")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

impl RoleHierarchy {
    /// Empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `senior > junior` (senior inherits junior's permissions).
    pub fn add_seniority(
        &mut self,
        senior: DomainRole,
        junior: DomainRole,
    ) -> Result<(), HierarchyError> {
        if senior.domain != junior.domain {
            return Err(HierarchyError::CrossDomain { senior, junior });
        }
        if senior == junior || self.inherits(&junior, &senior) {
            return Err(HierarchyError::Cycle { senior, junior });
        }
        self.juniors.entry(senior).or_default().insert(junior);
        Ok(())
    }

    /// True when `senior` (transitively) inherits from `junior`.
    pub fn inherits(&self, senior: &DomainRole, junior: &DomainRole) -> bool {
        if senior == junior {
            return true;
        }
        let mut queue: VecDeque<&DomainRole> = VecDeque::new();
        let mut seen: BTreeSet<&DomainRole> = BTreeSet::new();
        queue.push_back(senior);
        while let Some(cur) = queue.pop_front() {
            if let Some(js) = self.juniors.get(cur) {
                for j in js {
                    if j == junior {
                        return true;
                    }
                    if seen.insert(j) {
                        queue.push_back(j);
                    }
                }
            }
        }
        false
    }

    /// All roles (transitively) junior to `senior`, including itself.
    pub fn closure(&self, senior: &DomainRole) -> BTreeSet<DomainRole> {
        let mut out = BTreeSet::new();
        let mut queue = VecDeque::new();
        out.insert(senior.clone());
        queue.push_back(senior.clone());
        while let Some(cur) = queue.pop_front() {
            if let Some(js) = self.juniors.get(&cur) {
                for j in js {
                    if out.insert(j.clone()) {
                        queue.push_back(j.clone());
                    }
                }
            }
        }
        out
    }

    /// Number of direct seniority edges.
    pub fn edge_count(&self) -> usize {
        self.juniors.values().map(BTreeSet::len).sum()
    }

    /// Flattens the hierarchy into `policy`: for every senior role, adds
    /// explicit `HasPermission` rows for every permission of every
    /// junior. Returns the number of rows added. After flattening the
    /// policy is equivalent under flat (middleware) semantics.
    pub fn flatten(&self, policy: &mut RbacPolicy) -> usize {
        let mut to_add: Vec<PermissionGrant> = Vec::new();
        for senior in self.juniors.keys() {
            for junior in self.closure(senior) {
                if junior == *senior {
                    continue;
                }
                for (object_type, perms) in policy.permissions_of_role(&junior.domain, &junior.role)
                {
                    for perm in perms {
                        to_add.push(PermissionGrant {
                            domain: senior.domain.clone(),
                            role: senior.role.clone(),
                            object_type: object_type.clone(),
                            permission: perm,
                        });
                    }
                }
            }
        }
        let mut added = 0;
        for g in to_add {
            if policy.grant(g) {
                added += 1;
            }
        }
        added
    }

    /// Access check under the hierarchy: user holds the permission if any
    /// of their roles, or any junior of their roles, holds it.
    pub fn check_access(
        &self,
        policy: &RbacPolicy,
        user: &crate::ids::User,
        object_type: &crate::ids::ObjectType,
        permission: &crate::ids::Permission,
    ) -> bool {
        policy.roles_of(user).iter().any(|dr| {
            self.closure(dr).iter().any(|j| {
                policy.role_has_permission(&j.domain, &j.role, object_type, permission)
            })
        })
    }

    /// Roles senior to nothing in a domain (diagnostic helper).
    pub fn seniors_in(&self, domain: &Domain) -> Vec<Role> {
        self.juniors
            .keys()
            .filter(|dr| &dr.domain == domain)
            .map(|dr| dr.role.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::salaries_policy;
    use crate::ids::ObjectType;

    fn dr(d: &str, r: &str) -> DomainRole {
        DomainRole::new(d, r)
    }

    #[test]
    fn seniority_and_inheritance() {
        let mut h = RoleHierarchy::new();
        h.add_seniority(dr("Finance", "Manager"), dr("Finance", "Clerk"))
            .unwrap();
        assert!(h.inherits(&dr("Finance", "Manager"), &dr("Finance", "Clerk")));
        assert!(!h.inherits(&dr("Finance", "Clerk"), &dr("Finance", "Manager")));
        assert!(h.inherits(&dr("Finance", "Clerk"), &dr("Finance", "Clerk")));
    }

    #[test]
    fn transitive_closure() {
        let mut h = RoleHierarchy::new();
        h.add_seniority(dr("D", "Director"), dr("D", "Manager")).unwrap();
        h.add_seniority(dr("D", "Manager"), dr("D", "Clerk")).unwrap();
        assert!(h.inherits(&dr("D", "Director"), &dr("D", "Clerk")));
        assert_eq!(h.closure(&dr("D", "Director")).len(), 3);
        assert_eq!(h.edge_count(), 2);
    }

    #[test]
    fn cross_domain_rejected() {
        let mut h = RoleHierarchy::new();
        let err = h
            .add_seniority(dr("Finance", "Manager"), dr("Sales", "Clerk"))
            .unwrap_err();
        assert!(matches!(err, HierarchyError::CrossDomain { .. }));
    }

    #[test]
    fn cycles_rejected() {
        let mut h = RoleHierarchy::new();
        h.add_seniority(dr("D", "A"), dr("D", "B")).unwrap();
        h.add_seniority(dr("D", "B"), dr("D", "C")).unwrap();
        assert!(matches!(
            h.add_seniority(dr("D", "C"), dr("D", "A")),
            Err(HierarchyError::Cycle { .. })
        ));
        assert!(matches!(
            h.add_seniority(dr("D", "A"), dr("D", "A")),
            Err(HierarchyError::Cycle { .. })
        ));
    }

    #[test]
    fn hierarchical_access_check() {
        let policy = salaries_policy();
        let mut h = RoleHierarchy::new();
        // Make Sales/Manager senior to Sales/Assistant — changes nothing
        // since Assistant has no permissions.
        h.add_seniority(dr("Sales", "Manager"), dr("Sales", "Assistant"))
            .unwrap();
        let t = ObjectType::new("SalariesDB");
        assert!(h.check_access(&policy, &"Claire".into(), &t, &"read".into()));
        assert!(!h.check_access(&policy, &"Dave".into(), &t, &"read".into()));
        // Now give Finance/Manager seniority over Finance/Clerk; Bob
        // already has read+write so nothing changes, but a hierarchy-only
        // user demonstrates inheritance:
        let mut h2 = RoleHierarchy::new();
        h2.add_seniority(dr("Finance", "Director"), dr("Finance", "Manager"))
            .unwrap();
        let mut p2 = policy.clone();
        p2.assign(crate::policy::RoleAssignment::new(
            "Grace", "Finance", "Director",
        ));
        assert!(h2.check_access(&p2, &"Grace".into(), &t, &"write".into()));
        // Flat check says no: Director has no explicit rows.
        assert!(!p2.check_access(&"Grace".into(), &t, &"write".into()));
    }

    #[test]
    fn flatten_materialises_inherited_rows() {
        let mut policy = salaries_policy();
        let mut h = RoleHierarchy::new();
        h.add_seniority(dr("Finance", "Director"), dr("Finance", "Manager"))
            .unwrap();
        let added = h.flatten(&mut policy);
        assert_eq!(added, 2); // read + write inherited by Director
        assert!(policy.role_has_permission(
            &"Finance".into(),
            &"Director".into(),
            &ObjectType::new("SalariesDB"),
            &"write".into()
        ));
        // Flattening again is idempotent.
        assert_eq!(h.flatten(&mut policy), 0);
    }

    #[test]
    fn seniors_in_domain() {
        let mut h = RoleHierarchy::new();
        h.add_seniority(dr("D", "A"), dr("D", "B")).unwrap();
        h.add_seniority(dr("E", "X"), dr("E", "Y")).unwrap();
        assert_eq!(h.seniors_in(&"D".into()), vec![Role::new("A")]);
    }
}
