//! RBAC constraints (RBAC2, Sandhu et al. [26]): static and dynamic
//! separation of duty.
//!
//! * **SSD** — a user may belong to at most `limit` roles of a conflict
//!   set (checked against the `UserRole` relation);
//! * **DSD** — a session may *activate* at most `limit` roles of a
//!   conflict set (checked against [`crate::sessions::RbacSession`]).
//!
//! Constraint checking is advisory: the store validates policies and
//! sessions and reports violations; enforcement points decide what to do
//! (the translation services refuse to commission violating policies).

use crate::ids::DomainRole;
use crate::policy::RbacPolicy;
use crate::sessions::RbacSession;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Which relation a constraint ranges over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SodKind {
    /// Static separation of duty (membership).
    Static,
    /// Dynamic separation of duty (activation).
    Dynamic,
}

/// A separation-of-duty constraint: at most `limit` of `roles`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SodConstraint {
    /// Diagnostic name.
    pub name: String,
    /// Static or dynamic.
    pub kind: SodKind,
    /// The conflicting role set.
    pub roles: BTreeSet<DomainRole>,
    /// Maximum number of conflicting roles one user/session may hold.
    pub limit: usize,
}

impl SodConstraint {
    /// A mutual-exclusion constraint (limit 1) over the given roles.
    pub fn mutual_exclusion(
        name: impl Into<String>,
        kind: SodKind,
        roles: impl IntoIterator<Item = DomainRole>,
    ) -> Self {
        SodConstraint {
            name: name.into(),
            kind,
            roles: roles.into_iter().collect(),
            limit: 1,
        }
    }
}

/// A reported violation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SodViolation {
    /// The violated constraint's name.
    pub constraint: String,
    /// The offending user.
    pub user: String,
    /// The conflicting roles held/activated.
    pub roles: Vec<DomainRole>,
}

impl fmt::Display for SodViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let roles: Vec<String> = self.roles.iter().map(|r| r.to_string()).collect();
        write!(
            f,
            "constraint `{}`: {} holds conflicting roles [{}]",
            self.constraint,
            self.user,
            roles.join(", ")
        )
    }
}

/// A set of constraints with validation entry points.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintSet {
    constraints: Vec<SodConstraint>,
}

impl ConstraintSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint.
    pub fn add(&mut self, c: SodConstraint) {
        self.constraints.push(c);
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Validates the `UserRole` relation against every static
    /// constraint.
    pub fn validate_policy(&self, policy: &RbacPolicy) -> Vec<SodViolation> {
        let mut out = Vec::new();
        for c in self.constraints.iter().filter(|c| c.kind == SodKind::Static) {
            for user in policy.users() {
                let held: Vec<DomainRole> = policy
                    .roles_of(&user)
                    .into_iter()
                    .filter(|dr| c.roles.contains(dr))
                    .collect();
                if held.len() > c.limit {
                    out.push(SodViolation {
                        constraint: c.name.clone(),
                        user: user.to_string(),
                        roles: held,
                    });
                }
            }
        }
        out
    }

    /// Validates a session's activated roles against every dynamic
    /// constraint.
    pub fn validate_session(&self, session: &RbacSession) -> Vec<SodViolation> {
        let mut out = Vec::new();
        for c in self.constraints.iter().filter(|c| c.kind == SodKind::Dynamic) {
            let active: Vec<DomainRole> = session
                .active_roles()
                .filter(|dr| c.roles.contains(dr))
                .cloned()
                .collect();
            if active.len() > c.limit {
                out.push(SodViolation {
                    constraint: c.name.clone(),
                    user: session.user().to_string(),
                    roles: active,
                });
            }
        }
        out
    }

    /// Would assigning `user` to `role` violate a static constraint?
    pub fn assignment_allowed(
        &self,
        policy: &RbacPolicy,
        user: &crate::ids::User,
        role: &DomainRole,
    ) -> Result<(), SodViolation> {
        for c in self.constraints.iter().filter(|c| c.kind == SodKind::Static) {
            if !c.roles.contains(role) {
                continue;
            }
            let mut held: Vec<DomainRole> = policy
                .roles_of(user)
                .into_iter()
                .filter(|dr| c.roles.contains(dr))
                .collect();
            if !held.contains(role) {
                held.push(role.clone());
            }
            if held.len() > c.limit {
                return Err(SodViolation {
                    constraint: c.name.clone(),
                    user: user.to_string(),
                    roles: held,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::salaries_policy;
    use crate::policy::RoleAssignment;

    fn payroll_sod(kind: SodKind) -> SodConstraint {
        SodConstraint::mutual_exclusion(
            "payroll-vs-audit",
            kind,
            [
                DomainRole::new("Finance", "Clerk"),
                DomainRole::new("Finance", "Auditor"),
            ],
        )
    }

    #[test]
    fn clean_policy_validates() {
        let mut set = ConstraintSet::new();
        set.add(payroll_sod(SodKind::Static));
        assert!(set.validate_policy(&salaries_policy()).is_empty());
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn static_violation_detected() {
        let mut policy = salaries_policy();
        policy.assign(RoleAssignment::new("Alice", "Finance", "Auditor"));
        let mut set = ConstraintSet::new();
        set.add(payroll_sod(SodKind::Static));
        let violations = set.validate_policy(&policy);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].user, "Alice");
        assert_eq!(violations[0].roles.len(), 2);
        assert!(violations[0].to_string().contains("payroll-vs-audit"));
    }

    #[test]
    fn assignment_precheck() {
        let policy = salaries_policy();
        let mut set = ConstraintSet::new();
        set.add(payroll_sod(SodKind::Static));
        // Alice is already Finance/Clerk: adding Auditor violates.
        let err = set
            .assignment_allowed(
                &policy,
                &"Alice".into(),
                &DomainRole::new("Finance", "Auditor"),
            )
            .unwrap_err();
        assert_eq!(err.user, "Alice");
        // Bob (Manager) can become Auditor.
        assert!(set
            .assignment_allowed(
                &policy,
                &"Bob".into(),
                &DomainRole::new("Finance", "Auditor")
            )
            .is_ok());
        // Roles outside the conflict set are unconstrained.
        assert!(set
            .assignment_allowed(
                &policy,
                &"Alice".into(),
                &DomainRole::new("Sales", "Manager")
            )
            .is_ok());
    }

    #[test]
    fn dynamic_constraint_checks_sessions_only() {
        let mut policy = salaries_policy();
        policy.assign(RoleAssignment::new("Alice", "Finance", "Auditor"));
        let mut set = ConstraintSet::new();
        set.add(payroll_sod(SodKind::Dynamic));
        // Membership in both is fine under DSD...
        assert!(set.validate_policy(&policy).is_empty());
        // ...but activating both in one session is not.
        let mut session = crate::sessions::RbacSession::open("Alice");
        session
            .activate(DomainRole::new("Finance", "Clerk"), &policy)
            .unwrap();
        assert!(set.validate_session(&session).is_empty());
        session
            .activate(DomainRole::new("Finance", "Auditor"), &policy)
            .unwrap();
        let violations = set.validate_session(&session);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].user, "Alice");
    }

    #[test]
    fn higher_limits() {
        let mut set = ConstraintSet::new();
        set.add(SodConstraint {
            name: "at-most-two".into(),
            kind: SodKind::Static,
            roles: [
                DomainRole::new("D", "A"),
                DomainRole::new("D", "B"),
                DomainRole::new("D", "C"),
            ]
            .into_iter()
            .collect(),
            limit: 2,
        });
        let mut policy = RbacPolicy::new();
        policy.assign(RoleAssignment::new("u", "D", "A"));
        policy.assign(RoleAssignment::new("u", "D", "B"));
        assert!(set.validate_policy(&policy).is_empty());
        policy.assign(RoleAssignment::new("u", "D", "C"));
        assert_eq!(set.validate_policy(&policy).len(), 1);
    }
}
