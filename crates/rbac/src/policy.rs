//! The extended RBAC policy: the paper's `HasPermission` and `UserRole`
//! relations (§2).
//!
//! ```text
//! HasPermission ⊆ Domain × Role × ObjectType × Permission
//! UserRole      ⊆ User × Domain × Role
//! ```
//!
//! `HasPermission(d, r, t, p)` means the role `r` in domain `d` holds
//! permission `p` on objects of type `t`; `UserRole(u, d, r)` assigns
//! user `u` to the domain-role pair `(d, r)`.

use crate::ids::{Domain, DomainRole, ObjectType, Permission, Role, User};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One row of the `HasPermission` relation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PermissionGrant {
    /// Domain of the role.
    pub domain: Domain,
    /// The role.
    pub role: Role,
    /// Object type the permission ranges over.
    pub object_type: ObjectType,
    /// The permission.
    pub permission: Permission,
}

impl PermissionGrant {
    /// Builds a row.
    pub fn new(
        domain: impl Into<Domain>,
        role: impl Into<Role>,
        object_type: impl Into<ObjectType>,
        permission: impl Into<Permission>,
    ) -> Self {
        PermissionGrant {
            domain: domain.into(),
            role: role.into(),
            object_type: object_type.into(),
            permission: permission.into(),
        }
    }

    /// The (domain, role) pair of the row.
    pub fn domain_role(&self) -> DomainRole {
        DomainRole {
            domain: self.domain.clone(),
            role: self.role.clone(),
        }
    }
}

impl fmt::Display for PermissionGrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} may {} on {}",
            self.domain, self.role, self.permission, self.object_type
        )
    }
}

/// One row of the `UserRole` relation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RoleAssignment {
    /// The user.
    pub user: User,
    /// Domain of the role.
    pub domain: Domain,
    /// The role.
    pub role: Role,
}

impl RoleAssignment {
    /// Builds a row.
    pub fn new(user: impl Into<User>, domain: impl Into<Domain>, role: impl Into<Role>) -> Self {
        RoleAssignment {
            user: user.into(),
            domain: domain.into(),
            role: role.into(),
        }
    }

    /// The (domain, role) pair of the row.
    pub fn domain_role(&self) -> DomainRole {
        DomainRole {
            domain: self.domain.clone(),
            role: self.role.clone(),
        }
    }
}

impl fmt::Display for RoleAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} is {}/{}", self.user, self.domain, self.role)
    }
}

/// An extended RBAC policy: the two relations plus convenience queries.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RbacPolicy {
    has_permission: BTreeSet<PermissionGrant>,
    user_role: BTreeSet<RoleAssignment>,
}

impl RbacPolicy {
    /// An empty policy.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- mutation ----

    /// Adds a `HasPermission` row; returns false if it already existed.
    pub fn grant(&mut self, grant: PermissionGrant) -> bool {
        self.has_permission.insert(grant)
    }

    /// Removes a `HasPermission` row; returns false if absent.
    pub fn revoke(&mut self, grant: &PermissionGrant) -> bool {
        self.has_permission.remove(grant)
    }

    /// Adds a `UserRole` row; returns false if it already existed.
    pub fn assign(&mut self, assignment: RoleAssignment) -> bool {
        self.user_role.insert(assignment)
    }

    /// Removes a `UserRole` row; returns false if absent.
    pub fn unassign(&mut self, assignment: &RoleAssignment) -> bool {
        self.user_role.remove(assignment)
    }

    /// Removes a user from every role (the RBAC "revoke individual
    /// user's rights without touching objects" operation).
    pub fn remove_user(&mut self, user: &User) -> usize {
        let before = self.user_role.len();
        self.user_role.retain(|a| &a.user != user);
        before - self.user_role.len()
    }

    /// Removes a role from both relations (memberships and grants).
    pub fn remove_role(&mut self, domain: &Domain, role: &Role) -> usize {
        let before = self.user_role.len() + self.has_permission.len();
        self.user_role
            .retain(|a| !(&a.domain == domain && &a.role == role));
        self.has_permission
            .retain(|g| !(&g.domain == domain && &g.role == role));
        before - self.user_role.len() - self.has_permission.len()
    }

    // ---- raw access ----

    /// The `HasPermission` relation.
    pub fn grants(&self) -> impl Iterator<Item = &PermissionGrant> {
        self.has_permission.iter()
    }

    /// The `UserRole` relation.
    pub fn assignments(&self) -> impl Iterator<Item = &RoleAssignment> {
        self.user_role.iter()
    }

    /// Number of `HasPermission` rows.
    pub fn grant_count(&self) -> usize {
        self.has_permission.len()
    }

    /// Number of `UserRole` rows.
    pub fn assignment_count(&self) -> usize {
        self.user_role.len()
    }

    /// True when both relations are empty.
    pub fn is_empty(&self) -> bool {
        self.has_permission.is_empty() && self.user_role.is_empty()
    }

    // ---- queries ----

    /// True when `HasPermission(d, r, t, p)` holds.
    pub fn role_has_permission(
        &self,
        domain: &Domain,
        role: &Role,
        object_type: &ObjectType,
        permission: &Permission,
    ) -> bool {
        self.has_permission.contains(&PermissionGrant {
            domain: domain.clone(),
            role: role.clone(),
            object_type: object_type.clone(),
            permission: permission.clone(),
        })
    }

    /// True when `UserRole(u, d, r)` holds.
    pub fn user_in_role(&self, user: &User, domain: &Domain, role: &Role) -> bool {
        self.user_role.contains(&RoleAssignment {
            user: user.clone(),
            domain: domain.clone(),
            role: role.clone(),
        })
    }

    /// The core access-check: does `user` hold `permission` on
    /// `object_type` via any of their roles?
    pub fn check_access(
        &self,
        user: &User,
        object_type: &ObjectType,
        permission: &Permission,
    ) -> bool {
        self.user_role.iter().any(|a| {
            &a.user == user
                && self.role_has_permission(&a.domain, &a.role, object_type, permission)
        })
    }

    /// Like [`Self::check_access`] but restricted to one (domain, role)
    /// the user must be acting in — the WebCom scheduler's question.
    pub fn check_access_as(
        &self,
        user: &User,
        domain: &Domain,
        role: &Role,
        object_type: &ObjectType,
        permission: &Permission,
    ) -> bool {
        self.user_in_role(user, domain, role)
            && self.role_has_permission(domain, role, object_type, permission)
    }

    /// All (domain, role) memberships of a user.
    pub fn roles_of(&self, user: &User) -> Vec<DomainRole> {
        self.user_role
            .iter()
            .filter(|a| &a.user == user)
            .map(RoleAssignment::domain_role)
            .collect()
    }

    /// All users assigned to a (domain, role).
    pub fn members_of(&self, domain: &Domain, role: &Role) -> Vec<User> {
        self.user_role
            .iter()
            .filter(|a| &a.domain == domain && &a.role == role)
            .map(|a| a.user.clone())
            .collect()
    }

    /// All permissions a (domain, role) holds, grouped by object type.
    pub fn permissions_of_role(
        &self,
        domain: &Domain,
        role: &Role,
    ) -> BTreeMap<ObjectType, BTreeSet<Permission>> {
        let mut out: BTreeMap<ObjectType, BTreeSet<Permission>> = BTreeMap::new();
        for g in &self.has_permission {
            if &g.domain == domain && &g.role == role {
                out.entry(g.object_type.clone())
                    .or_default()
                    .insert(g.permission.clone());
            }
        }
        out
    }

    /// The effective permissions of a user: union over their roles.
    pub fn permissions_of_user(&self, user: &User) -> BTreeMap<ObjectType, BTreeSet<Permission>> {
        let mut out: BTreeMap<ObjectType, BTreeSet<Permission>> = BTreeMap::new();
        for dr in self.roles_of(user) {
            for (t, perms) in self.permissions_of_role(&dr.domain, &dr.role) {
                out.entry(t).or_default().extend(perms);
            }
        }
        out
    }

    /// All domains mentioned by either relation.
    pub fn domains(&self) -> BTreeSet<Domain> {
        let mut out: BTreeSet<Domain> = self
            .has_permission
            .iter()
            .map(|g| g.domain.clone())
            .collect();
        out.extend(self.user_role.iter().map(|a| a.domain.clone()));
        out
    }

    /// All (domain, role) pairs mentioned by either relation.
    pub fn domain_roles(&self) -> BTreeSet<DomainRole> {
        let mut out: BTreeSet<DomainRole> = self
            .has_permission
            .iter()
            .map(PermissionGrant::domain_role)
            .collect();
        out.extend(self.user_role.iter().map(RoleAssignment::domain_role));
        out
    }

    /// All users.
    pub fn users(&self) -> BTreeSet<User> {
        self.user_role.iter().map(|a| a.user.clone()).collect()
    }

    /// All object types mentioned by `HasPermission`.
    pub fn object_types(&self) -> BTreeSet<ObjectType> {
        self.has_permission
            .iter()
            .map(|g| g.object_type.clone())
            .collect()
    }

    /// Merges another policy into this one (set union); returns the
    /// number of new rows.
    pub fn merge(&mut self, other: &RbacPolicy) -> usize {
        let before = self.has_permission.len() + self.user_role.len();
        self.has_permission
            .extend(other.has_permission.iter().cloned());
        self.user_role.extend(other.user_role.iter().cloned());
        self.has_permission.len() + self.user_role.len() - before
    }

    /// Validation: role assignments referring to (domain, role) pairs
    /// with no permissions at all are reported as *dangling* (usually a
    /// sign of a mistyped role name during migration).
    pub fn dangling_assignments(&self) -> Vec<&RoleAssignment> {
        let granted: BTreeSet<DomainRole> = self
            .has_permission
            .iter()
            .map(PermissionGrant::domain_role)
            .collect();
        self.user_role
            .iter()
            .filter(|a| !granted.contains(&a.domain_role()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::salaries_policy;

    #[test]
    fn figure_1_relations() {
        // The paper's Figure 1 tables, row by row.
        let p = salaries_policy();
        assert_eq!(p.grant_count(), 4);
        assert_eq!(p.assignment_count(), 5);
        let t = ObjectType::new("SalariesDB");
        assert!(p.role_has_permission(
            &"Finance".into(),
            &"Clerk".into(),
            &t,
            &"write".into()
        ));
        assert!(p.role_has_permission(
            &"Finance".into(),
            &"Manager".into(),
            &t,
            &"read".into()
        ));
        assert!(p.role_has_permission(
            &"Finance".into(),
            &"Manager".into(),
            &t,
            &"write".into()
        ));
        assert!(p.role_has_permission(&"Sales".into(), &"Manager".into(), &t, &"read".into()));
        // Sales/Assistant: "no access".
        assert!(!p.role_has_permission(&"Sales".into(), &"Assistant".into(), &t, &"read".into()));
        assert!(p.user_in_role(&"Alice".into(), &"Finance".into(), &"Clerk".into()));
        assert!(p.user_in_role(&"Elaine".into(), &"Sales".into(), &"Manager".into()));
    }

    #[test]
    fn access_checks_follow_roles() {
        let p = salaries_policy();
        let t = ObjectType::new("SalariesDB");
        // Alice is Finance/Clerk: write yes, read no.
        assert!(p.check_access(&"Alice".into(), &t, &"write".into()));
        assert!(!p.check_access(&"Alice".into(), &t, &"read".into()));
        // Bob is Finance/Manager: both.
        assert!(p.check_access(&"Bob".into(), &t, &"read".into()));
        assert!(p.check_access(&"Bob".into(), &t, &"write".into()));
        // Claire is Sales/Manager: read only.
        assert!(p.check_access(&"Claire".into(), &t, &"read".into()));
        assert!(!p.check_access(&"Claire".into(), &t, &"write".into()));
        // Dave is Sales/Assistant: nothing.
        assert!(!p.check_access(&"Dave".into(), &t, &"read".into()));
        // Unknown user: nothing.
        assert!(!p.check_access(&"Mallory".into(), &t, &"read".into()));
    }

    #[test]
    fn check_access_as_requires_both_relations() {
        let p = salaries_policy();
        let t = ObjectType::new("SalariesDB");
        assert!(p.check_access_as(
            &"Bob".into(),
            &"Finance".into(),
            &"Manager".into(),
            &t,
            &"read".into()
        ));
        // Bob is not a Sales manager, even though the role has read.
        assert!(!p.check_access_as(
            &"Bob".into(),
            &"Sales".into(),
            &"Manager".into(),
            &t,
            &"read".into()
        ));
    }

    #[test]
    fn grant_revoke_assign_unassign() {
        let mut p = RbacPolicy::new();
        let g = PermissionGrant::new("D", "R", "T", "read");
        assert!(p.grant(g.clone()));
        assert!(!p.grant(g.clone())); // duplicate
        assert!(p.revoke(&g));
        assert!(!p.revoke(&g));
        let a = RoleAssignment::new("U", "D", "R");
        assert!(p.assign(a.clone()));
        assert!(!p.assign(a.clone()));
        assert!(p.unassign(&a));
        assert!(p.is_empty());
    }

    #[test]
    fn remove_user_and_role() {
        let mut p = salaries_policy();
        assert_eq!(p.remove_user(&"Elaine".into()), 1);
        assert!(!p.user_in_role(&"Elaine".into(), &"Sales".into(), &"Manager".into()));
        let removed = p.remove_role(&"Finance".into(), &"Manager".into());
        assert_eq!(removed, 3); // 2 grants + Bob's assignment
        assert!(!p.check_access(
            &"Bob".into(),
            &ObjectType::new("SalariesDB"),
            &"read".into()
        ));
    }

    #[test]
    fn enumeration_queries() {
        let p = salaries_policy();
        assert_eq!(
            p.domains(),
            ["Finance", "Sales"].iter().map(|s| Domain::new(*s)).collect()
        );
        assert_eq!(p.users().len(), 5);
        assert_eq!(p.object_types().len(), 1);
        let members = p.members_of(&"Sales".into(), &"Manager".into());
        assert_eq!(members, vec![User::new("Claire"), User::new("Elaine")]);
        let roles = p.roles_of(&"Bob".into());
        assert_eq!(roles, vec![DomainRole::new("Finance", "Manager")]);
    }

    #[test]
    fn permissions_grouping() {
        let p = salaries_policy();
        let perms = p.permissions_of_role(&"Finance".into(), &"Manager".into());
        let db = perms.get(&ObjectType::new("SalariesDB")).unwrap();
        assert_eq!(db.len(), 2);
        let user_perms = p.permissions_of_user(&"Bob".into());
        assert_eq!(
            user_perms[&ObjectType::new("SalariesDB")].len(),
            2
        );
        assert!(p.permissions_of_user(&"Dave".into()).is_empty());
    }

    #[test]
    fn merge_unions() {
        let mut a = salaries_policy();
        let mut b = RbacPolicy::new();
        b.grant(PermissionGrant::new("HR", "Officer", "PersonnelDB", "read"));
        b.assign(RoleAssignment::new("Fred", "HR", "Officer"));
        // Overlapping row contributes nothing.
        b.assign(RoleAssignment::new("Alice", "Finance", "Clerk"));
        let added = a.merge(&b);
        assert_eq!(added, 2);
        assert!(a.check_access(&"Fred".into(), &"PersonnelDB".into(), &"read".into()));
    }

    #[test]
    fn dangling_assignment_detection() {
        let p = salaries_policy();
        // Dave's Sales/Assistant has no permission rows ("no access").
        let dangling = p.dangling_assignments();
        assert_eq!(dangling.len(), 1);
        assert_eq!(dangling[0].user, User::new("Dave"));
    }

    #[test]
    fn serde_roundtrip() {
        let p = salaries_policy();
        let json = serde_json::to_string(&p).unwrap();
        let back: RbacPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn display_formats() {
        let g = PermissionGrant::new("Finance", "Clerk", "SalariesDB", "write");
        assert_eq!(g.to_string(), "Finance/Clerk may write on SalariesDB");
        let a = RoleAssignment::new("Alice", "Finance", "Clerk");
        assert_eq!(a.to_string(), "Alice is Finance/Clerk");
    }
}
