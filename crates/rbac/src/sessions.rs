//! RBAC sessions (RBAC96): a user activates a subset of their roles and
//! access checks consider only the activated set.
//!
//! The WebCom scheduler uses sessions to honour the IDE's *partial
//! specifications* (§6): a component may be pinned to run under one
//! (domain, role), which maps to a session with a single activated role.

use crate::ids::{DomainRole, ObjectType, Permission, User};
use crate::policy::RbacPolicy;
use std::collections::BTreeSet;
use std::fmt;

/// Errors activating roles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionsError {
    /// The user is not a member of the requested role.
    NotAMember {
        /// The user.
        user: User,
        /// The requested role.
        role: DomainRole,
    },
}

impl fmt::Display for SessionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionsError::NotAMember { user, role } => {
                write!(f, "{user} is not a member of {role}")
            }
        }
    }
}

impl std::error::Error for SessionsError {}

/// A user session with a set of activated roles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RbacSession {
    user: User,
    active: BTreeSet<DomainRole>,
}

impl RbacSession {
    /// Opens a session with no roles active.
    pub fn open(user: impl Into<User>) -> Self {
        RbacSession {
            user: user.into(),
            active: BTreeSet::new(),
        }
    }

    /// Opens a session with *all* the user's roles active (the common
    /// default in middleware that has no session concept).
    pub fn open_with_all_roles(user: impl Into<User>, policy: &RbacPolicy) -> Self {
        let user = user.into();
        let active = policy.roles_of(&user).into_iter().collect();
        RbacSession { user, active }
    }

    /// The session's user.
    pub fn user(&self) -> &User {
        &self.user
    }

    /// The activated roles.
    pub fn active_roles(&self) -> impl Iterator<Item = &DomainRole> {
        self.active.iter()
    }

    /// Activates a role the user is a member of.
    pub fn activate(&mut self, role: DomainRole, policy: &RbacPolicy) -> Result<(), SessionsError> {
        if !policy.user_in_role(&self.user, &role.domain, &role.role) {
            return Err(SessionsError::NotAMember {
                user: self.user.clone(),
                role,
            });
        }
        self.active.insert(role);
        Ok(())
    }

    /// Deactivates a role; returns false if it was not active.
    pub fn deactivate(&mut self, role: &DomainRole) -> bool {
        self.active.remove(role)
    }

    /// Access check restricted to the activated roles.
    pub fn check_access(
        &self,
        policy: &RbacPolicy,
        object_type: &ObjectType,
        permission: &Permission,
    ) -> bool {
        self.active.iter().any(|dr| {
            policy.role_has_permission(&dr.domain, &dr.role, object_type, permission)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::salaries_policy;
    use crate::ids::ObjectType;

    #[test]
    fn empty_session_grants_nothing() {
        let p = salaries_policy();
        let s = RbacSession::open("Bob");
        assert!(!s.check_access(&p, &ObjectType::new("SalariesDB"), &"read".into()));
    }

    #[test]
    fn activation_requires_membership() {
        let p = salaries_policy();
        let mut s = RbacSession::open("Bob");
        assert!(s
            .activate(DomainRole::new("Finance", "Manager"), &p)
            .is_ok());
        let err = s
            .activate(DomainRole::new("Sales", "Manager"), &p)
            .unwrap_err();
        assert!(matches!(err, SessionsError::NotAMember { .. }));
    }

    #[test]
    fn activated_role_grants_access() {
        let p = salaries_policy();
        let t = ObjectType::new("SalariesDB");
        let mut s = RbacSession::open("Bob");
        s.activate(DomainRole::new("Finance", "Manager"), &p).unwrap();
        assert!(s.check_access(&p, &t, &"read".into()));
        assert!(s.check_access(&p, &t, &"write".into()));
        assert!(s.deactivate(&DomainRole::new("Finance", "Manager")));
        assert!(!s.check_access(&p, &t, &"read".into()));
        assert!(!s.deactivate(&DomainRole::new("Finance", "Manager")));
    }

    #[test]
    fn open_with_all_roles_matches_flat_check() {
        let p = salaries_policy();
        let t = ObjectType::new("SalariesDB");
        for user in ["Alice", "Bob", "Claire", "Dave", "Elaine"] {
            let s = RbacSession::open_with_all_roles(user, &p);
            for perm in ["read", "write"] {
                assert_eq!(
                    s.check_access(&p, &t, &perm.into()),
                    p.check_access(&user.into(), &t, &perm.into()),
                    "user={user} perm={perm}"
                );
            }
        }
    }

    #[test]
    fn least_privilege_with_single_role() {
        // Elaine activating only Sales/Manager cannot use any other role.
        let p = salaries_policy();
        let mut s = RbacSession::open("Elaine");
        s.activate(DomainRole::new("Sales", "Manager"), &p).unwrap();
        assert_eq!(s.active_roles().count(), 1);
        assert_eq!(s.user().as_str(), "Elaine");
        assert!(s.check_access(&p, &ObjectType::new("SalariesDB"), &"read".into()));
        assert!(!s.check_access(&p, &ObjectType::new("SalariesDB"), &"write".into()));
    }
}
