//! Typed identifiers for the extended RBAC model (paper §2).
//!
//! The paper extends classic RBAC (Users, Roles, Permissions) with
//! **Domain** (a logical grouping of roles, e.g. a department or a
//! middleware server) and **ObjectType** (the type permissions range
//! over, e.g. `SalariesDB`). Newtype wrappers keep the five name spaces
//! from being mixed up at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(String);

        impl $name {
            /// Wraps a name.
            pub fn new(name: impl Into<String>) -> Self {
                $name(name.into())
            }

            /// The underlying string.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name(s.to_string())
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                $name(s)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

id_type!(
    /// A logical grouping of roles: a department, an NT domain, an EJB
    /// server/JNDI name, or a (machine, ORB server) pair.
    Domain
);
id_type!(
    /// A role, unique within its domain.
    Role
);
id_type!(
    /// A user (a principal name; mapped to a public key by the trust
    /// layer).
    User
);
id_type!(
    /// The type of object a permission ranges over (e.g. `SalariesDB`).
    ObjectType
);
id_type!(
    /// A permission name (e.g. `read`, `write`, COM's `Launch`).
    Permission
);

/// A (domain, role) pair — the unit of role membership.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomainRole {
    /// The domain.
    pub domain: Domain,
    /// The role within that domain.
    pub role: Role,
}

impl DomainRole {
    /// Builds a pair.
    pub fn new(domain: impl Into<Domain>, role: impl Into<Role>) -> Self {
        DomainRole {
            domain: domain.into(),
            role: role.into(),
        }
    }
}

impl fmt::Display for DomainRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.domain, self.role)
    }
}

impl From<(&str, &str)> for DomainRole {
    fn from((d, r): (&str, &str)) -> Self {
        DomainRole::new(d, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let d = Domain::new("Finance");
        assert_eq!(d.as_str(), "Finance");
        assert_eq!(d.to_string(), "Finance");
        let dr = DomainRole::new("Finance", "Clerk");
        assert_eq!(dr.to_string(), "Finance/Clerk");
        let dr2: DomainRole = ("Finance", "Clerk").into();
        assert_eq!(dr, dr2);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Role::new("Assistant");
        let b = Role::new("Clerk");
        assert!(a < b);
    }

    #[test]
    fn distinct_types_same_text() {
        // Same text, different types: both construct fine.
        let r = Role::new("Finance");
        let d = Domain::new("Finance");
        assert_eq!(r.as_str(), d.as_str());
    }

    #[test]
    fn serde_is_transparent() {
        let u = User::new("Alice");
        assert_eq!(serde_json::to_string(&u).unwrap(), "\"Alice\"");
        let back: User = serde_json::from_str("\"Alice\"").unwrap();
        assert_eq!(back, u);
    }
}
