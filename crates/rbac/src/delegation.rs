//! User-to-user role delegation at the RBAC layer (the paper's reference
//! [29], Zhang/Oh/Sandhu's flexible delegation model).
//!
//! The trust layer realises delegation with credentials (Figure 7); this
//! module provides the *relational* counterpart so the two views can be
//! kept consistent: a `Delegation(delegator, delegatee, domain-role,
//! depth)` relation whose effective membership feeds the same access
//! checks, with revocation cascading through re-delegations.

use crate::ids::{DomainRole, ObjectType, Permission, User};
use crate::policy::RbacPolicy;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One delegation edge.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Delegation {
    /// Who delegates (must hold the role, originally or by delegation).
    pub delegator: User,
    /// Who receives the role.
    pub delegatee: User,
    /// The delegated (domain, role).
    pub role: DomainRole,
    /// Remaining re-delegation depth: 0 = delegatee may not re-delegate.
    pub depth: u32,
}

/// Errors creating delegations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelegationError {
    /// The delegator does not hold the role (directly or via
    /// delegation).
    NotHeld {
        /// The delegator.
        delegator: User,
        /// The role.
        role: DomainRole,
    },
    /// The delegator's grant has no re-delegation depth left.
    DepthExhausted {
        /// The delegator.
        delegator: User,
        /// The role.
        role: DomainRole,
    },
    /// Self-delegation is meaningless.
    SelfDelegation(User),
}

impl fmt::Display for DelegationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelegationError::NotHeld { delegator, role } => {
                write!(f, "{delegator} does not hold {role}")
            }
            DelegationError::DepthExhausted { delegator, role } => {
                write!(f, "{delegator} may not re-delegate {role}")
            }
            DelegationError::SelfDelegation(u) => write!(f, "{u} cannot delegate to themself"),
        }
    }
}

impl std::error::Error for DelegationError {}

/// The delegation relation layered over a base policy.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelegationStore {
    edges: BTreeSet<Delegation>,
}

impl DelegationStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of delegation edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The re-delegation depth available to `user` for `role`:
    /// `u32::MAX` for original members, the maximum residual depth over
    /// incoming delegations otherwise, `None` if the role is not held.
    pub fn available_depth(
        &self,
        policy: &RbacPolicy,
        user: &User,
        role: &DomainRole,
    ) -> Option<u32> {
        if policy.user_in_role(user, &role.domain, &role.role) {
            return Some(u32::MAX);
        }
        self.held_via(policy, user, role, &mut BTreeSet::new())
    }

    fn held_via(
        &self,
        policy: &RbacPolicy,
        user: &User,
        role: &DomainRole,
        visiting: &mut BTreeSet<User>,
    ) -> Option<u32> {
        if !visiting.insert(user.clone()) {
            return None; // cycle guard
        }
        let mut best: Option<u32> = None;
        for e in self.edges.iter().filter(|e| &e.delegatee == user && &e.role == role) {
            // The edge is live only if the delegator still holds the role.
            let delegator_depth = if policy.user_in_role(&e.delegator, &role.domain, &role.role) {
                Some(u32::MAX)
            } else {
                self.held_via(policy, &e.delegator, role, visiting)
            };
            match delegator_depth {
                // The delegator must have had re-delegation capacity.
                Some(d) if d > 0 => {
                    let granted = e.depth.min(d.saturating_sub(1));
                    best = Some(best.map_or(granted, |b| b.max(granted)));
                }
                _ => {}
            }
        }
        visiting.remove(user);
        best
    }

    /// Creates a delegation, validating the delegator's authority.
    pub fn delegate(
        &mut self,
        policy: &RbacPolicy,
        delegator: &User,
        delegatee: &User,
        role: DomainRole,
        depth: u32,
    ) -> Result<(), DelegationError> {
        if delegator == delegatee {
            return Err(DelegationError::SelfDelegation(delegator.clone()));
        }
        match self.available_depth(policy, delegator, &role) {
            None => Err(DelegationError::NotHeld {
                delegator: delegator.clone(),
                role,
            }),
            Some(0) => Err(DelegationError::DepthExhausted {
                delegator: delegator.clone(),
                role,
            }),
            Some(available) => {
                let granted_depth = depth.min(available.saturating_sub(1));
                self.edges.insert(Delegation {
                    delegator: delegator.clone(),
                    delegatee: delegatee.clone(),
                    role,
                    depth: granted_depth,
                });
                Ok(())
            }
        }
    }

    /// Revokes every delegation from `delegator` of `role`. Cascades
    /// implicitly: downstream edges survive in the relation but become
    /// dead because their delegator no longer holds the role.
    pub fn revoke(&mut self, delegator: &User, role: &DomainRole) -> usize {
        let before = self.edges.len();
        self.edges
            .retain(|e| !(&e.delegator == delegator && &e.role == role));
        before - self.edges.len()
    }

    /// True when `user` holds `role` directly or through live
    /// delegations.
    pub fn holds_role(&self, policy: &RbacPolicy, user: &User, role: &DomainRole) -> bool {
        self.available_depth(policy, user, role).is_some()
    }

    /// The access check with delegations considered.
    pub fn check_access(
        &self,
        policy: &RbacPolicy,
        user: &User,
        object_type: &ObjectType,
        permission: &Permission,
    ) -> bool {
        if policy.check_access(user, object_type, permission) {
            return true;
        }
        // Any role granting the permission that the user holds by
        // delegation suffices.
        policy
            .domain_roles()
            .iter()
            .filter(|dr| {
                policy.role_has_permission(&dr.domain, &dr.role, object_type, permission)
            })
            .any(|dr| self.holds_role(policy, user, dr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::salaries_policy;
    use crate::ids::ObjectType;

    fn sales_manager() -> DomainRole {
        DomainRole::new("Sales", "Manager")
    }

    #[test]
    fn member_delegates_to_outsider() {
        let policy = salaries_policy();
        let mut d = DelegationStore::new();
        d.delegate(&policy, &"Claire".into(), &"Fred".into(), sales_manager(), 0)
            .unwrap();
        assert!(d.holds_role(&policy, &"Fred".into(), &sales_manager()));
        assert!(d.check_access(
            &policy,
            &"Fred".into(),
            &ObjectType::new("SalariesDB"),
            &"read".into()
        ));
        assert!(!d.check_access(
            &policy,
            &"Fred".into(),
            &ObjectType::new("SalariesDB"),
            &"write".into()
        ));
    }

    #[test]
    fn non_member_cannot_delegate() {
        let policy = salaries_policy();
        let mut d = DelegationStore::new();
        let err = d
            .delegate(&policy, &"Dave".into(), &"Mallory".into(), sales_manager(), 0)
            .unwrap_err();
        assert!(matches!(err, DelegationError::NotHeld { .. }));
        assert!(d.is_empty());
    }

    #[test]
    fn self_delegation_rejected() {
        let policy = salaries_policy();
        let mut d = DelegationStore::new();
        assert!(matches!(
            d.delegate(&policy, &"Claire".into(), &"Claire".into(), sales_manager(), 0),
            Err(DelegationError::SelfDelegation(_))
        ));
    }

    #[test]
    fn depth_limits_redelegation() {
        let policy = salaries_policy();
        let mut d = DelegationStore::new();
        // depth 1: Fred may re-delegate once.
        d.delegate(&policy, &"Claire".into(), &"Fred".into(), sales_manager(), 1)
            .unwrap();
        d.delegate(&policy, &"Fred".into(), &"Gina".into(), sales_manager(), 5)
            .unwrap();
        // Gina's residual depth is 0: she may not re-delegate.
        let err = d
            .delegate(&policy, &"Gina".into(), &"Hank".into(), sales_manager(), 0)
            .unwrap_err();
        assert!(matches!(err, DelegationError::DepthExhausted { .. }));
        assert!(d.holds_role(&policy, &"Gina".into(), &sales_manager()));
        assert!(!d.holds_role(&policy, &"Hank".into(), &sales_manager()));
    }

    #[test]
    fn zero_depth_blocks_redelegation() {
        let policy = salaries_policy();
        let mut d = DelegationStore::new();
        d.delegate(&policy, &"Claire".into(), &"Fred".into(), sales_manager(), 0)
            .unwrap();
        assert!(matches!(
            d.delegate(&policy, &"Fred".into(), &"Gina".into(), sales_manager(), 0),
            Err(DelegationError::DepthExhausted { .. })
        ));
    }

    #[test]
    fn revocation_cascades() {
        let policy = salaries_policy();
        let mut d = DelegationStore::new();
        d.delegate(&policy, &"Claire".into(), &"Fred".into(), sales_manager(), 2)
            .unwrap();
        d.delegate(&policy, &"Fred".into(), &"Gina".into(), sales_manager(), 0)
            .unwrap();
        assert!(d.holds_role(&policy, &"Gina".into(), &sales_manager()));
        // Claire revokes Fred: Gina's chain dies with it.
        assert_eq!(d.revoke(&"Claire".into(), &sales_manager()), 1);
        assert!(!d.holds_role(&policy, &"Fred".into(), &sales_manager()));
        assert!(!d.holds_role(&policy, &"Gina".into(), &sales_manager()));
        assert_eq!(d.len(), 1); // the dead Fred->Gina edge remains but is inert
    }

    #[test]
    fn cycles_do_not_grant() {
        let policy = salaries_policy();
        let mut d = DelegationStore::new();
        // Force a cycle by inserting raw edges between two outsiders.
        d.edges.insert(Delegation {
            delegator: "X".into(),
            delegatee: "Y".into(),
            role: sales_manager(),
            depth: 5,
        });
        d.edges.insert(Delegation {
            delegator: "Y".into(),
            delegatee: "X".into(),
            role: sales_manager(),
            depth: 5,
        });
        assert!(!d.holds_role(&policy, &"X".into(), &sales_manager()));
        assert!(!d.holds_role(&policy, &"Y".into(), &sales_manager()));
    }

    #[test]
    fn original_members_have_unbounded_depth() {
        let policy = salaries_policy();
        let d = DelegationStore::new();
        assert_eq!(
            d.available_depth(&policy, &"Claire".into(), &sales_manager()),
            Some(u32::MAX)
        );
        assert_eq!(d.available_depth(&policy, &"Fred".into(), &sales_manager()), None);
    }
}
