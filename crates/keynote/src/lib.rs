//! A from-scratch implementation of the KeyNote trust-management system
//! (RFC 2704), the trust layer of the paper's Secure WebCom framework.
//!
//! KeyNote answers the question *"what can I trust this public key to
//! do?"*: applications describe a requested action as a set of string
//! attributes, supply locally-trusted **policy assertions** plus signed
//! **credentials**, and the compliance checker computes how far the
//! requesting key(s) are authorised.
//!
//! Modules:
//! * [`values`] — ordered compliance value sets;
//! * [`ast`] — assertions, licensee formulas, condition expressions;
//! * [`lexer`] / [`parser`] — the RFC 2704 assertion syntax;
//! * [`print`] — canonical serialisation (used for signing);
//! * [`regex`] — the POSIX-flavoured engine behind `~=`;
//! * [`eval`] — condition evaluation against action attribute sets;
//! * [`signing`] — credential signatures over the canonical text;
//! * [`compliance`] — the delegation fixpoint / compliance checker;
//! * [`compiled`] — the precompiled request-path form of assertions;
//! * [`verify_cache`] — sharded memo cache for signature verdicts;
//! * [`stamp`] — signed verdict stamps (portable verify-cache entries);
//! * [`explain`] — proof-trace variant of the compliance checker;
//! * [`session`] — the `kn_*`-style application API.
//!
//! # Example (the paper's Example 1/2)
//!
//! ```
//! use hetsec_keynote::session::KeyNoteSession;
//!
//! let mut kn = KeyNoteSession::permissive();
//! kn.add_policy(
//!     "Authorizer: POLICY\n\
//!      licensees: \"Kbob\"\n\
//!      Conditions: app_domain==\"SalariesDB\" && (oper==\"read\" || oper==\"write\");\n",
//! ).unwrap();
//! kn.add_credentials(
//!     "Authorizer: \"Kbob\"\n\
//!      licensees: \"Kalice\"\n\
//!      Conditions: app_domain==\"SalariesDB\" && oper==\"write\";\n",
//! ).unwrap();
//! kn.add_action_authorizer("Kalice");
//! kn.add_action_attribute("app_domain", "SalariesDB");
//! kn.add_action_attribute("oper", "write");
//! assert!(kn.query().is_authorized());
//! ```

pub mod ast;
pub mod compiled;
pub mod compliance;
pub mod eval;
pub mod explain;
pub mod lexer;
pub mod parser;
pub mod print;
pub mod regex;
pub mod session;
pub mod signing;
pub mod stamp;
pub mod values;
pub mod verify_cache;

pub use ast::{Assertion, Clause, CmpOp, ConditionsProgram, Expr, LicenseeExpr, Principal, Term};
pub use compiled::{principal_fingerprint, query_compiled, CompiledStore, QueryView, ViewQuery};
pub use compliance::{check_compliance, check_compliance_refs, Query, QueryResult};
pub use eval::ActionAttributes;
pub use explain::{explain_compliance, Explanation, TraceStep};
pub use session::{ActionQuery, KeyNoteSession, SessionError, SignaturePolicy};
pub use signing::{sign_assertion, verify_assertion, SignatureStatus};
pub use stamp::{status_code, status_from_code, VerdictStamp};
pub use values::{ComplianceValue, ComplianceValues, MAX_TRUST, MIN_TRUST};
pub use verify_cache::{credential_fingerprint, VerifyCache, VerifyCacheStats};
