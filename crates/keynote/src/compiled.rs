//! Compiled-assertion evaluation: the request-path form of the
//! compliance checker.
//!
//! The AST produced by the parser is convenient for printing, signing,
//! and inspection, but evaluating it per request repeats work that does
//! not depend on the request at all: `~=` patterns were re-compiled on
//! every evaluation, licensee formulas re-collected their principal
//! lists, and the checker rebuilt the licensee index over the whole
//! store for each query. A [`CompiledAssertion`] is built once, at
//! `add_policy`/`add_credentials` time: regex literals are compiled (a
//! malformed literal is reported once as a compile note and the
//! enclosing test is evaluation-total `false`), principal texts are
//! interned to dense `u32` ids, and the [`CompiledStore`] maintains the
//! licensee index incrementally so a query starts from a prebuilt
//! delegation graph.
//!
//! The compiled evaluator is behaviorally identical to the AST
//! interpreter in [`crate::eval`] / [`crate::compliance`]; the
//! differential and property suites in `tests/` hold the two
//! implementations to the same answers.

use crate::ast::{
    ArithOp, Assertion, Clause, CmpOp, ConditionsProgram, Expr, LicenseeExpr, Principal, Term,
};
use crate::compliance::{Query, QueryResult, POLICY_KEY};
use crate::eval::ActionAttributes;
use crate::parser::format_num;
use crate::print::print_assertion;
use crate::regex::Regex;
use hetsec_crypto::sha256;
use crate::values::{ComplianceValue, ComplianceValues};
use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Dense id for an interned principal text.
pub type PrincipalId = u32;

/// Principal-text interner: text to dense id, id to text.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    ids: HashMap<String, PrincipalId>,
    texts: Vec<String>,
}

impl Interner {
    fn intern(&mut self, text: &str) -> PrincipalId {
        if let Some(&id) = self.ids.get(text) {
            return id;
        }
        let id = self.texts.len() as PrincipalId;
        self.ids.insert(text.to_string(), id);
        self.texts.push(text.to_string());
        id
    }

    /// Id of an already-interned text, if any.
    pub fn get(&self, text: &str) -> Option<PrincipalId> {
        self.ids.get(text).copied()
    }

    /// Text behind an id minted by this interner.
    pub fn text(&self, id: PrincipalId) -> Option<&str> {
        self.texts.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned texts.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// `(text, id)` pairs in id order.
    fn entries(&self) -> impl Iterator<Item = (&str, PrincipalId)> {
        self.texts
            .iter()
            .enumerate()
            .map(|(i, t)| (t.as_str(), i as PrincipalId))
    }

    /// Stable fingerprint of an id minted by this interner — see
    /// [`principal_fingerprint`].
    pub fn fingerprint(&self, id: PrincipalId) -> Option<u64> {
        self.text(id).map(principal_fingerprint)
    }
}

/// Stable 64-bit fingerprint of a principal's canonical text (FNV-1a).
///
/// Dense [`PrincipalId`]s are an artifact of interning order and differ
/// between processes, so anything that must agree *across* nodes — the
/// scheduling fabric's consistent-hash ring partitioning principals
/// over shards — keys off this fingerprint instead. It is not
/// cryptographic; it only needs to be deterministic, well-mixed, and
/// identical on every node that computes it.
pub fn principal_fingerprint(text: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // One final avalanche round (splitmix64 finalizer) so short,
    // similar keys ("K0", "K1", ...) still spread over the ring.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Resolves principal texts to ids during compilation. The store path
/// interns into the persistent [`Interner`]; the per-query path for
/// request-presented credentials layers a scratch map on top without
/// mutating the store.
trait Resolve {
    fn resolve(&mut self, text: &str) -> PrincipalId;
}

impl Resolve for Interner {
    fn resolve(&mut self, text: &str) -> PrincipalId {
        self.intern(text)
    }
}

/// Read-only view over the store interner plus per-query overflow ids
/// for principals that only request-presented credentials mention.
struct ScopedResolver<'a> {
    base: &'a Interner,
    extra: HashMap<String, PrincipalId>,
}

impl<'a> ScopedResolver<'a> {
    fn new(base: &'a Interner) -> Self {
        ScopedResolver {
            base,
            extra: HashMap::new(),
        }
    }

    fn lookup(&self, text: &str) -> Option<PrincipalId> {
        self.base
            .get(text)
            .or_else(|| self.extra.get(text).copied())
    }

    fn total_ids(&self) -> usize {
        self.base.len() + self.extra.len()
    }

    /// `(text, id)` pairs for overlay-only ids, in arbitrary order.
    fn extra_entries(&self) -> impl Iterator<Item = (&str, PrincipalId)> {
        self.extra.iter().map(|(t, &id)| (t.as_str(), id))
    }

    /// Drops the overlay entries, keeping the map's allocation so a
    /// batch can reuse one resolver across requests with different
    /// request-presented credential sets.
    fn reset(&mut self) {
        self.extra.clear();
    }
}

impl Resolve for ScopedResolver<'_> {
    fn resolve(&mut self, text: &str) -> PrincipalId {
        if let Some(id) = self.base.get(text) {
            return id;
        }
        let next = (self.base.len() + self.extra.len()) as PrincipalId;
        *self.extra.entry(text.to_string()).or_insert(next)
    }
}

/// Dense id for an interned action-attribute name.
pub type AttrId = u32;

/// Reserved KeyNote names, classified once at compile time.
#[derive(Clone, Copy, Debug)]
enum RName {
    MinTrust,
    MaxTrust,
    Values,
    ActionAuthorizers,
}

impl RName {
    fn classify(name: &str) -> Option<RName> {
        match name {
            "_MIN_TRUST" => Some(RName::MinTrust),
            "_MAX_TRUST" => Some(RName::MaxTrust),
            "_VALUES" => Some(RName::Values),
            "_ACTION_AUTHORIZERS" => Some(RName::ActionAuthorizers),
            _ => None,
        }
    }
}

/// Everything term/expression compilation needs: the attribute-name
/// interner, the enclosing assertion's local constants (they shadow
/// attributes, so direct references fold to literals at compile time),
/// and the compile-note sink.
struct CompileCtx<'a> {
    attrs: &'a mut dyn Resolve,
    locals: &'a [(String, String)],
    notes: &'a mut Vec<String>,
    origin: &'a str,
}

/// Compiled term. Structurally mirrors [`Term`], except that direct
/// attribute references are resolved at compile time: local constants
/// fold to string literals, reserved names to [`RName`], and everything
/// else to a dense [`AttrId`] slot so evaluation indexes a per-query
/// vector instead of hashing the name. `Deref` keeps the dynamic
/// name-based lookup, as the name is only known per evaluation.
#[derive(Clone, Debug)]
enum CTerm {
    Str(String),
    Num(f64),
    Slot(AttrId),
    Reserved(RName),
    Deref(Box<CTerm>),
    Concat(Box<CTerm>, Box<CTerm>),
    Arith {
        op: ArithOp,
        lhs: Box<CTerm>,
        rhs: Box<CTerm>,
    },
    Neg(Box<CTerm>),
}

impl CTerm {
    fn compile(t: &Term, ctx: &mut CompileCtx<'_>) -> CTerm {
        match t {
            Term::Str(s) => CTerm::Str(s.clone()),
            Term::Num(n) => CTerm::Num(*n),
            Term::Attr(name) => {
                // Mirror the interpreter's lookup order: locals shadow
                // reserved names, which shadow action attributes.
                if let Some((_, v)) = ctx.locals.iter().find(|(n, _)| n == name) {
                    CTerm::Str(v.clone())
                } else if let Some(r) = RName::classify(name) {
                    CTerm::Reserved(r)
                } else {
                    CTerm::Slot(ctx.attrs.resolve(name))
                }
            }
            Term::Deref(inner) => CTerm::Deref(Box::new(CTerm::compile(inner, ctx))),
            Term::Concat(a, b) => CTerm::Concat(
                Box::new(CTerm::compile(a, ctx)),
                Box::new(CTerm::compile(b, ctx)),
            ),
            Term::Arith { op, lhs, rhs } => CTerm::Arith {
                op: *op,
                lhs: Box::new(CTerm::compile(lhs, ctx)),
                rhs: Box::new(CTerm::compile(rhs, ctx)),
            },
            Term::Neg(inner) => CTerm::Neg(Box::new(CTerm::compile(inner, ctx))),
        }
    }
}

/// Compiled boolean expression. Comparisons carry the precomputed
/// numeric-mode flag; `~=` against a literal pattern holds the compiled
/// regex (or [`CExpr::BadRegex`] when the literal does not compile).
#[derive(Clone, Debug)]
enum CExpr {
    Const(bool),
    Or(Box<CExpr>, Box<CExpr>),
    And(Box<CExpr>, Box<CExpr>),
    Not(Box<CExpr>),
    Cmp {
        op: CmpOp,
        numeric: bool,
        lhs: CTerm,
        rhs: CTerm,
    },
    /// `lhs ~= "literal"` with the pattern compiled once.
    RegexStatic { lhs: CTerm, re: Regex },
    /// Pattern derived from attributes: compiled per evaluation, as the
    /// interpreter does.
    RegexDynamic { lhs: CTerm, pattern: CTerm },
    /// Literal pattern that failed to compile: evaluation-total `false`,
    /// reported once as a compile note.
    BadRegex,
}

impl CExpr {
    fn compile(e: &Expr, ctx: &mut CompileCtx<'_>) -> CExpr {
        match e {
            Expr::True => CExpr::Const(true),
            Expr::False => CExpr::Const(false),
            Expr::Or(a, b) => CExpr::Or(
                Box::new(CExpr::compile(a, ctx)),
                Box::new(CExpr::compile(b, ctx)),
            ),
            Expr::And(a, b) => CExpr::And(
                Box::new(CExpr::compile(a, ctx)),
                Box::new(CExpr::compile(b, ctx)),
            ),
            Expr::Not(inner) => CExpr::Not(Box::new(CExpr::compile(inner, ctx))),
            Expr::Cmp { op, lhs, rhs } => CExpr::Cmp {
                op: *op,
                numeric: lhs.is_numeric_syntax() || rhs.is_numeric_syntax(),
                lhs: CTerm::compile(lhs, ctx),
                rhs: CTerm::compile(rhs, ctx),
            },
            Expr::RegexMatch { lhs, pattern } => match pattern {
                Term::Str(pat) => match Regex::new(pat) {
                    Ok(re) => CExpr::RegexStatic {
                        lhs: CTerm::compile(lhs, ctx),
                        re,
                    },
                    Err(err) => {
                        let origin = ctx.origin;
                        ctx.notes.push(format!(
                            "{origin}: bad regex pattern {pat:?} ({err:?}); \
                             the enclosing test always evaluates to false"
                        ));
                        CExpr::BadRegex
                    }
                },
                other => CExpr::RegexDynamic {
                    lhs: CTerm::compile(lhs, ctx),
                    pattern: CTerm::compile(other, ctx),
                },
            },
        }
    }
}

/// Compiled conditions clause; `Arrow` keeps the value *name* so that
/// `set_values` never forces a recompile (value sets are tiny and the
/// name is resolved per evaluation, exactly as the interpreter does).
#[derive(Clone, Debug)]
enum CClause {
    Bare(CExpr),
    Arrow(CExpr, String),
    Nested(CExpr, CProgram),
}

/// Compiled conditions program.
#[derive(Clone, Debug, Default)]
struct CProgram {
    clauses: Vec<CClause>,
}

impl CProgram {
    fn compile(p: &ConditionsProgram, ctx: &mut CompileCtx<'_>) -> CProgram {
        CProgram {
            clauses: p
                .clauses
                .iter()
                .map(|c| match c {
                    Clause::Bare(e) => CClause::Bare(CExpr::compile(e, ctx)),
                    Clause::Arrow(e, v) => CClause::Arrow(CExpr::compile(e, ctx), v.clone()),
                    Clause::Nested(e, inner) => {
                        CClause::Nested(CExpr::compile(e, ctx), CProgram::compile(inner, ctx))
                    }
                })
                .collect(),
        }
    }
}

/// Compiled licensees formula over interned principal ids.
#[derive(Clone, Debug)]
enum CLicensees {
    Principal(PrincipalId),
    And(Box<CLicensees>, Box<CLicensees>),
    Or(Box<CLicensees>, Box<CLicensees>),
    KOf(usize, Vec<CLicensees>),
}

impl CLicensees {
    fn compile(l: &LicenseeExpr, resolver: &mut dyn Resolve) -> CLicensees {
        match l {
            LicenseeExpr::Principal(p) => CLicensees::Principal(resolver.resolve(p)),
            LicenseeExpr::And(a, b) => CLicensees::And(
                Box::new(CLicensees::compile(a, resolver)),
                Box::new(CLicensees::compile(b, resolver)),
            ),
            LicenseeExpr::Or(a, b) => CLicensees::Or(
                Box::new(CLicensees::compile(a, resolver)),
                Box::new(CLicensees::compile(b, resolver)),
            ),
            LicenseeExpr::KOf(k, items) => CLicensees::KOf(
                *k,
                items
                    .iter()
                    .map(|i| CLicensees::compile(i, resolver))
                    .collect(),
            ),
        }
    }

    fn collect_ids(&self, out: &mut Vec<PrincipalId>) {
        match self {
            CLicensees::Principal(id) => out.push(*id),
            CLicensees::And(a, b) | CLicensees::Or(a, b) => {
                a.collect_ids(out);
                b.collect_ids(out);
            }
            CLicensees::KOf(_, items) => {
                for i in items {
                    i.collect_ids(out);
                }
            }
        }
    }

    fn value(&self, support: &[ComplianceValue], min: ComplianceValue) -> ComplianceValue {
        match self {
            CLicensees::Principal(id) => support.get(*id as usize).copied().unwrap_or(min),
            CLicensees::And(a, b) => a.value(support, min).and(b.value(support, min)),
            CLicensees::Or(a, b) => a.value(support, min).or(b.value(support, min)),
            CLicensees::KOf(k, items) => {
                let mut vals: Vec<ComplianceValue> =
                    items.iter().map(|i| i.value(support, min)).collect();
                vals.sort_unstable_by(|a, b| b.cmp(a));
                match k.checked_sub(1) {
                    Some(i) => vals.get(i).copied().unwrap_or(min),
                    None => min,
                }
            }
        }
    }
}

/// An assertion compiled for evaluation: interned authorizer, compiled
/// licensees with the deduplicated principal ids the licensee index
/// needs, and the compiled conditions program.
#[derive(Clone, Debug)]
pub struct CompiledAssertion {
    /// Interned authorizer id (`POLICY` interns its sentinel text).
    authorizer: PrincipalId,
    licensees: Option<CLicensees>,
    /// Deduplicated ids mentioned by the licensees formula — the edges
    /// of the delegation graph.
    licensee_ids: Vec<PrincipalId>,
    conditions: Option<CProgram>,
    local_constants: Vec<(String, String)>,
}

impl CompiledAssertion {
    fn compile(
        a: &Assertion,
        principals: &mut dyn Resolve,
        attrs: &mut dyn Resolve,
        notes: &mut Vec<String>,
    ) -> Self {
        let authorizer_text = match &a.authorizer {
            Principal::Policy => POLICY_KEY,
            Principal::Key(k) => k.as_str(),
        };
        let origin = format!("assertion by {}", a.authorizer);
        let authorizer = principals.resolve(authorizer_text);
        let licensees = a
            .licensees
            .as_ref()
            .map(|l| CLicensees::compile(l, principals));
        let mut licensee_ids = Vec::new();
        if let Some(lic) = &licensees {
            lic.collect_ids(&mut licensee_ids);
            licensee_ids.sort_unstable();
            licensee_ids.dedup();
        }
        let mut ctx = CompileCtx {
            attrs,
            locals: &a.local_constants,
            notes,
            origin: &origin,
        };
        let conditions = a.conditions.as_ref().map(|p| CProgram::compile(p, &mut ctx));
        CompiledAssertion {
            authorizer,
            licensees,
            licensee_ids,
            conditions,
            local_constants: a.local_constants.clone(),
        }
    }
}

/// The session-resident compiled store: every stored assertion in
/// compiled form, a persistent interner, and the incrementally
/// maintained licensee index (`principal id -> assertions mentioning it
/// as a licensee`).
#[derive(Clone, Debug, Default)]
pub struct CompiledStore {
    interner: Interner,
    /// Action-attribute name interner: every directly referenced
    /// attribute gets a dense slot id so evaluation indexes a per-query
    /// value vector instead of hashing the name.
    attr_names: Interner,
    assertions: Vec<CompiledAssertion>,
    /// Per-assertion content fingerprint: SHA-256 over the normalized
    /// (`print_assertion`) source text. Index-parallel to `assertions`;
    /// the identity incremental analyses key their caches on.
    fingerprints: Vec<[u8; 32]>,
    /// Indexed by `PrincipalId`; extended as the interner grows.
    by_licensee: Vec<Vec<u32>>,
    notes: Vec<String>,
}

/// The difference between two stores in fingerprint space, as computed
/// by [`CompiledStore::delta`]. Indices refer to each store's own
/// assertion list; principal deltas are reported as text because the
/// two stores intern independently.
#[derive(Clone, Debug, Default)]
pub struct StoreDelta {
    /// Indices (in the *old* store) of assertions absent from the new.
    pub removed: Vec<usize>,
    /// Indices (in the *new* store) of assertions absent from the old.
    pub added: Vec<usize>,
    /// Principal texts whose licensee-edge set (the assertions
    /// mentioning them as a licensee, by fingerprint) differs between
    /// the stores — the dirty frontier of the delegation graph.
    pub touched_principals: BTreeSet<String>,
}

impl StoreDelta {
    /// True when the stores hold the same assertion multiset.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

impl CompiledStore {
    /// Compiles and stores one assertion, updating the licensee index.
    pub fn add(&mut self, a: &Assertion) {
        let idx = self.assertions.len() as u32;
        let compiled = CompiledAssertion::compile(
            a,
            &mut self.interner,
            &mut self.attr_names,
            &mut self.notes,
        );
        if self.by_licensee.len() < self.interner.len() {
            self.by_licensee.resize(self.interner.len(), Vec::new());
        }
        for &id in &compiled.licensee_ids {
            self.by_licensee[id as usize].push(idx);
        }
        self.fingerprints.push(sha256(print_assertion(a).as_bytes()));
        self.assertions.push(compiled);
    }

    /// Removes the assertion at `idx`, shifting later assertions down
    /// one slot (exactly like `Vec::remove`) and rewriting the licensee
    /// index in place. Interned principal texts are never reclaimed —
    /// ids stay stable — but a stale principal with no remaining edges
    /// is invisible to evaluation and to the delegation iterator.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds.
    pub fn remove(&mut self, idx: usize) {
        assert!(idx < self.assertions.len(), "remove past end of store");
        self.assertions.remove(idx);
        self.fingerprints.remove(idx);
        let removed = idx as u32;
        for list in &mut self.by_licensee {
            list.retain(|&i| i != removed);
            for i in list.iter_mut() {
                if *i > removed {
                    *i -= 1;
                }
            }
        }
    }

    /// Replaces the assertion at `idx` with a recompile of `a`, keeping
    /// every other slot (and the interner) untouched.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds.
    pub fn replace(&mut self, idx: usize, a: &Assertion) {
        assert!(idx < self.assertions.len(), "replace past end of store");
        let compiled = CompiledAssertion::compile(
            a,
            &mut self.interner,
            &mut self.attr_names,
            &mut self.notes,
        );
        if self.by_licensee.len() < self.interner.len() {
            self.by_licensee.resize(self.interner.len(), Vec::new());
        }
        let slot = idx as u32;
        for &old in &self.assertions[idx].licensee_ids {
            self.by_licensee[old as usize].retain(|&i| i != slot);
        }
        for &id in &compiled.licensee_ids {
            self.by_licensee[id as usize].push(slot);
            self.by_licensee[id as usize].sort_unstable();
        }
        self.fingerprints[idx] = sha256(print_assertion(a).as_bytes());
        self.assertions[idx] = compiled;
    }

    /// The SHA-256 fingerprint of the assertion at `idx`: a hash of its
    /// normalized source text, stable across stores and sessions.
    pub fn fingerprint(&self, idx: usize) -> Option<&[u8; 32]> {
        self.fingerprints.get(idx)
    }

    /// All assertion fingerprints, index-parallel to the store.
    pub fn fingerprints(&self) -> &[[u8; 32]] {
        &self.fingerprints
    }

    /// The interned authorizer id of the assertion at `idx`.
    pub fn authorizer_of(&self, idx: usize) -> Option<PrincipalId> {
        self.assertions.get(idx).map(|a| a.authorizer)
    }

    /// The deduplicated licensee ids of the assertion at `idx` — its
    /// out-edges in the delegation graph.
    pub fn licensees_of(&self, idx: usize) -> Option<&[PrincipalId]> {
        self.assertions.get(idx).map(|a| a.licensee_ids.as_slice())
    }

    /// The licensee index entry for a principal: indices of every
    /// stored assertion mentioning it as a licensee, ascending.
    pub fn assertions_licensing(&self, id: PrincipalId) -> &[u32] {
        self.by_licensee
            .get(id as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Diffs this store (old) against `new` in fingerprint space:
    /// which assertions were removed/added, and which principals'
    /// licensee-edge sets changed. Cost is O(old + new) hashmap work —
    /// no recompilation, no evaluation.
    pub fn delta(&self, new: &CompiledStore) -> StoreDelta {
        // Multiset diff over fingerprints. Count occurrences in the new
        // store, then drain them with the old store's — leftovers on
        // either side are the added/removed sets.
        let mut counts: HashMap<&[u8; 32], isize> = HashMap::new();
        for fp in &new.fingerprints {
            *counts.entry(fp).or_insert(0) += 1;
        }
        let mut removed = Vec::new();
        for (idx, fp) in self.fingerprints.iter().enumerate() {
            match counts.get_mut(fp) {
                Some(n) if *n > 0 => *n -= 1,
                _ => removed.push(idx),
            }
        }
        let mut counts_old: HashMap<&[u8; 32], isize> = HashMap::new();
        for fp in &self.fingerprints {
            *counts_old.entry(fp).or_insert(0) += 1;
        }
        let mut added = Vec::new();
        for (idx, fp) in new.fingerprints.iter().enumerate() {
            match counts_old.get_mut(fp) {
                Some(n) if *n > 0 => *n -= 1,
                _ => added.push(idx),
            }
        }

        // Licensee-edge deltas, in text space: for each principal, the
        // multiset of fingerprints of assertions licensing it.
        let mut touched_principals = BTreeSet::new();
        let edges = |store: &CompiledStore| {
            let mut map: HashMap<String, Vec<[u8; 32]>> = HashMap::new();
            for (idx, list) in store.by_licensee.iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                let Some(text) = store.interner.text(idx as PrincipalId) else {
                    continue;
                };
                let mut fps: Vec<[u8; 32]> = list
                    .iter()
                    .map(|&i| store.fingerprints[i as usize])
                    .collect();
                fps.sort_unstable();
                map.insert(text.to_string(), fps);
            }
            map
        };
        let old_edges = edges(self);
        let new_edges = edges(new);
        for (p, fps) in &old_edges {
            if new_edges.get(p) != Some(fps) {
                touched_principals.insert(p.clone());
            }
        }
        for p in new_edges.keys() {
            if !old_edges.contains_key(p) {
                touched_principals.insert(p.clone());
            }
        }

        StoreDelta {
            removed,
            added,
            touched_principals,
        }
    }

    /// Number of compiled assertions.
    pub fn len(&self) -> usize {
        self.assertions.len()
    }

    /// True when no assertions are stored.
    pub fn is_empty(&self) -> bool {
        self.assertions.is_empty()
    }

    /// Compile-time diagnostics (currently: malformed regex literals),
    /// in the order the offending assertions were added.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// The principal-text interner: static analyses reuse the same
    /// dense ids the evaluator runs on.
    pub fn principals(&self) -> &Interner {
        &self.interner
    }

    /// Interned id of the `POLICY` sentinel, if any stored assertion is
    /// a policy assertion.
    pub fn policy_id(&self) -> Option<PrincipalId> {
        self.interner.get(POLICY_KEY)
    }

    /// Delegation edges, one tuple per stored assertion:
    /// `(assertion index, authorizer id, licensee ids)`. An assertion
    /// with no licensees contributes an empty id slice.
    pub fn delegations(&self) -> impl Iterator<Item = (usize, PrincipalId, &[PrincipalId])> {
        self.assertions
            .iter()
            .enumerate()
            .map(|(i, a)| (i, a.authorizer, a.licensee_ids.as_slice()))
    }

    /// Number of distinct directly-referenced action-attribute names.
    pub fn attr_name_count(&self) -> usize {
        self.attr_names.len()
    }
}

/// A term's value during compiled evaluation: borrows attribute and
/// literal text instead of cloning per lookup.
enum CValue<'a> {
    Str(Cow<'a, str>),
    Num(f64),
}

impl<'a> CValue<'a> {
    fn as_str(&self) -> Cow<'a, str> {
        match self {
            CValue::Str(s) => s.clone(),
            CValue::Num(n) => Cow::Owned(format_num(*n)),
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            CValue::Num(n) => Some(*n),
            CValue::Str(s) => s.trim().parse::<f64>().ok(),
        }
    }
}

/// Compiled-evaluation environment; reserved-name strings are
/// precomputed once per query, and directly-referenced attributes are
/// read from the per-query slot vector (one hash lookup per distinct
/// name per query, done while building `slots`).
struct CEnv<'a> {
    attrs: &'a ActionAttributes,
    locals: &'a [(String, String)],
    values: &'a ComplianceValues,
    authorizers_text: &'a str,
    values_attr: &'a str,
    /// Indexed by [`AttrId`]: the query's value for each interned
    /// attribute name (`""` when the query does not set it).
    slots: &'a [&'a str],
}

impl<'a> CEnv<'a> {
    /// Slot-indexed attribute read — the compiled fast path.
    fn slot(&self, id: AttrId) -> &'a str {
        self.slots.get(id as usize).copied().unwrap_or("")
    }

    fn reserved(&self, r: RName) -> &'a str {
        match r {
            RName::MinTrust => self.values.names().first().map(String::as_str).unwrap_or(""),
            RName::MaxTrust => self.values.names().last().map(String::as_str).unwrap_or(""),
            RName::Values => self.values_attr,
            RName::ActionAuthorizers => self.authorizers_text,
        }
    }

    /// Full name-based lookup, used only by `Deref` (the name is
    /// computed per evaluation, so it cannot be slotted at compile
    /// time). Mirrors the interpreter's order: locals, reserved names,
    /// then action attributes.
    fn lookup(&self, name: &str) -> Cow<'a, str> {
        if let Some((_, v)) = self.locals.iter().find(|(n, _)| n == name) {
            return Cow::Borrowed(v.as_str());
        }
        match RName::classify(name) {
            Some(r) => Cow::Borrowed(self.reserved(r)),
            None => Cow::Borrowed(self.attrs.get(name)),
        }
    }
}

/// Evaluation failures conservatively fail the enclosing test, exactly
/// as in the interpreter.
enum CFail {
    NotNumeric,
    DivByZero,
}

fn eval_cterm<'a>(t: &'a CTerm, env: &CEnv<'a>) -> Result<CValue<'a>, CFail> {
    match t {
        CTerm::Str(s) => Ok(CValue::Str(Cow::Borrowed(s.as_str()))),
        CTerm::Num(n) => Ok(CValue::Num(*n)),
        CTerm::Slot(id) => Ok(CValue::Str(Cow::Borrowed(env.slot(*id)))),
        CTerm::Reserved(r) => Ok(CValue::Str(Cow::Borrowed(env.reserved(*r)))),
        CTerm::Deref(inner) => {
            let name = eval_cterm(inner, env)?.as_str();
            Ok(CValue::Str(env.lookup(&name)))
        }
        CTerm::Concat(a, b) => {
            let av = eval_cterm(a, env)?.as_str();
            let bv = eval_cterm(b, env)?.as_str();
            Ok(CValue::Str(Cow::Owned(format!("{av}{bv}"))))
        }
        CTerm::Arith { op, lhs, rhs } => {
            let a = eval_cterm(lhs, env)?.as_num().ok_or(CFail::NotNumeric)?;
            let b = eval_cterm(rhs, env)?.as_num().ok_or(CFail::NotNumeric)?;
            let r = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => {
                    if b == 0.0 {
                        return Err(CFail::DivByZero);
                    }
                    a / b
                }
                ArithOp::Mod => {
                    if b == 0.0 {
                        return Err(CFail::DivByZero);
                    }
                    a % b
                }
                ArithOp::Pow => a.powf(b),
            };
            Ok(CValue::Num(r))
        }
        CTerm::Neg(inner) => {
            let v = eval_cterm(inner, env)?.as_num().ok_or(CFail::NotNumeric)?;
            Ok(CValue::Num(-v))
        }
    }
}

fn cmp_bool<T: PartialOrd>(op: CmpOp, a: T, b: T) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Gt => a > b,
        CmpOp::Le => a <= b,
        CmpOp::Ge => a >= b,
    }
}

fn eval_cexpr(e: &CExpr, env: &CEnv<'_>) -> bool {
    match e {
        CExpr::Const(b) => *b,
        CExpr::Or(a, b) => eval_cexpr(a, env) || eval_cexpr(b, env),
        CExpr::And(a, b) => eval_cexpr(a, env) && eval_cexpr(b, env),
        CExpr::Not(inner) => !eval_cexpr(inner, env),
        CExpr::Cmp {
            op,
            numeric,
            lhs,
            rhs,
        } => {
            let (Ok(lv), Ok(rv)) = (eval_cterm(lhs, env), eval_cterm(rhs, env)) else {
                return false;
            };
            if *numeric {
                let (Some(a), Some(b)) = (lv.as_num(), rv.as_num()) else {
                    return false;
                };
                cmp_bool(*op, a, b)
            } else {
                cmp_bool(*op, lv.as_str().as_ref(), rv.as_str().as_ref())
            }
        }
        CExpr::RegexStatic { lhs, re } => {
            let Ok(subject) = eval_cterm(lhs, env) else {
                return false;
            };
            re.is_match(&subject.as_str())
        }
        CExpr::RegexDynamic { lhs, pattern } => {
            let (Ok(subject), Ok(pat)) = (eval_cterm(lhs, env), eval_cterm(pattern, env)) else {
                return false;
            };
            match Regex::new(&pat.as_str()) {
                Ok(re) => re.is_match(&subject.as_str()),
                Err(_) => false,
            }
        }
        CExpr::BadRegex => false,
    }
}

fn eval_cprogram(prog: &CProgram, env: &CEnv<'_>, values: &ComplianceValues) -> ComplianceValue {
    let mut best = values.min();
    for clause in &prog.clauses {
        let contributed = match clause {
            CClause::Bare(test) => {
                if eval_cexpr(test, env) {
                    values.max()
                } else {
                    continue;
                }
            }
            CClause::Arrow(test, value_name) => {
                if eval_cexpr(test, env) {
                    values.index_of(value_name).unwrap_or_else(|| values.min())
                } else {
                    continue;
                }
            }
            CClause::Nested(test, inner) => {
                if eval_cexpr(test, env) {
                    eval_cprogram(inner, env, values)
                } else {
                    continue;
                }
            }
        };
        best = best.or(contributed);
    }
    best
}

/// Runs the compliance fixpoint over the compiled store, optionally
/// extended with request-presented credentials (compiled against a
/// scratch id space layered over the store's interner — the store is
/// not mutated). The caller vets `extra` (signature policy, no POLICY
/// authorizers) exactly as for the AST path.
/// One borrowed query for [`QueryView`]: who asks, the action
/// attributes, and the (already vetted) request-presented credentials.
/// Nothing is cloned — every field borrows the caller's data for the
/// duration of the batch call.
pub struct ViewQuery<'q> {
    /// The requesting principals.
    pub authorizers: &'q [&'q str],
    /// The action attribute set.
    pub attributes: &'q ActionAttributes,
    /// Request-scoped credentials. Callers are expected to have vetted
    /// them already (the session's signature policy); the view treats
    /// them as trustworthy overlay assertions.
    pub extra: &'q [&'q Assertion],
}

impl ViewQuery<'_> {
    /// True when `other` is the *same* query by identity: equal
    /// requester lists, the same attribute map (by address) and the
    /// same extra-credential slice (by address). Identity, not
    /// equality, so the check is O(principals) — batch producers that
    /// want coincident requests collapsed sort them adjacent and share
    /// the borrowed attribute set.
    fn coincides_with(&self, other: &ViewQuery<'_>) -> bool {
        self.authorizers == other.authorizers
            && std::ptr::eq(self.attributes, other.attributes)
            && std::ptr::eq(self.extra.as_ptr(), other.extra.as_ptr())
            && self.extra.len() == other.extra.len()
    }
}

/// A borrowed, reusable evaluation context over a [`CompiledStore`]:
/// the batch-first decision path.
///
/// [`query_compiled`] allocates its worklist scratch (support vector,
/// queue, per-assertion condition memo, attribute slot table, overlay
/// resolvers) afresh on every call, and a [`Query`] clones the
/// attribute map, value set and revocation list per request. A
/// `QueryView` borrows the store, value set and revocation list once
/// and keeps every scratch buffer across requests, so a batch of
/// queries pays for setup once: buffers are cleared, not reallocated;
/// the request-credential id overlay is rebuilt only when the
/// presented-credential set changes between consecutive requests; and
/// consecutive *coincident* requests (same principals, same borrowed
/// attribute set, same credentials) are collapsed into a single
/// fixpoint pass.
pub struct QueryView<'a> {
    store: &'a CompiledStore,
    values: &'a ComplianceValues,
    revoked: &'a BTreeSet<String>,
    /// `_VALUES` pseudo-attribute, rendered once per view.
    values_attr: String,
    /// Revocation flags over the store's interned ids, computed once
    /// per view; overlay ids are appended per credential set.
    base_revoked: Vec<bool>,
    // ---- lifetime-free scratch, reused across requests ----
    support: Vec<ComplianceValue>,
    queue: VecDeque<u32>,
    queued: Vec<bool>,
    cond_values: Vec<Option<ComplianceValue>>,
    extra_notes: Vec<String>,
}

impl<'a> QueryView<'a> {
    /// A view borrowing the store, the compliance value set and the
    /// revocation list. No part of the query state is cloned.
    pub fn new(
        store: &'a CompiledStore,
        values: &'a ComplianceValues,
        revoked: &'a BTreeSet<String>,
    ) -> Self {
        let mut base_revoked = vec![false; store.interner.len()];
        for key in revoked {
            if let Some(id) = store.interner.get(key) {
                base_revoked[id as usize] = true;
            }
        }
        QueryView {
            store,
            values,
            revoked,
            values_attr: values.values_attribute(),
            base_revoked,
            support: Vec::new(),
            queue: VecDeque::new(),
            queued: Vec::new(),
            cond_values: Vec::new(),
            extra_notes: Vec::new(),
        }
    }

    /// Evaluates one query through the view (a batch of one).
    pub fn query_one(&mut self, query: &ViewQuery<'_>) -> QueryResult {
        self.query_batch(std::slice::from_ref(query))
            .pop()
            .expect("batch of one yields one result")
    }

    /// Evaluates a batch of queries, reusing every scratch buffer
    /// across elements. Results are returned in input order and are
    /// element-wise identical to evaluating each query on its own.
    pub fn query_batch(&mut self, queries: &[ViewQuery<'_>]) -> Vec<QueryResult> {
        let store = self.store;
        let values = self.values;
        let revoked_keys = self.revoked;
        let values_attr = self.values_attr.as_str();
        let base_revoked = &self.base_revoked;
        let min = values.min();
        let max = values.max();
        let base_count = store.assertions.len();

        let mut out: Vec<QueryResult> = Vec::with_capacity(queries.len());
        // Overlay state shared across the batch, rebuilt only when the
        // presented-credential slice changes between requests.
        let mut resolver = ScopedResolver::new(&store.interner);
        let mut attr_resolver = ScopedResolver::new(&store.attr_names);
        let mut extra_compiled: Vec<CompiledAssertion> = Vec::new();
        let mut extra_by_licensee: HashMap<PrincipalId, Vec<u32>> = HashMap::new();
        let mut overlay_revoked: Vec<bool> = Vec::new();
        let mut cur_extra: Option<(*const &Assertion, usize)> = None;
        // Slot table: attribute id -> this request's value. Borrows the
        // request's attribute strings, so it lives per batch call.
        let mut slots: Vec<&str> = Vec::new();
        let mut authorizers_text = String::new();

        for (qi, q) in queries.iter().enumerate() {
            // Coincident-request collapse: a request identical (by
            // identity) to its predecessor reuses the predecessor's
            // fixpoint result outright.
            if qi > 0 && q.coincides_with(&queries[qi - 1]) {
                let prev = out[qi - 1].clone();
                out.push(prev);
                continue;
            }

            let extra_id = (q.extra.as_ptr(), q.extra.len());
            if cur_extra != Some(extra_id) {
                // Compile the request-presented credentials into the
                // overlay id space; notes about their bad regex
                // literals are request-scoped and intentionally dropped
                // with the overlay.
                resolver.reset();
                attr_resolver.reset();
                extra_compiled.clear();
                self.extra_notes.clear();
                for a in q.extra {
                    extra_compiled.push(CompiledAssertion::compile(
                        a,
                        &mut resolver,
                        &mut attr_resolver,
                        &mut self.extra_notes,
                    ));
                }
                extra_by_licensee.clear();
                for (i, c) in extra_compiled.iter().enumerate() {
                    for &id in &c.licensee_ids {
                        extra_by_licensee
                            .entry(id)
                            .or_default()
                            .push((base_count + i) as u32);
                    }
                }
                overlay_revoked.clear();
                overlay_revoked.extend_from_slice(base_revoked);
                overlay_revoked.resize(resolver.total_ids(), false);
                for (name, id) in resolver.extra_entries() {
                    if revoked_keys.contains(name) {
                        overlay_revoked[id as usize] = true;
                    }
                }
                cur_extra = Some(extra_id);
            }

            // One hash lookup per distinct attribute name per request:
            // slot id -> the request's value for that name ("" unset).
            slots.clear();
            slots.resize(attr_resolver.total_ids(), "");
            for (name, id) in store.attr_names.entries() {
                slots[id as usize] = q.attributes.get(name);
            }
            for (name, id) in attr_resolver.extra_entries() {
                slots[id as usize] = q.attributes.get(name);
            }
            authorizers_text.clear();
            for (i, a) in q.authorizers.iter().enumerate() {
                if i > 0 {
                    authorizers_text.push(',');
                }
                authorizers_text.push_str(a);
            }

            let total_assertions = base_count + extra_compiled.len();
            let n_ids = resolver.total_ids();
            let revoked = &overlay_revoked;
            let assertion = |idx: u32| -> &CompiledAssertion {
                let idx = idx as usize;
                if idx < base_count {
                    &store.assertions[idx]
                } else {
                    &extra_compiled[idx - base_count]
                }
            };

            // Support assignment over ids; requesters start at max. A
            // requester the interner has never seen cannot appear in
            // any licensees formula, so it cannot influence the
            // fixpoint and is skipped.
            let support = &mut self.support;
            support.clear();
            support.resize(n_ids, min);
            let queue = &mut self.queue;
            queue.clear();
            let queued = &mut self.queued;
            queued.clear();
            queued.resize(total_assertions, false);
            let enqueue_deps =
                |id: PrincipalId, queue: &mut VecDeque<u32>, queued: &mut Vec<bool>| {
                    if let Some(deps) = store.by_licensee.get(id as usize) {
                        for &dep in deps {
                            if !queued[dep as usize] {
                                queued[dep as usize] = true;
                                queue.push_back(dep);
                            }
                        }
                    }
                    if let Some(deps) = extra_by_licensee.get(&id) {
                        for &dep in deps {
                            if !queued[dep as usize] {
                                queued[dep as usize] = true;
                                queue.push_back(dep);
                            }
                        }
                    }
                };
            for a in q.authorizers {
                let Some(id) = resolver.lookup(a) else {
                    continue;
                };
                if revoked[id as usize] || support[id as usize] == max {
                    continue;
                }
                support[id as usize] = max;
                enqueue_deps(id, queue, queued);
            }

            let cond_values = &mut self.cond_values;
            cond_values.clear();
            cond_values.resize(total_assertions, None);
            let mut evaluations = 0usize;
            while let Some(idx) = queue.pop_front() {
                queued[idx as usize] = false;
                let a = assertion(idx);
                if revoked[a.authorizer as usize] {
                    continue; // revoked keys convey nothing
                }
                let Some(lic) = &a.licensees else {
                    continue;
                };
                let cond = *cond_values[idx as usize].get_or_insert_with(|| {
                    evaluations += 1;
                    let env = CEnv {
                        attrs: q.attributes,
                        locals: &a.local_constants,
                        values,
                        authorizers_text: &authorizers_text,
                        values_attr,
                        slots: &slots,
                    };
                    match &a.conditions {
                        None => max,
                        Some(prog) => eval_cprogram(prog, &env, values),
                    }
                });
                if cond == min {
                    continue;
                }
                let assertion_val = cond.and(lic.value(support, min));
                let cur = support[a.authorizer as usize];
                if assertion_val > cur {
                    support[a.authorizer as usize] = assertion_val;
                    enqueue_deps(a.authorizer, queue, queued);
                }
            }

            let value = resolver
                .lookup(POLICY_KEY)
                .map(|id| support[id as usize])
                .unwrap_or(min);
            out.push(QueryResult {
                value,
                value_name: values.name_of(value).to_string(),
                iterations: evaluations,
            });
        }
        out
    }
}

/// Evaluates one [`Query`] against the compiled store: a thin wrapper
/// over a [`QueryView`] batch of one. Callers on the hot path should
/// build a view themselves and batch their requests.
pub fn query_compiled(store: &CompiledStore, extra: &[&Assertion], query: &Query) -> QueryResult {
    let authorizers: Vec<&str> = query.action_authorizers.iter().map(String::as_str).collect();
    let mut view = QueryView::new(store, &query.values, &query.revoked);
    view.query_one(&ViewQuery {
        authorizers: &authorizers,
        attributes: &query.attributes,
        extra,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compliance::check_compliance;
    use crate::parser::parse_assertions;

    fn store_from(text: &str) -> (CompiledStore, Vec<Assertion>) {
        let assertions = parse_assertions(text).unwrap();
        let mut store = CompiledStore::default();
        for a in &assertions {
            store.add(a);
        }
        (store, assertions)
    }

    fn both(text: &str, q: &Query) -> (QueryResult, QueryResult) {
        let (store, assertions) = store_from(text);
        let compiled = query_compiled(&store, &[], q);
        let interpreted = check_compliance(&assertions, q);
        (compiled, interpreted)
    }

    fn query(authorizers: &[&str], attrs: &[(&str, &str)]) -> Query {
        Query::new(
            authorizers.iter().map(|s| s.to_string()).collect(),
            attrs.iter().copied().collect(),
        )
    }

    const FIG2_AND_4: &str = "\
Authorizer: POLICY
licensees: \"Kbob\"
Conditions: app_domain==\"SalariesDB\" && (oper==\"read\" || oper==\"write\");

Authorizer: \"Kbob\"
licensees: \"Kalice\"
Conditions: app_domain==\"SalariesDB\" && oper==\"write\";
";

    #[test]
    fn agrees_with_interpreter_on_paper_examples() {
        for (who, oper) in [
            ("Kbob", "read"),
            ("Kbob", "write"),
            ("Kbob", "drop"),
            ("Kalice", "write"),
            ("Kalice", "read"),
            ("Kmallory", "read"),
        ] {
            let q = query(&[who], &[("app_domain", "SalariesDB"), ("oper", oper)]);
            let (c, i) = both(FIG2_AND_4, &q);
            assert_eq!(c.value, i.value, "{who}/{oper}");
            assert_eq!(c.value_name, i.value_name, "{who}/{oper}");
        }
    }

    #[test]
    fn delegation_and_revocation_agree() {
        let text = "\
Authorizer: POLICY
Licensees: \"Ka\"

Authorizer: \"Ka\"
Licensees: \"Kb\"
";
        let q = query(&["Kb"], &[]);
        let (c, i) = both(text, &q);
        assert!(c.is_authorized() && i.is_authorized());
        let q = query(&["Kb"], &[]).with_revoked(["Ka".to_string()]);
        let (c, i) = both(text, &q);
        assert!(!c.is_authorized() && !i.is_authorized());
    }

    #[test]
    fn threshold_and_cycles_agree() {
        let text = "\
Authorizer: POLICY
Licensees: 2-of(\"Ka\", \"Kb\", \"Kc\")

Authorizer: \"Ka\"
Licensees: \"Kb\"

Authorizer: \"Kb\"
Licensees: \"Ka\"
";
        for reqs in [
            vec!["Ka"],
            vec!["Kb"],
            vec!["Ka", "Kc"],
            vec!["Ka", "Kb", "Kc"],
            vec!["Kz"],
        ] {
            let q = query(&reqs, &[]);
            let (c, i) = both(text, &q);
            assert_eq!(c.value, i.value, "{reqs:?}");
        }
    }

    #[test]
    fn extra_credentials_overlay_does_not_mutate_store() {
        let (store, _) = store_from("Authorizer: POLICY\nLicensees: \"Ka\"\n");
        let interned_before = store.interner.len();
        let delegation = Assertion::new(
            Principal::key("Ka"),
            LicenseeExpr::Principal("Kb".to_string()),
        );
        let q = query(&["Kb"], &[]);
        let r = query_compiled(&store, &[&delegation], &q);
        assert!(r.is_authorized());
        assert_eq!(store.interner.len(), interned_before);
        // Without the overlay the request is denied again.
        assert!(!query_compiled(&store, &[], &q).is_authorized());
    }

    #[test]
    fn bad_regex_literal_is_reported_once_and_always_false() {
        let (store, assertions) = store_from(
            "Authorizer: POLICY\nLicensees: \"Ka\"\nConditions: oper ~= \"(unclosed\";\n",
        );
        assert_eq!(store.notes().len(), 1);
        assert!(store.notes()[0].contains("bad regex"), "{}", store.notes()[0]);
        let q = query(&["Ka"], &[("oper", "read")]);
        let r = query_compiled(&store, &[], &q);
        assert!(!r.is_authorized());
        // And the interpreter agrees on the verdict.
        assert!(!check_compliance(&assertions, &q).is_authorized());
    }

    #[test]
    fn dynamic_regex_pattern_still_per_evaluation() {
        let (store, _) = store_from(
            "Authorizer: POLICY\nLicensees: \"Ka\"\nConditions: oper ~= pat;\n",
        );
        assert!(store.notes().is_empty());
        let q = query(&["Ka"], &[("oper", "read"), ("pat", "^read$")]);
        assert!(query_compiled(&store, &[], &q).is_authorized());
        let q = query(&["Ka"], &[("oper", "read"), ("pat", "(unclosed")]);
        assert!(!query_compiled(&store, &[], &q).is_authorized());
    }

    #[test]
    fn evaluations_counter_matches_worklist_reachability() {
        let mut text = String::from(
            "Authorizer: POLICY\nLicensees: \"Ka\"\nConditions: op==\"go\";\n\n",
        );
        for i in 0..50 {
            text.push_str(&format!(
                "Authorizer: \"Kother{i}\"\nLicensees: \"Kother{}\"\nConditions: op==\"go\";\n\n",
                i + 1
            ));
        }
        let (store, _) = store_from(&text);
        let q = query(&["Ka"], &[("op", "go")]);
        let r = query_compiled(&store, &[], &q);
        assert!(r.is_authorized());
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn non_binary_values_agree() {
        let values = ComplianceValues::with_middle(&["log"]).unwrap();
        let text = "\
Authorizer: POLICY
Licensees: \"Ka\"
Conditions: amount < 10 -> \"_MAX_TRUST\"; amount < 100 -> \"log\";
";
        for amount in ["5", "50", "5000"] {
            let q = Query::new(
                vec!["Ka".to_string()],
                [("amount", amount)].into_iter().collect(),
            )
            .with_values(values.clone());
            let (c, i) = both(text, &q);
            assert_eq!(c.value_name, i.value_name, "amount={amount}");
        }
    }
}
