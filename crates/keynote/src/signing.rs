//! Signing and verification of KeyNote credentials.
//!
//! A credential's signature covers the canonical serialisation of the
//! assertion up to and including the bare `Signature:` label (see
//! [`crate::print::signable_text`]). The authorizer of a signed assertion
//! must be the signing key's printable text, mirroring RFC 2704 where the
//! Authorizer field holds the signer's key.

use crate::ast::{Assertion, Principal};
use crate::print::signable_text;
use hetsec_crypto::{KeyPair, PublicKey, Signature};
use std::fmt;

/// Outcome of verifying one assertion's signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SignatureStatus {
    /// No `Signature` field present.
    Unsigned,
    /// Signature present and valid for the authorizer key.
    Valid,
    /// Signature present but does not verify.
    Invalid,
    /// The authorizer is `POLICY` or a symbolic key that is not a
    /// parseable public key, so the signature cannot be checked.
    Unverifiable,
}

impl fmt::Display for SignatureStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SignatureStatus::Unsigned => "unsigned",
            SignatureStatus::Valid => "valid",
            SignatureStatus::Invalid => "invalid",
            SignatureStatus::Unverifiable => "unverifiable",
        };
        write!(f, "{s}")
    }
}

/// Errors raised when signing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SignError {
    /// Policy assertions are locally trusted and never signed.
    PolicyAssertion,
    /// The assertion's authorizer does not match the signing key.
    AuthorizerMismatch {
        /// Authorizer text in the assertion.
        expected: String,
        /// Signing key text.
        actual: String,
    },
}

impl fmt::Display for SignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignError::PolicyAssertion => write!(f, "cannot sign a POLICY assertion"),
            SignError::AuthorizerMismatch { expected, actual } => write!(
                f,
                "authorizer `{expected}` does not match signing key `{actual}`"
            ),
        }
    }
}

impl std::error::Error for SignError {}

/// Signs `assertion` in place with `key`. The assertion's authorizer must
/// equal the key's printable text.
pub fn sign_assertion(assertion: &mut Assertion, key: &KeyPair) -> Result<(), SignError> {
    let key_text = key.public().to_text();
    match &assertion.authorizer {
        Principal::Policy => return Err(SignError::PolicyAssertion),
        Principal::Key(k) => {
            if *k != key_text {
                return Err(SignError::AuthorizerMismatch {
                    expected: k.clone(),
                    actual: key_text,
                });
            }
        }
    }
    let payload = signable_text(assertion);
    let sig = key.sign(payload.as_bytes());
    assertion.signature = Some(sig.to_text());
    Ok(())
}

/// Verifies `assertion`'s signature (if any).
pub fn verify_assertion(assertion: &Assertion) -> SignatureStatus {
    let Some(sig_text) = &assertion.signature else {
        return SignatureStatus::Unsigned;
    };
    let Principal::Key(key_text) = &assertion.authorizer else {
        return SignatureStatus::Unverifiable;
    };
    let Ok(public) = key_text.parse::<PublicKey>() else {
        return SignatureStatus::Unverifiable;
    };
    let Ok(sig) = sig_text.parse::<Signature>() else {
        return SignatureStatus::Invalid;
    };
    let payload = signable_text(assertion);
    if public.verify(payload.as_bytes(), &sig) {
        SignatureStatus::Valid
    } else {
        SignatureStatus::Invalid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::LicenseeExpr;

    fn credential(authorizer: &str, licensee: &str) -> Assertion {
        Assertion::new(
            Principal::key(authorizer),
            LicenseeExpr::Principal(licensee.to_string()),
        )
    }

    #[test]
    fn sign_then_verify() {
        let kp = KeyPair::from_label("signer");
        let mut a = credential(&kp.public().to_text(), "Kalice");
        sign_assertion(&mut a, &kp).unwrap();
        assert_eq!(verify_assertion(&a), SignatureStatus::Valid);
    }

    #[test]
    fn tampering_invalidates() {
        let kp = KeyPair::from_label("signer2");
        let mut a = credential(&kp.public().to_text(), "Kalice");
        sign_assertion(&mut a, &kp).unwrap();
        a.licensees = Some(LicenseeExpr::Principal("Kmallory".to_string()));
        assert_eq!(verify_assertion(&a), SignatureStatus::Invalid);
    }

    #[test]
    fn wrong_key_rejected_at_sign_time() {
        let kp = KeyPair::from_label("signer3");
        let mut a = credential("rsa-sim:1234:10001", "Kalice");
        let err = sign_assertion(&mut a, &kp).unwrap_err();
        assert!(matches!(err, SignError::AuthorizerMismatch { .. }));
    }

    #[test]
    fn policy_assertions_not_signable() {
        let kp = KeyPair::from_label("signer4");
        let mut a = Assertion::new(
            Principal::Policy,
            LicenseeExpr::Principal("Kalice".to_string()),
        );
        assert_eq!(sign_assertion(&mut a, &kp), Err(SignError::PolicyAssertion));
    }

    #[test]
    fn unsigned_and_unverifiable() {
        let a = credential("Kbob", "Kalice");
        assert_eq!(verify_assertion(&a), SignatureStatus::Unsigned);
        let mut b = credential("Kbob", "Kalice");
        b.signature = Some("sig-rsa-sha256:abcd".to_string());
        assert_eq!(verify_assertion(&b), SignatureStatus::Unverifiable);
    }

    #[test]
    fn malformed_signature_is_invalid() {
        let kp = KeyPair::from_label("signer5");
        let mut a = credential(&kp.public().to_text(), "Kalice");
        a.signature = Some("garbage".to_string());
        assert_eq!(verify_assertion(&a), SignatureStatus::Invalid);
    }
}
