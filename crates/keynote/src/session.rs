//! The application-facing KeyNote API (RFC 2704 §6 / the `kn_*` calls).
//!
//! A [`KeyNoteSession`] mirrors the C API the paper's applications used:
//! create a session, add locally-trusted policy assertions, add signed
//! credentials (verified on entry), describe the action with attributes
//! and authorizers, and ask for the compliance value.

use crate::ast::{Assertion, Principal};
use crate::compiled::{CompiledStore, QueryView, ViewQuery};
use crate::compliance::{check_compliance_refs, Query, QueryResult};
use crate::eval::ActionAttributes;
use crate::parser::{parse_assertions, ParseError};
use crate::signing::SignatureStatus;
use crate::values::ComplianceValues;
use crate::verify_cache::{VerifyCache, VerifyCacheStats};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Errors from session operations.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionError {
    /// Assertion text failed to parse.
    Parse(ParseError),
    /// A credential's signature did not verify.
    BadSignature {
        /// The authorizer of the offending credential.
        authorizer: String,
        /// The verification outcome.
        status: SignatureStatus,
    },
    /// A credential's authorizer was `POLICY`; policy assertions must be
    /// added through [`KeyNoteSession::add_policy`].
    PolicyViaCredential,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "parse error: {e}"),
            SessionError::BadSignature { authorizer, status } => {
                write!(f, "credential from `{authorizer}` has {status} signature")
            }
            SessionError::PolicyViaCredential => {
                write!(f, "POLICY assertions must be added via add_policy")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}

/// How strictly credentials are vetted on entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SignaturePolicy {
    /// Credentials must carry a signature that verifies against the
    /// authorizer key. Symbolic (non-key) authorizers are rejected.
    #[default]
    Require,
    /// Accept unsigned and symbolic credentials (used for worked
    /// examples mirroring the paper's `Kbob`-style principals, and for
    /// policy translation pipelines that sign in a later step).
    Permissive,
}

/// The requesting principals of an [`ActionQuery`]: either one key or
/// a borrowed list. Keeping the one-key case inline lets single-
/// principal callers build a query with zero allocations.
#[derive(Clone, Copy, Debug)]
enum PrincipalSet<'a> {
    One(&'a str),
    Many(&'a [&'a str]),
}

/// A borrowed, builder-style action query — the single entry point that
/// replaced `query_action` / `query_action_with_extra` /
/// `query_action_interpreted`, mirroring webcom's `AuthzRequest`.
/// Every field borrows the caller's data; nothing is cloned to ask a
/// question.
///
/// ```
/// # use hetsec_keynote::{ActionQuery, KeyNoteSession};
/// # use hetsec_keynote::eval::ActionAttributes;
/// # let session = KeyNoteSession::permissive();
/// let attrs = ActionAttributes::new().with("app_domain", "SalariesDB").with("oper", "read");
/// let result = session.evaluate(&ActionQuery::principal("Kalice").attributes(&attrs));
/// # let _ = result;
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ActionQuery<'a> {
    principals: PrincipalSet<'a>,
    attributes: Option<&'a ActionAttributes>,
    extra: &'a [Assertion],
    interpreted: bool,
}

impl<'a> ActionQuery<'a> {
    /// A query from a single requesting principal.
    pub fn principal(key_text: &'a str) -> Self {
        ActionQuery {
            principals: PrincipalSet::One(key_text),
            attributes: None,
            extra: &[],
            interpreted: false,
        }
    }

    /// A query from several requesting principals.
    pub fn principals(key_texts: &'a [&'a str]) -> Self {
        ActionQuery {
            principals: PrincipalSet::Many(key_texts),
            attributes: None,
            extra: &[],
            interpreted: false,
        }
    }

    /// Borrows the action attribute set (defaults to empty).
    pub fn attributes(mut self, attrs: &'a ActionAttributes) -> Self {
        self.attributes = Some(attrs);
        self
    }

    /// Considers `extra` credentials for this one evaluation —
    /// request-scoped: they are vetted like stored credentials
    /// (POLICY-authored ones are ignored; under
    /// [`SignaturePolicy::Require`] unverifiable ones are ignored) but
    /// are never added to the session, so they cannot leak authority
    /// into later queries.
    pub fn extra(mut self, extra: &'a [Assertion]) -> Self {
        self.extra = extra;
        self
    }

    /// Routes this query through the AST-interpreting reference path
    /// instead of the compiled engine (differential tests, cold
    /// benchmark baselines). Extra credentials are re-verified without
    /// the signature memo.
    pub fn interpreted(mut self) -> Self {
        self.interpreted = true;
        self
    }

    fn principal_list(&self) -> &[&'a str] {
        match &self.principals {
            PrincipalSet::One(key) => std::slice::from_ref(key),
            PrincipalSet::Many(keys) => keys,
        }
    }
}

/// A KeyNote evaluation session.
#[derive(Clone, Debug)]
pub struct KeyNoteSession {
    policies: Vec<Assertion>,
    credentials: Vec<Assertion>,
    /// Request-path form of `policies ++ credentials`, maintained
    /// incrementally as assertions are added. The AST vectors above stay
    /// the source of truth for printing, signing, and the interpreted
    /// reference path.
    compiled: CompiledStore,
    /// Signature-verdict memo for request-presented credentials. Shared
    /// across clones: a verdict is a fact about credential bytes, not
    /// about this session's state.
    verify_cache: Arc<VerifyCache>,
    attributes: ActionAttributes,
    authorizers: Vec<String>,
    values: ComplianceValues,
    signature_policy: SignaturePolicy,
    revoked: BTreeSet<String>,
    /// Bumped on every mutation that can change a query's answer
    /// (policy/credential/value-set/revocation changes — not per-action
    /// attribute or authorizer state). Lets callers cache decisions and
    /// invalidate them when the session's semantics move.
    epoch: u64,
}

impl Default for KeyNoteSession {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyNoteSession {
    /// A session requiring valid signatures on credentials.
    pub fn new() -> Self {
        KeyNoteSession {
            policies: Vec::new(),
            credentials: Vec::new(),
            compiled: CompiledStore::default(),
            verify_cache: Arc::new(VerifyCache::new()),
            attributes: ActionAttributes::new(),
            authorizers: Vec::new(),
            values: ComplianceValues::binary(),
            signature_policy: SignaturePolicy::Require,
            revoked: BTreeSet::new(),
            epoch: 0,
        }
    }

    /// A session accepting unsigned/symbolic credentials.
    pub fn permissive() -> Self {
        KeyNoteSession {
            signature_policy: SignaturePolicy::Permissive,
            ..Self::new()
        }
    }

    /// The session's mutation epoch. It rises monotonically whenever
    /// policies, credentials, the value set, or the revocation list
    /// change — i.e. whenever a previously computed query answer may no
    /// longer hold. Per-action state (attributes, authorizers) does not
    /// move the epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Replaces the compliance value set.
    pub fn set_values(&mut self, values: ComplianceValues) {
        self.values = values;
        self.bump_epoch();
    }

    /// Revokes a key: it conveys no authority in subsequent queries,
    /// neither as a requester nor as an intermediate delegator (the
    /// certificate-revocation check conventional applications perform).
    pub fn revoke_key(&mut self, key_text: impl Into<String>) {
        self.revoked.insert(key_text.into());
        self.bump_epoch();
    }

    /// Reinstates a previously revoked key.
    pub fn reinstate_key(&mut self, key_text: &str) -> bool {
        let removed = self.revoked.remove(key_text);
        if removed {
            self.bump_epoch();
        }
        removed
    }

    /// The currently revoked keys.
    pub fn revoked_keys(&self) -> impl Iterator<Item = &str> {
        self.revoked.iter().map(String::as_str)
    }

    /// Adds locally-trusted policy assertions from text. Every assertion
    /// in the text must have authorizer `POLICY`.
    pub fn add_policy(&mut self, text: &str) -> Result<usize, SessionError> {
        let parsed = parse_assertions(text)?;
        let mut count = 0;
        for a in parsed {
            // Policy assertions are locally trusted by definition; the
            // paper's Figure 5 stores the whole RBAC table in one.
            if a.authorizer != Principal::Policy {
                // Assertions with key authorizers inside a policy file
                // are treated as bundled credentials.
                self.add_credential_parsed(a)?;
            } else {
                self.compiled.add(&a);
                self.policies.push(a);
                self.bump_epoch();
            }
            count += 1;
        }
        Ok(count)
    }

    /// Adds one pre-parsed policy assertion.
    pub fn add_policy_assertion(&mut self, assertion: Assertion) -> Result<(), SessionError> {
        if assertion.authorizer != Principal::Policy {
            return self.add_credential_parsed(assertion);
        }
        self.compiled.add(&assertion);
        self.policies.push(assertion);
        self.bump_epoch();
        Ok(())
    }

    /// Adds signed credentials from text, verifying signatures according
    /// to the session's [`SignaturePolicy`].
    pub fn add_credentials(&mut self, text: &str) -> Result<usize, SessionError> {
        let parsed = parse_assertions(text)?;
        let n = parsed.len();
        for a in parsed {
            self.add_credential_parsed(a)?;
        }
        Ok(n)
    }

    /// Adds one pre-parsed credential.
    pub fn add_credential_parsed(&mut self, assertion: Assertion) -> Result<(), SessionError> {
        if assertion.authorizer == Principal::Policy {
            return Err(SessionError::PolicyViaCredential);
        }
        if self.signature_policy == SignaturePolicy::Require {
            let status = self.verify_cache.verify(&assertion);
            if status != SignatureStatus::Valid {
                let authorizer = assertion
                    .authorizer
                    .key_text()
                    .unwrap_or("POLICY")
                    .to_string();
                return Err(SessionError::BadSignature { authorizer, status });
            }
        }
        self.compiled.add(&assertion);
        self.credentials.push(assertion);
        self.bump_epoch();
        Ok(())
    }

    /// Sets an action attribute (`kn_add_action`).
    pub fn add_action_attribute(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.attributes.set(name, value);
    }

    /// Replaces the whole attribute set.
    pub fn set_action_attributes(&mut self, attrs: ActionAttributes) {
        self.attributes = attrs;
    }

    /// Adds a requesting principal (`kn_add_authorizer`).
    pub fn add_action_authorizer(&mut self, key_text: impl Into<String>) {
        self.authorizers.push(key_text.into());
    }

    /// Clears the per-query state (attributes and authorizers), keeping
    /// policies and credentials.
    pub fn reset_action(&mut self) {
        self.attributes = ActionAttributes::new();
        self.authorizers.clear();
    }

    /// Vets request-presented assertions exactly as
    /// `add_credential_parsed` would, but failures are skipped rather
    /// than stored: invalid credentials are simply not taken into
    /// account (RFC 2704 §5), and nothing is persisted. Signature
    /// verdicts come from the memo cache, so re-presenting the same
    /// credential does not pay a fresh RSA verification.
    fn vetted_extra<'a>(&self, extra: &'a [Assertion]) -> Vec<&'a Assertion> {
        extra
            .iter()
            .filter(|a| {
                a.authorizer != Principal::Policy
                    && (self.signature_policy != SignaturePolicy::Require
                        || self.verify_cache.verify(a) == SignatureStatus::Valid)
            })
            .collect()
    }

    /// Runs the compliance checker (`kn_do_query`).
    pub fn query(&self) -> QueryResult {
        let authorizers: Vec<&str> = self.authorizers.iter().map(String::as_str).collect();
        self.evaluate(&ActionQuery::principals(&authorizers).attributes(&self.attributes))
    }

    /// Evaluates one [`ActionQuery`] without mutating the session's
    /// action state: a batch of one through
    /// [`evaluate_batch`](Self::evaluate_batch).
    pub fn evaluate(&self, query: &ActionQuery<'_>) -> QueryResult {
        self.evaluate_batch(std::slice::from_ref(query))
            .pop()
            .expect("batch of one yields one result")
    }

    /// Evaluates a batch of [`ActionQuery`]s in one pass. All compiled
    /// queries share a single [`QueryView`] — one scratch allocation, one
    /// credential-overlay rebuild per distinct extra-credential set, and
    /// coincident consecutive requests collapse into one fixpoint run.
    /// Results come back in input order and are element-wise identical
    /// to calling [`evaluate`](Self::evaluate) per query.
    pub fn evaluate_batch(&self, queries: &[ActionQuery<'_>]) -> Vec<QueryResult> {
        let empty_attrs = ActionAttributes::new();
        // Vet each request's credentials once; consecutive queries
        // presenting the same slice reuse the previous verdicts without
        // re-consulting the memo cache.
        let mut vetted: Vec<Vec<&Assertion>> = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            if i > 0
                && std::ptr::eq(q.extra.as_ptr(), queries[i - 1].extra.as_ptr())
                && q.extra.len() == queries[i - 1].extra.len()
            {
                let prev = vetted[i - 1].clone();
                vetted.push(prev);
            } else {
                vetted.push(self.vetted_extra(q.extra));
            }
        }
        let mut view_queries: Vec<ViewQuery<'_>> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            if !q.interpreted {
                view_queries.push(ViewQuery {
                    authorizers: q.principal_list(),
                    attributes: q.attributes.unwrap_or(&empty_attrs),
                    extra: &vetted[i],
                });
            }
        }
        let compiled_results = if view_queries.is_empty() {
            Vec::new()
        } else {
            let mut view = QueryView::new(&self.compiled, &self.values, &self.revoked);
            view.query_batch(&view_queries)
        };
        let mut compiled_iter = compiled_results.into_iter();
        queries
            .iter()
            .map(|q| {
                if q.interpreted {
                    self.evaluate_interpreted(q)
                } else {
                    compiled_iter
                        .next()
                        .expect("one result per compiled query")
                }
            })
            .collect()
    }

    /// Reference path: evaluates by interpreting the AST directly, with
    /// no compiled forms and no signature memoization. Exists so
    /// differential tests (and the cold-baseline benchmark series) can
    /// hold the compiled engine to the interpreter's answers; the
    /// reference path may clone freely.
    fn evaluate_interpreted(&self, q: &ActionQuery<'_>) -> QueryResult {
        let empty_attrs = ActionAttributes::new();
        let attrs = q.attributes.unwrap_or(&empty_attrs);
        let mut refs: Vec<&Assertion> =
            Vec::with_capacity(self.policies.len() + self.credentials.len() + q.extra.len());
        refs.extend(self.policies.iter());
        refs.extend(self.credentials.iter());
        for a in q.extra {
            if a.authorizer == Principal::Policy {
                continue;
            }
            if self.signature_policy == SignaturePolicy::Require
                && crate::signing::verify_assertion(a) != SignatureStatus::Valid
            {
                continue;
            }
            refs.push(a);
        }
        let query = Query {
            action_authorizers: q.principal_list().iter().map(|s| s.to_string()).collect(),
            attributes: attrs.clone(),
            values: self.values.clone(),
            revoked: self.revoked.clone(),
        };
        check_compliance_refs(&refs, &query)
    }

    /// Compile-time diagnostics from the stored assertions (currently:
    /// malformed `~=` pattern literals, whose tests evaluate to `false`).
    pub fn compile_notes(&self) -> &[String] {
        self.compiled.notes()
    }

    /// Hit/miss counters of the signature-verdict memo cache.
    pub fn verify_cache_stats(&self) -> VerifyCacheStats {
        self.verify_cache.stats()
    }

    /// The session's signature-verdict memo cache. Exposed so verdict
    /// stamps can admit attested verdicts ([`VerifyCache::admit_stamped`])
    /// and so several sessions on one node can share a cache.
    pub fn verify_cache(&self) -> &Arc<VerifyCache> {
        &self.verify_cache
    }

    /// Replaces the session's verify cache with a shared one. Verdicts
    /// are immutable facts about credential bytes, so swapping caches
    /// never changes query results and does not move the epoch; stored
    /// credentials were already vetted at add time.
    pub fn share_verify_cache(&mut self, cache: Arc<VerifyCache>) {
        self.verify_cache = cache;
    }

    /// The locally-trusted policy assertions.
    pub fn policies(&self) -> &[Assertion] {
        &self.policies
    }

    /// The accepted credentials.
    pub fn credentials(&self) -> &[Assertion] {
        &self.credentials
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::LicenseeExpr;
    use crate::signing::sign_assertion;
    use hetsec_crypto::KeyPair;

    #[test]
    fn permissive_session_runs_paper_example() {
        let mut s = KeyNoteSession::permissive();
        s.add_policy(
            "Authorizer: POLICY\nlicensees: \"Kbob\"\n\
             Conditions: app_domain==\"SalariesDB\" && (oper==\"read\" || oper==\"write\");\n",
        )
        .unwrap();
        s.add_credentials(
            "Authorizer: \"Kbob\"\nlicensees: \"Kalice\"\n\
             Conditions: app_domain==\"SalariesDB\" && oper==\"write\";\n",
        )
        .unwrap();
        s.add_action_authorizer("Kalice");
        s.add_action_attribute("app_domain", "SalariesDB");
        s.add_action_attribute("oper", "write");
        assert!(s.query().is_authorized());
        s.reset_action();
        s.add_action_authorizer("Kalice");
        s.add_action_attribute("app_domain", "SalariesDB");
        s.add_action_attribute("oper", "read");
        assert!(!s.query().is_authorized());
    }

    #[test]
    fn strict_session_rejects_unsigned_credentials() {
        let mut s = KeyNoteSession::new();
        let err = s
            .add_credentials("Authorizer: \"Kbob\"\nlicensees: \"Kalice\"\n")
            .unwrap_err();
        assert!(matches!(err, SessionError::BadSignature { .. }));
    }

    #[test]
    fn strict_session_accepts_valid_signature() {
        let kp = KeyPair::from_label("delegator");
        let key_text = kp.public().to_text();
        let mut a = Assertion::new(
            Principal::key(&key_text),
            LicenseeExpr::Principal("Kalice".to_string()),
        );
        sign_assertion(&mut a, &kp).unwrap();

        let mut s = KeyNoteSession::new();
        s.add_policy(&format!(
            "Authorizer: POLICY\nLicensees: \"{key_text}\"\n"
        ))
        .unwrap();
        s.add_credential_parsed(a).unwrap();
        let attrs = ActionAttributes::new();
        assert!(s.evaluate(&ActionQuery::principals(&["Kalice"]).attributes(&attrs)).is_authorized());
    }

    #[test]
    fn strict_session_rejects_tampered_credential() {
        let kp = KeyPair::from_label("delegator2");
        let key_text = kp.public().to_text();
        let mut a = Assertion::new(
            Principal::key(&key_text),
            LicenseeExpr::Principal("Kalice".to_string()),
        );
        sign_assertion(&mut a, &kp).unwrap();
        a.licensees = Some(LicenseeExpr::Principal("Kmallory".to_string()));
        let mut s = KeyNoteSession::new();
        assert!(s.add_credential_parsed(a).is_err());
    }

    #[test]
    fn policy_via_credential_rejected() {
        let mut s = KeyNoteSession::permissive();
        let a = Assertion::new(
            Principal::Policy,
            LicenseeExpr::Principal("Ka".to_string()),
        );
        assert_eq!(
            s.add_credential_parsed(a),
            Err(SessionError::PolicyViaCredential)
        );
    }

    #[test]
    fn mixed_policy_text_routes_credentials() {
        // A policy file bundling a key-authored credential in permissive
        // mode: both get stored in the right bucket.
        let mut s = KeyNoteSession::permissive();
        let n = s
            .add_policy(
                "Authorizer: POLICY\nLicensees: \"Ka\"\n\n\
                 Authorizer: \"Ka\"\nLicensees: \"Kb\"\n",
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(s.policies().len(), 1);
        assert_eq!(s.credentials().len(), 1);
        assert!(s
            .evaluate(&ActionQuery::principals(&["Kb"]).attributes(&ActionAttributes::new()))
            .is_authorized());
    }

    #[test]
    fn revoked_requester_denied() {
        let mut s = KeyNoteSession::permissive();
        s.add_policy("Authorizer: POLICY\nLicensees: \"Ka\"\n").unwrap();
        let attrs = ActionAttributes::new();
        assert!(s.evaluate(&ActionQuery::principals(&["Ka"]).attributes(&attrs)).is_authorized());
        s.revoke_key("Ka");
        assert!(!s.evaluate(&ActionQuery::principals(&["Ka"]).attributes(&attrs)).is_authorized());
        assert_eq!(s.revoked_keys().collect::<Vec<_>>(), vec!["Ka"]);
        assert!(s.reinstate_key("Ka"));
        assert!(!s.reinstate_key("Ka"));
        assert!(s.evaluate(&ActionQuery::principals(&["Ka"]).attributes(&attrs)).is_authorized());
    }

    #[test]
    fn revoked_intermediate_breaks_delegation_chain() {
        let mut s = KeyNoteSession::permissive();
        s.add_policy(
            "Authorizer: POLICY\nLicensees: \"Ka\"\n\n\
             Authorizer: \"Ka\"\nLicensees: \"Kb\"\n",
        )
        .unwrap();
        let attrs = ActionAttributes::new();
        assert!(s.evaluate(&ActionQuery::principals(&["Kb"]).attributes(&attrs)).is_authorized());
        s.revoke_key("Ka");
        // Kb's authority flowed through Ka; revoking Ka kills the chain.
        assert!(!s.evaluate(&ActionQuery::principals(&["Kb"]).attributes(&attrs)).is_authorized());
        // Ka itself is of course also denied.
        assert!(!s.evaluate(&ActionQuery::principals(&["Ka"]).attributes(&attrs)).is_authorized());
    }

    #[test]
    fn revocation_is_key_specific() {
        let mut s = KeyNoteSession::permissive();
        s.add_policy(
            "Authorizer: POLICY\nLicensees: \"Ka\" || \"Kb\"\n",
        )
        .unwrap();
        s.revoke_key("Ka");
        let attrs = ActionAttributes::new();
        assert!(!s.evaluate(&ActionQuery::principals(&["Ka"]).attributes(&attrs)).is_authorized());
        assert!(s.evaluate(&ActionQuery::principals(&["Kb"]).attributes(&attrs)).is_authorized());
    }

    #[test]
    fn epoch_rises_on_semantic_mutations_only() {
        let mut s = KeyNoteSession::permissive();
        let e0 = s.epoch();
        s.add_policy("Authorizer: POLICY\nLicensees: \"Ka\"\n")
            .unwrap();
        let e1 = s.epoch();
        assert!(e1 > e0);
        s.add_credentials("Authorizer: \"Ka\"\nLicensees: \"Kb\"\n")
            .unwrap();
        let e2 = s.epoch();
        assert!(e2 > e1);
        s.revoke_key("Ka");
        let e3 = s.epoch();
        assert!(e3 > e2);
        assert!(s.reinstate_key("Ka"));
        let e4 = s.epoch();
        assert!(e4 > e3);
        // Reinstating a key that is not revoked changes nothing.
        assert!(!s.reinstate_key("Ka"));
        assert_eq!(s.epoch(), e4);
        // Per-action state does not move the epoch.
        s.add_action_attribute("oper", "read");
        s.add_action_authorizer("Kb");
        s.reset_action();
        assert_eq!(s.epoch(), e4);
        // Queries do not move the epoch.
        let _ = s.evaluate(&ActionQuery::principals(&["Kb"]).attributes(&ActionAttributes::new()));
        assert_eq!(s.epoch(), e4);
    }

    #[test]
    fn extra_credentials_are_request_scoped() {
        let mut s = KeyNoteSession::permissive();
        s.add_policy("Authorizer: POLICY\nLicensees: \"Ka\"\n")
            .unwrap();
        let delegation = Assertion::new(
            Principal::key("Ka"),
            LicenseeExpr::Principal("Kb".to_string()),
        );
        let attrs = ActionAttributes::new();
        // Without the presented credential, Kb has no authority.
        assert!(!s.evaluate(&ActionQuery::principals(&["Kb"]).attributes(&attrs)).is_authorized());
        // Presenting it authorises this one request...
        let epoch_before = s.epoch();
        assert!(s
            .evaluate(&ActionQuery::principals(&["Kb"]).attributes(&attrs).extra(std::slice::from_ref(&delegation)))
            .is_authorized());
        // ...without persisting anything: the next request is back to
        // denied, nothing was stored, and the epoch did not move.
        assert!(!s.evaluate(&ActionQuery::principals(&["Kb"]).attributes(&attrs)).is_authorized());
        assert_eq!(s.credentials().len(), 0);
        assert_eq!(s.epoch(), epoch_before);
    }

    #[test]
    fn extra_credentials_respect_signature_policy() {
        // Strict session: an unsigned presented credential is ignored.
        let mut s = KeyNoteSession::new();
        s.add_policy("Authorizer: POLICY\nLicensees: \"Ka\"\n")
            .unwrap();
        let unsigned = Assertion::new(
            Principal::key("Ka"),
            LicenseeExpr::Principal("Kb".to_string()),
        );
        let attrs = ActionAttributes::new();
        assert!(!s
            .evaluate(&ActionQuery::principals(&["Kb"]).attributes(&attrs).extra(std::slice::from_ref(&unsigned)))
            .is_authorized());
        // A validly signed one is honoured.
        let kp = KeyPair::from_label("scoped-delegator");
        let key_text = kp.public().to_text();
        s.add_policy(&format!("Authorizer: POLICY\nLicensees: \"{key_text}\"\n"))
            .unwrap();
        let mut signed = Assertion::new(
            Principal::key(&key_text),
            LicenseeExpr::Principal("Kb".to_string()),
        );
        sign_assertion(&mut signed, &kp).unwrap();
        assert!(s
            .evaluate(&ActionQuery::principals(&["Kb"]).attributes(&attrs).extra(std::slice::from_ref(&signed)))
            .is_authorized());
        assert_eq!(s.credentials().len(), 0);
    }

    #[test]
    fn extra_policy_assertions_are_ignored() {
        // A presented "credential" claiming POLICY authority must not
        // grant anything.
        let s = KeyNoteSession::permissive();
        let forged = Assertion::new(
            Principal::Policy,
            LicenseeExpr::Principal("Kmallory".to_string()),
        );
        let attrs = ActionAttributes::new();
        assert!(!s
            .evaluate(&ActionQuery::principals(&["Kmallory"]).attributes(&attrs).extra(std::slice::from_ref(&forged)))
            .is_authorized());
    }

    #[test]
    fn revoked_key_rejected_even_with_memoized_signature() {
        // The memo cache answers the *signature* question; revocation is
        // enforced afterwards by the compliance checker. A key whose
        // valid verdict is cached must still lose all authority once
        // revoked.
        let kp = KeyPair::from_label("memo-revoked");
        let key_text = kp.public().to_text();
        let mut s = KeyNoteSession::new();
        s.add_policy(&format!("Authorizer: POLICY\nLicensees: \"{key_text}\"\n"))
            .unwrap();
        let mut signed = Assertion::new(
            Principal::key(&key_text),
            LicenseeExpr::Principal("Kb".to_string()),
        );
        sign_assertion(&mut signed, &kp).unwrap();
        let attrs = ActionAttributes::new();
        let extra = std::slice::from_ref(&signed);
        // Warm the memo: first query verifies, second hits the cache.
        assert!(s.evaluate(&ActionQuery::principals(&["Kb"]).attributes(&attrs).extra(extra)).is_authorized());
        assert!(s.evaluate(&ActionQuery::principals(&["Kb"]).attributes(&attrs).extra(extra)).is_authorized());
        let stats = s.verify_cache_stats();
        assert!(stats.hits >= 1, "expected a memo hit, got {stats:?}");
        // Revoke the signer: the cached Valid verdict must not keep the
        // delegation alive.
        s.revoke_key(&key_text);
        assert!(!s.evaluate(&ActionQuery::principals(&["Kb"]).attributes(&attrs).extra(extra)).is_authorized());
        // The verdict is still served from the cache — only compliance
        // changed its mind.
        let after = s.verify_cache_stats();
        assert_eq!(after.misses, stats.misses);
    }

    #[test]
    fn compiled_and_interpreted_paths_agree_via_session() {
        let mut s = KeyNoteSession::permissive();
        s.add_policy(
            "Authorizer: POLICY\nlicensees: \"Kbob\"\n\
             Conditions: app_domain==\"SalariesDB\" && (oper==\"read\" || oper==\"write\");\n",
        )
        .unwrap();
        s.add_credentials(
            "Authorizer: \"Kbob\"\nlicensees: \"Kalice\"\n\
             Conditions: app_domain==\"SalariesDB\" && oper==\"write\";\n",
        )
        .unwrap();
        for (who, oper) in [
            ("Kbob", "read"),
            ("Kbob", "drop"),
            ("Kalice", "write"),
            ("Kalice", "read"),
            ("Kmallory", "write"),
        ] {
            let attrs: ActionAttributes =
                [("app_domain", "SalariesDB"), ("oper", oper)].into_iter().collect();
            let compiled = s.evaluate(&ActionQuery::principals(&[who]).attributes(&attrs));
            let interpreted = s.evaluate(&ActionQuery::principals(&[who]).attributes(&attrs).interpreted());
            assert_eq!(compiled.value, interpreted.value, "{who}/{oper}");
            assert_eq!(compiled.value_name, interpreted.value_name, "{who}/{oper}");
        }
    }

    #[test]
    fn bad_regex_surfaces_as_compile_note() {
        let mut s = KeyNoteSession::permissive();
        s.add_policy(
            "Authorizer: POLICY\nLicensees: \"Ka\"\nConditions: oper ~= \"(unclosed\";\n",
        )
        .unwrap();
        assert_eq!(s.compile_notes().len(), 1);
        let attrs: ActionAttributes = [("oper", "read")].into_iter().collect();
        assert!(!s.evaluate(&ActionQuery::principals(&["Ka"]).attributes(&attrs)).is_authorized());
    }

    #[test]
    fn evaluate_does_not_mutate_session() {
        let mut s = KeyNoteSession::permissive();
        s.add_policy("Authorizer: POLICY\nLicensees: \"Ka\"\n")
            .unwrap();
        let attrs = ActionAttributes::new();
        assert!(s.evaluate(&ActionQuery::principals(&["Ka"]).attributes(&attrs)).is_authorized());
        // Session-level action state is untouched.
        assert!(!s.query().is_authorized());
    }
}
