//! The KeyNote compliance checker (RFC 2704 §5).
//!
//! Given a set of policy assertions and credentials, an action attribute
//! set, and the principals that requested the action, the checker
//! computes the *compliance value* of the request.
//!
//! Semantics: delegation is evaluated from the requesters towards
//! `POLICY`. Each requesting principal supports the action at
//! `_MAX_TRUST` (it signed the request). An assertion authored by
//! principal `p` lifts support to `p`: the assertion's value is
//! `min(conditions_value, licensees_value)` where the licensees formula
//! is evaluated over the current support values of its principals
//! (`&&` = min, `||` = max, `k-of` = k-th largest). A principal's support
//! is the maximum over its assertions. The query answer is the support of
//! `POLICY`. Cyclic delegation is handled by iterating this monotone
//! operator to a fixpoint.

use crate::ast::{Assertion, LicenseeExpr, Principal};
use crate::eval::{eval_conditions, ActionAttributes, Env};
use crate::values::{ComplianceValue, ComplianceValues};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A compliance query.
#[derive(Clone, Debug)]
pub struct Query {
    /// Principals that made (signed) the request.
    pub action_authorizers: Vec<String>,
    /// The action attribute set describing the request.
    pub attributes: ActionAttributes,
    /// The ordered compliance value set.
    pub values: ComplianceValues,
    /// Revoked keys: they convey no authority — neither as requesters
    /// nor as intermediate delegators.
    pub revoked: BTreeSet<String>,
}

impl Query {
    /// A binary-valued query.
    pub fn new(action_authorizers: Vec<String>, attributes: ActionAttributes) -> Self {
        Query {
            action_authorizers,
            attributes,
            values: ComplianceValues::binary(),
            revoked: BTreeSet::new(),
        }
    }

    /// Replaces the compliance value set.
    pub fn with_values(mut self, values: ComplianceValues) -> Self {
        self.values = values;
        self
    }

    /// Marks keys as revoked.
    pub fn with_revoked(mut self, keys: impl IntoIterator<Item = String>) -> Self {
        self.revoked.extend(keys);
        self
    }
}

/// The result of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryResult {
    /// The computed compliance value.
    pub value: ComplianceValue,
    /// The value's name in the query's value set.
    pub value_name: String,
    /// Number of fixpoint iterations used (diagnostic).
    pub iterations: usize,
}

impl QueryResult {
    /// True when the value is strictly above `_MIN_TRUST` — for binary
    /// queries this means "authorised".
    pub fn is_authorized(&self) -> bool {
        self.value > ComplianceValue(0)
    }
}

/// Evaluates a licensees formula under a support assignment.
fn licensees_value(
    expr: &LicenseeExpr,
    support: &HashMap<&str, ComplianceValue>,
    min: ComplianceValue,
) -> ComplianceValue {
    match expr {
        LicenseeExpr::Principal(p) => support.get(p.as_str()).copied().unwrap_or(min),
        LicenseeExpr::And(a, b) => {
            licensees_value(a, support, min).and(licensees_value(b, support, min))
        }
        LicenseeExpr::Or(a, b) => {
            licensees_value(a, support, min).or(licensees_value(b, support, min))
        }
        LicenseeExpr::KOf(k, items) => {
            let mut vals: Vec<ComplianceValue> = items
                .iter()
                .map(|i| licensees_value(i, support, min))
                .collect();
            vals.sort_unstable_by(|a, b| b.cmp(a)); // descending
            // `k` may be 0 for programmatically built expressions (the
            // parser rejects it); a 0-of threshold grants nothing.
            match k.checked_sub(1) {
                Some(i) => vals.get(i).copied().unwrap_or(min),
                None => min,
            }
        }
    }
}

/// Sentinel key for the `POLICY` root in the support map. The NUL
/// prefix cannot collide with any licensee principal text.
pub(crate) const POLICY_KEY: &str = "\u{0}POLICY";

fn authorizer_key(a: &Assertion) -> &str {
    match &a.authorizer {
        Principal::Policy => POLICY_KEY,
        Principal::Key(k) => k.as_str(),
    }
}

/// Runs the compliance checker over `assertions`.
///
/// The caller is responsible for having filtered out credentials with
/// invalid signatures (see [`crate::session::KeyNoteSession`], which does
/// this on `add_credential`).
pub fn check_compliance(assertions: &[Assertion], query: &Query) -> QueryResult {
    let refs: Vec<&Assertion> = assertions.iter().collect();
    check_compliance_refs(&refs, query)
}

/// Reference-taking variant of [`check_compliance`], letting callers mix
/// assertions from several stores (e.g. session policies + credentials +
/// request-presented credentials) without cloning any of them.
///
/// The fixpoint is computed with a worklist over a licensee index: an
/// assertion is (re-)evaluated only when the support of one of its
/// licensee principals rises, so queries touch only the delegation
/// subgraph reachable from the requesters instead of scanning the whole
/// assertion store each round. Conditions are evaluated lazily — an
/// assertion never reached by delegation never runs its conditions
/// program.
pub fn check_compliance_refs(assertions: &[&Assertion], query: &Query) -> QueryResult {
    let values = &query.values;
    let min = values.min();
    let max = values.max();
    let authorizers_text = query.action_authorizers.join(",");

    // Conditions depend only on the action attributes, not on the
    // support assignment; evaluate each at most once, on first reach.
    let mut cond_values: Vec<Option<ComplianceValue>> = vec![None; assertions.len()];
    let mut evaluations = 0usize;

    // Licensee index: principal text -> assertions that mention it in
    // their licensees formula (deduplicated per assertion).
    let mut by_licensee: HashMap<&str, Vec<u32>> = HashMap::new();
    for (idx, a) in assertions.iter().enumerate() {
        if let Some(lic) = &a.licensees {
            let mut principals = lic.principals();
            principals.sort_unstable();
            principals.dedup();
            for p in principals {
                by_licensee.entry(p).or_default().push(idx as u32);
            }
        }
    }

    // Support assignment over principal texts, plus the POLICY root.
    // Requesters start at max (they signed the request); revoked keys
    // convey no authority, neither as requesters nor as delegators.
    let mut support: HashMap<&str, ComplianceValue> = HashMap::new();
    for a in &query.action_authorizers {
        if query.revoked.contains(a) {
            continue;
        }
        support.insert(a.as_str(), max);
    }

    // Worklist seeded from assertions whose licensees mention an
    // initially supported principal. Everything else evaluates to min
    // under the empty support and cannot lift anyone, so it is only
    // enqueued once delegation reaches it.
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut queued = vec![false; assertions.len()];
    for principal in support.keys() {
        if let Some(deps) = by_licensee.get(principal) {
            for &idx in deps {
                if !queued[idx as usize] {
                    queued[idx as usize] = true;
                    queue.push_back(idx);
                }
            }
        }
    }

    // Monotone fixpoint: each pass over an assertion either leaves
    // support unchanged or strictly raises one principal in the finite
    // value lattice, so the worklist drains.
    while let Some(idx) = queue.pop_front() {
        queued[idx as usize] = false;
        let a = assertions[idx as usize];
        let who = authorizer_key(a);
        if query.revoked.contains(who) {
            continue; // revoked keys convey nothing
        }
        let Some(lic) = &a.licensees else {
            continue;
        };
        let cond = *cond_values[idx as usize].get_or_insert_with(|| {
            evaluations += 1;
            let env = Env::new(
                &query.attributes,
                &a.local_constants,
                values,
                &authorizers_text,
            );
            match &a.conditions {
                None => max,
                Some(prog) => eval_conditions(prog, &env, values),
            }
        });
        if cond == min {
            continue;
        }
        let assertion_val = cond.and(licensees_value(lic, &support, min));
        let cur = support.get(who).copied().unwrap_or(min);
        // Requesters keep their max support; others can be lifted.
        if assertion_val > cur {
            support.insert(who, assertion_val);
            if let Some(deps) = by_licensee.get(who) {
                for &dep in deps {
                    if !queued[dep as usize] {
                        queued[dep as usize] = true;
                        queue.push_back(dep);
                    }
                }
            }
        }
    }

    let value = support.get(POLICY_KEY).copied().unwrap_or(min);
    QueryResult {
        value,
        value_name: values.name_of(value).to_string(),
        iterations: evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_assertions;

    fn query(authorizers: &[&str], attrs: &[(&str, &str)]) -> Query {
        Query::new(
            authorizers.iter().map(|s| s.to_string()).collect(),
            attrs.iter().copied().collect(),
        )
    }

    fn run(text: &str, q: &Query) -> bool {
        let assertions = parse_assertions(text).unwrap();
        check_compliance(&assertions, q).is_authorized()
    }

    const FIG2_AND_4: &str = "\
Authorizer: POLICY
licensees: \"Kbob\"
Conditions: app_domain==\"SalariesDB\" && (oper==\"read\" || oper==\"write\");

Authorizer: \"Kbob\"
licensees: \"Kalice\"
Conditions: app_domain==\"SalariesDB\" && oper==\"write\";
";

    #[test]
    fn paper_example_1_bob_direct() {
        let q = query(&["Kbob"], &[("app_domain", "SalariesDB"), ("oper", "read")]);
        assert!(run(FIG2_AND_4, &q));
        let q = query(&["Kbob"], &[("app_domain", "SalariesDB"), ("oper", "write")]);
        assert!(run(FIG2_AND_4, &q));
        let q = query(&["Kbob"], &[("app_domain", "SalariesDB"), ("oper", "drop")]);
        assert!(!run(FIG2_AND_4, &q));
    }

    #[test]
    fn paper_example_2_alice_delegated_write_only() {
        // Alice may write (via Bob's delegation) but not read.
        let q = query(&["Kalice"], &[("app_domain", "SalariesDB"), ("oper", "write")]);
        assert!(run(FIG2_AND_4, &q));
        let q = query(&["Kalice"], &[("app_domain", "SalariesDB"), ("oper", "read")]);
        assert!(!run(FIG2_AND_4, &q));
    }

    #[test]
    fn unknown_requester_denied() {
        let q = query(&["Kmallory"], &[("app_domain", "SalariesDB"), ("oper", "read")]);
        assert!(!run(FIG2_AND_4, &q));
    }

    #[test]
    fn delegation_chain_depth_3() {
        let text = "\
Authorizer: POLICY
Licensees: \"Ka\"
Conditions: op==\"go\";

Authorizer: \"Ka\"
Licensees: \"Kb\"
Conditions: op==\"go\";

Authorizer: \"Kb\"
Licensees: \"Kc\"
Conditions: op==\"go\";
";
        assert!(run(text, &query(&["Kc"], &[("op", "go")])));
        assert!(!run(text, &query(&["Kc"], &[("op", "stop")])));
        // Intermediate key also works.
        assert!(run(text, &query(&["Kb"], &[("op", "go")])));
    }

    #[test]
    fn conjunctive_licensees_require_both() {
        let text = "\
Authorizer: POLICY
Licensees: \"Ka\" && \"Kb\"
";
        assert!(!run(text, &query(&["Ka"], &[])));
        assert!(!run(text, &query(&["Kb"], &[])));
        assert!(run(text, &query(&["Ka", "Kb"], &[])));
    }

    #[test]
    fn threshold_two_of_three() {
        let text = "\
Authorizer: POLICY
Licensees: 2-of(\"Ka\", \"Kb\", \"Kc\")
";
        assert!(!run(text, &query(&["Ka"], &[])));
        assert!(run(text, &query(&["Ka", "Kc"], &[])));
        assert!(run(text, &query(&["Ka", "Kb", "Kc"], &[])));
    }

    #[test]
    fn delegation_narrows_not_widens() {
        // Kb's assertion grants everything, but Kb itself is only trusted
        // for oper==read, so Kc cannot write.
        let text = "\
Authorizer: POLICY
Licensees: \"Kb\"
Conditions: oper==\"read\";

Authorizer: \"Kb\"
Licensees: \"Kc\"
";
        assert!(run(text, &query(&["Kc"], &[("oper", "read")])));
        assert!(!run(text, &query(&["Kc"], &[("oper", "write")])));
    }

    #[test]
    fn cyclic_delegation_terminates() {
        let text = "\
Authorizer: POLICY
Licensees: \"Ka\"

Authorizer: \"Ka\"
Licensees: \"Kb\"

Authorizer: \"Kb\"
Licensees: \"Ka\"
";
        let q = query(&["Kb"], &[]);
        let assertions = parse_assertions(text).unwrap();
        let r = check_compliance(&assertions, &q);
        assert!(r.is_authorized());
        // And an unrelated key gains nothing from the cycle.
        assert!(!run(text, &query(&["Kz"], &[])));
    }

    #[test]
    fn non_binary_values_flow_through() {
        let values = ComplianceValues::with_middle(&["log"]).unwrap();
        let text = "\
Authorizer: POLICY
Licensees: \"Ka\"
Conditions: amount < 10 -> \"_MAX_TRUST\"; amount < 100 -> \"log\";
";
        let assertions = parse_assertions(text).unwrap();
        let q = Query::new(
            vec!["Ka".to_string()],
            [("amount", "50")].into_iter().collect(),
        )
        .with_values(values.clone());
        let r = check_compliance(&assertions, &q);
        assert_eq!(r.value_name, "log");
        let q2 = Query::new(
            vec!["Ka".to_string()],
            [("amount", "5")].into_iter().collect(),
        )
        .with_values(values.clone());
        assert_eq!(check_compliance(&assertions, &q2).value_name, "_MAX_TRUST");
        let q3 = Query::new(
            vec!["Ka".to_string()],
            [("amount", "5000")].into_iter().collect(),
        )
        .with_values(values);
        assert_eq!(check_compliance(&assertions, &q3).value_name, "_MIN_TRUST");
    }

    #[test]
    fn min_value_propagates_through_chain() {
        // Middle link limits the chain's value to "log".
        let values = ComplianceValues::with_middle(&["log"]).unwrap();
        let text = "\
Authorizer: POLICY
Licensees: \"Ka\"

Authorizer: \"Ka\"
Licensees: \"Kb\"
Conditions: true -> \"log\";
";
        let assertions = parse_assertions(text).unwrap();
        let q = Query::new(vec!["Kb".to_string()], ActionAttributes::new())
            .with_values(values);
        let r = check_compliance(&assertions, &q);
        assert_eq!(r.value_name, "log");
    }

    #[test]
    fn missing_licensees_authorizes_no_one() {
        let text = "Authorizer: POLICY\nConditions: true;\n";
        assert!(!run(text, &query(&["Ka"], &[])));
    }

    #[test]
    fn empty_assertion_set_denies() {
        let q = query(&["Ka"], &[]);
        let r = check_compliance(&[], &q);
        assert!(!r.is_authorized());
        assert_eq!(r.value_name, "_MIN_TRUST");
    }

    #[test]
    fn zero_of_threshold_grants_nothing_and_does_not_panic() {
        // The parser rejects `0-of(...)`, but the AST can be built
        // programmatically; this used to underflow `k - 1` and panic.
        let assertion = Assertion::new(
            Principal::Policy,
            LicenseeExpr::KOf(0, vec![LicenseeExpr::Principal("Ka".to_string())]),
        );
        let q = query(&["Ka"], &[]);
        let r = check_compliance(std::slice::from_ref(&assertion), &q);
        assert!(!r.is_authorized());
    }

    #[test]
    fn worklist_only_evaluates_reachable_assertions() {
        // A large store of assertions unrelated to the requester must
        // not be evaluated at all: the worklist never reaches them.
        let mut text = String::from(
            "Authorizer: POLICY\nLicensees: \"Ka\"\nConditions: op==\"go\";\n\n",
        );
        for i in 0..50 {
            text.push_str(&format!(
                "Authorizer: \"Kother{i}\"\nLicensees: \"Kother{}\"\nConditions: op==\"go\";\n\n",
                i + 1
            ));
        }
        let assertions = parse_assertions(&text).unwrap();
        let q = query(&["Ka"], &[("op", "go")]);
        let r = check_compliance(&assertions, &q);
        assert!(r.is_authorized());
        // Only the one assertion reachable from Ka is evaluated.
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn requester_support_not_downgraded() {
        // An assertion authored by the requester itself must not reduce
        // the requester's own support.
        let text = "\
Authorizer: POLICY
Licensees: \"Ka\"

Authorizer: \"Ka\"
Licensees: \"Kb\"
Conditions: false;
";
        assert!(run(text, &query(&["Ka"], &[])));
    }
}
