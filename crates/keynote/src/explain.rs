//! Decision explanation: a compliance check that also returns *why*.
//!
//! The paper's Policy Comprehension goal (§4.2) extends naturally from
//! policies to decisions: administrators debugging a heterogeneous
//! deployment need to see which credentials carried an authorisation.
//! [`explain_compliance`] reruns the fixpoint of
//! [`crate::compliance::check_compliance`] while recording, for every
//! principal whose support rose, the assertion responsible — yielding a
//! delegation trace from the requesters to `POLICY` (the KeyNote
//! counterpart of the SPKI back-end's proof objects).

use crate::ast::{Assertion, LicenseeExpr, Principal};
use crate::compliance::Query;
use crate::eval::{eval_conditions, Env};
use crate::print::print_principal;
use crate::values::ComplianceValue;
use std::collections::HashMap;
use std::fmt;

/// One support-raising step in the fixpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// The principal whose support rose (`"POLICY"` for the root).
    pub principal: String,
    /// The new support value's name.
    pub value_name: String,
    /// Index of the responsible assertion in the input slice.
    pub assertion_index: usize,
    /// Short description of the responsible assertion.
    pub assertion: String,
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} <- {} via assertion #{} ({})",
            self.principal, self.value_name, self.assertion_index, self.assertion
        )
    }
}

/// An explained result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Explanation {
    /// The compliance value's name.
    pub value_name: String,
    /// Whether the request was authorised (above `_MIN_TRUST`).
    pub authorized: bool,
    /// Support-raising steps in the order they occurred.
    pub trace: Vec<TraceStep>,
}

impl Explanation {
    /// The assertion indices that participated in the final decision.
    pub fn used_assertions(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.trace.iter().map(|s| s.assertion_index).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

fn describe(a: &Assertion) -> String {
    let lic = a
        .licensees
        .as_ref()
        .map(crate::print::print_licensees)
        .unwrap_or_else(|| "<none>".to_string());
    format!("{} licenses {}", print_principal(&a.authorizer), lic)
}

/// Runs the compliance fixpoint, recording every support increase.
pub fn explain_compliance(assertions: &[Assertion], query: &Query) -> Explanation {
    let values = &query.values;
    let min = values.min();
    let max = values.max();
    let authorizers_text = query.action_authorizers.join(",");
    let cond_values: Vec<ComplianceValue> = assertions
        .iter()
        .map(|a| {
            let env = Env::new(
                &query.attributes,
                &a.local_constants,
                values,
                &authorizers_text,
            );
            match &a.conditions {
                None => max,
                Some(prog) => eval_conditions(prog, &env, values),
            }
        })
        .collect();

    const POLICY_KEY: &str = "\u{0}POLICY";
    let mut support: HashMap<&str, ComplianceValue> = HashMap::new();
    for a in &query.action_authorizers {
        if !query.revoked.contains(a) {
            support.insert(a.as_str(), max);
        }
    }
    fn lic_value(
        expr: &LicenseeExpr,
        support: &HashMap<&str, ComplianceValue>,
        min: ComplianceValue,
    ) -> ComplianceValue {
        match expr {
            LicenseeExpr::Principal(p) => support.get(p.as_str()).copied().unwrap_or(min),
            LicenseeExpr::And(a, b) => {
                lic_value(a, support, min).and(lic_value(b, support, min))
            }
            LicenseeExpr::Or(a, b) => lic_value(a, support, min).or(lic_value(b, support, min)),
            LicenseeExpr::KOf(k, items) => {
                let mut vals: Vec<ComplianceValue> =
                    items.iter().map(|i| lic_value(i, support, min)).collect();
                vals.sort_unstable_by(|a, b| b.cmp(a));
                // A programmatic `0-of(...)` grants nothing (and must
                // not underflow `k - 1`).
                match k.checked_sub(1) {
                    Some(i) => vals.get(i).copied().unwrap_or(min),
                    None => min,
                }
            }
        }
    }

    let mut trace = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut changed = false;
        for (idx, (a, &cond)) in assertions.iter().zip(&cond_values).enumerate() {
            if cond == min {
                continue;
            }
            let Some(lic) = &a.licensees else { continue };
            let val = cond.and(lic_value(lic, &support, min));
            let who = match &a.authorizer {
                Principal::Policy => POLICY_KEY,
                Principal::Key(k) => k.as_str(),
            };
            if query.revoked.contains(who) {
                continue;
            }
            let cur = support.get(who).copied().unwrap_or(min);
            if val > cur {
                support.insert(who, val);
                trace.push(TraceStep {
                    principal: if who == POLICY_KEY {
                        "POLICY".to_string()
                    } else {
                        who.to_string()
                    },
                    value_name: values.name_of(val).to_string(),
                    assertion_index: idx,
                    assertion: describe(a),
                });
                changed = true;
            }
        }
        if !changed || iterations > assertions.len() * values.len() + 1 {
            break;
        }
    }
    let value = support.get(POLICY_KEY).copied().unwrap_or(min);
    Explanation {
        value_name: values.name_of(value).to_string(),
        authorized: value > min,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compliance::check_compliance;
    use crate::eval::ActionAttributes;
    use crate::parser::parse_assertions;

    const CHAIN: &str = "\
Authorizer: POLICY
Licensees: \"Ka\"
Conditions: op==\"go\";

Authorizer: \"Ka\"
Licensees: \"Kb\"
Conditions: op==\"go\";
";

    fn query(who: &str, op: &str) -> Query {
        Query::new(
            vec![who.to_string()],
            [("op", op)].into_iter().collect::<ActionAttributes>(),
        )
    }

    #[test]
    fn trace_follows_the_delegation_chain() {
        let assertions = parse_assertions(CHAIN).unwrap();
        let e = explain_compliance(&assertions, &query("Kb", "go"));
        assert!(e.authorized);
        assert_eq!(e.value_name, "_MAX_TRUST");
        // Kb is a requester; the chain lifts Ka (via assertion 1) then
        // POLICY (via assertion 0).
        assert_eq!(e.trace.len(), 2);
        assert_eq!(e.trace[0].principal, "Ka");
        assert_eq!(e.trace[0].assertion_index, 1);
        assert_eq!(e.trace[1].principal, "POLICY");
        assert_eq!(e.trace[1].assertion_index, 0);
        assert_eq!(e.used_assertions(), vec![0, 1]);
        assert!(e.trace[1].to_string().contains("POLICY"));
    }

    #[test]
    fn denied_requests_have_partial_or_empty_traces() {
        let assertions = parse_assertions(CHAIN).unwrap();
        let e = explain_compliance(&assertions, &query("Kb", "stop"));
        assert!(!e.authorized);
        assert!(e.trace.is_empty());
        let e = explain_compliance(&assertions, &query("Kz", "go"));
        assert!(!e.authorized);
        assert!(e.trace.is_empty());
    }

    #[test]
    fn explanation_agrees_with_check_compliance() {
        let assertions = parse_assertions(CHAIN).unwrap();
        for (who, op) in [("Ka", "go"), ("Kb", "go"), ("Kb", "stop"), ("Kz", "go")] {
            let q = query(who, op);
            let plain = check_compliance(&assertions, &q);
            let explained = explain_compliance(&assertions, &q);
            assert_eq!(plain.is_authorized(), explained.authorized, "{who} {op}");
            assert_eq!(plain.value_name, explained.value_name, "{who} {op}");
        }
    }

    #[test]
    fn revoked_keys_produce_no_trace_steps() {
        let assertions = parse_assertions(CHAIN).unwrap();
        let q = query("Kb", "go").with_revoked(["Ka".to_string()]);
        let e = explain_compliance(&assertions, &q);
        assert!(!e.authorized);
        assert!(e.trace.is_empty());
    }
}
