//! Evaluation of condition expressions and conditions programs against an
//! action attribute set (RFC 2704 §4.3-4.5).
//!
//! Evaluation is total: malformed comparisons (type mismatches, bad regex
//! patterns, division by zero) make the enclosing test *fail* rather than
//! abort the query, matching KeyNote's conservative semantics.

use crate::ast::{ArithOp, Clause, CmpOp, ConditionsProgram, Expr, Term};
use crate::parser::format_num;
use crate::regex::Regex;
use crate::values::{ComplianceValue, ComplianceValues};
use std::collections::HashMap;

/// An action attribute set: string names to string values.
///
/// Per RFC 2704, attribute values are strings; numeric interpretation
/// happens at comparison time. Missing attributes read as the empty
/// string.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ActionAttributes {
    map: HashMap<String, String>,
}

impl ActionAttributes {
    /// Empty attribute set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set(name, value);
        self
    }

    /// Sets an attribute.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.map.insert(name.into(), value.into());
    }

    /// Reads an attribute; missing attributes are the empty string.
    pub fn get(&self, name: &str) -> &str {
        self.map.get(name).map(String::as_str).unwrap_or("")
    }

    /// True when the attribute is explicitly present.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no attributes are set.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over (name, value) pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for ActionAttributes {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut a = ActionAttributes::new();
        for (k, v) in iter {
            a.set(k, v);
        }
        a
    }
}

/// The evaluation environment: action attributes plus the assertion's
/// local constants (which shadow attributes) and the reserved
/// `_MIN_TRUST` / `_MAX_TRUST` / `_VALUES` / `_ACTION_AUTHORIZERS`
/// pseudo-attributes.
pub struct Env<'a> {
    attrs: &'a ActionAttributes,
    locals: &'a [(String, String)],
    values: &'a ComplianceValues,
    action_authorizers: &'a str,
}

impl<'a> Env<'a> {
    /// Builds an environment.
    pub fn new(
        attrs: &'a ActionAttributes,
        locals: &'a [(String, String)],
        values: &'a ComplianceValues,
        action_authorizers: &'a str,
    ) -> Self {
        Env {
            attrs,
            locals,
            values,
            action_authorizers,
        }
    }

    fn lookup(&self, name: &str) -> String {
        // Local constants shadow everything.
        if let Some((_, v)) = self.locals.iter().find(|(n, _)| n == name) {
            return v.clone();
        }
        match name {
            "_MIN_TRUST" => self.values.names().first().cloned().unwrap_or_default(),
            "_MAX_TRUST" => self.values.names().last().cloned().unwrap_or_default(),
            "_VALUES" => self.values.values_attribute(),
            "_ACTION_AUTHORIZERS" => self.action_authorizers.to_string(),
            other => self.attrs.get(other).to_string(),
        }
    }
}

/// A term's evaluated value.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
}

impl Value {
    fn as_str(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Num(n) => format_num(*n),
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Str(s) => s.trim().parse::<f64>().ok(),
        }
    }
}

/// Evaluation "errors" that conservatively fail the enclosing test.
#[derive(Clone, Debug, PartialEq, Eq)]
enum EvalFail {
    NotNumeric,
    BadPattern,
    DivByZero,
}

fn eval_term(t: &Term, env: &Env<'_>) -> Result<Value, EvalFail> {
    match t {
        Term::Str(s) => Ok(Value::Str(s.clone())),
        Term::Num(n) => Ok(Value::Num(*n)),
        Term::Attr(name) => Ok(Value::Str(env.lookup(name))),
        Term::Deref(inner) => {
            let name = eval_term(inner, env)?.as_str();
            Ok(Value::Str(env.lookup(&name)))
        }
        Term::Concat(a, b) => {
            let av = eval_term(a, env)?.as_str();
            let bv = eval_term(b, env)?.as_str();
            Ok(Value::Str(format!("{av}{bv}")))
        }
        Term::Arith { op, lhs, rhs } => {
            let a = eval_term(lhs, env)?.as_num().ok_or(EvalFail::NotNumeric)?;
            let b = eval_term(rhs, env)?.as_num().ok_or(EvalFail::NotNumeric)?;
            let r = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => {
                    if b == 0.0 {
                        return Err(EvalFail::DivByZero);
                    }
                    a / b
                }
                ArithOp::Mod => {
                    if b == 0.0 {
                        return Err(EvalFail::DivByZero);
                    }
                    a % b
                }
                ArithOp::Pow => a.powf(b),
            };
            Ok(Value::Num(r))
        }
        Term::Neg(inner) => {
            let v = eval_term(inner, env)?.as_num().ok_or(EvalFail::NotNumeric)?;
            Ok(Value::Num(-v))
        }
    }
}

fn eval_cmp(op: CmpOp, lhs: &Term, rhs: &Term, env: &Env<'_>) -> bool {
    let (Ok(lv), Ok(rv)) = (eval_term(lhs, env), eval_term(rhs, env)) else {
        return false;
    };
    // Numeric comparison when either side is syntactically numeric;
    // both sides must then parse as numbers or the test fails.
    let numeric = lhs.is_numeric_syntax() || rhs.is_numeric_syntax();
    if numeric {
        let (Some(a), Some(b)) = (lv.as_num(), rv.as_num()) else {
            return false;
        };
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Gt => a > b,
            CmpOp::Le => a <= b,
            CmpOp::Ge => a >= b,
        }
    } else {
        let a = lv.as_str();
        let b = rv.as_str();
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Gt => a > b,
            CmpOp::Le => a <= b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Evaluates a boolean expression; failures are false.
pub fn eval_expr(e: &Expr, env: &Env<'_>) -> bool {
    match e {
        Expr::True => true,
        Expr::False => false,
        Expr::Or(a, b) => eval_expr(a, env) || eval_expr(b, env),
        Expr::And(a, b) => eval_expr(a, env) && eval_expr(b, env),
        Expr::Not(inner) => !eval_expr(inner, env),
        Expr::Cmp { op, lhs, rhs } => eval_cmp(*op, lhs, rhs, env),
        Expr::RegexMatch { lhs, pattern } => {
            let (Ok(subject), Ok(pat)) = (eval_term(lhs, env), eval_term(pattern, env)) else {
                return false;
            };
            match Regex::new(&pat.as_str()) {
                Ok(re) => re.is_match(&subject.as_str()),
                Err(_) => {
                    let _ = EvalFail::BadPattern;
                    false
                }
            }
        }
    }
}

/// Evaluates a conditions program to a compliance value: the maximum over
/// succeeding clauses, `_MIN_TRUST` when none succeed. Unknown value
/// names in `-> value` clauses conservatively contribute `_MIN_TRUST`.
pub fn eval_conditions(
    prog: &ConditionsProgram,
    env: &Env<'_>,
    values: &ComplianceValues,
) -> ComplianceValue {
    let mut best = values.min();
    for clause in &prog.clauses {
        let contributed = match clause {
            Clause::Bare(test) => {
                if eval_expr(test, env) {
                    values.max()
                } else {
                    continue;
                }
            }
            Clause::Arrow(test, value_name) => {
                if eval_expr(test, env) {
                    values.index_of(value_name).unwrap_or_else(|| values.min())
                } else {
                    continue;
                }
            }
            Clause::Nested(test, inner) => {
                if eval_expr(test, env) {
                    eval_conditions(inner, env, values)
                } else {
                    continue;
                }
            }
        };
        best = best.or(contributed);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_conditions, parse_expression};

    fn env_fixture(attrs: &ActionAttributes, values: &ComplianceValues) -> Env<'static> {
        // Leak for test brevity; the env only borrows.
        let attrs: &'static ActionAttributes = Box::leak(Box::new(attrs.clone()));
        let values: &'static ComplianceValues = Box::leak(Box::new(values.clone()));
        Env::new(attrs, &[], values, "")
    }

    fn check(src: &str, attrs: &[(&str, &str)]) -> bool {
        let attrs: ActionAttributes = attrs.iter().copied().collect();
        let values = ComplianceValues::binary();
        let env = env_fixture(&attrs, &values);
        eval_expr(&parse_expression(src).unwrap(), &env)
    }

    #[test]
    fn paper_figure_2_condition() {
        let src = "app_domain==\"SalariesDB\" && (oper==\"read\" || oper==\"write\")";
        assert!(check(src, &[("app_domain", "SalariesDB"), ("oper", "read")]));
        assert!(check(src, &[("app_domain", "SalariesDB"), ("oper", "write")]));
        assert!(!check(src, &[("app_domain", "SalariesDB"), ("oper", "delete")]));
        assert!(!check(src, &[("app_domain", "OrdersDB"), ("oper", "read")]));
        assert!(!check(src, &[("oper", "read")]));
    }

    #[test]
    fn string_vs_numeric_comparison() {
        // String comparison: "10" < "9" lexicographically.
        assert!(check("a < b", &[("a", "10"), ("b", "9")]));
        // Numeric comparison forced by a numeric literal.
        assert!(check("a + 0 < 11", &[("a", "10")]));
        assert!(!check("a + 0 < 9", &[("a", "10")]));
        // `amount <= 100`: rhs numeric literal forces numeric compare.
        assert!(check("amount <= 100", &[("amount", "100")]));
        assert!(check("amount <= 100", &[("amount", "99")]));
        assert!(!check("amount <= 100", &[("amount", "101")]));
    }

    #[test]
    fn type_mismatch_fails_conservatively() {
        assert!(!check("a + 1 == 2", &[("a", "not-a-number")]));
        assert!(!check("a < 5", &[("a", "xyz")]));
        assert!(!check("1 / 0 == 1", &[]));
        assert!(!check("1 % 0 == 1", &[]));
    }

    #[test]
    fn missing_attribute_is_empty_string() {
        assert!(check("ghost == \"\"", &[]));
        assert!(!check("ghost == \"x\"", &[]));
    }

    #[test]
    fn arithmetic() {
        assert!(check("1 + 2 * 3 == 7", &[]));
        assert!(check("(1 + 2) * 3 == 9", &[]));
        assert!(check("2 ^ 10 == 1024", &[]));
        assert!(check("7 % 3 == 1", &[]));
        assert!(check("-3 + 5 == 2", &[]));
        assert!(check("10 / 4 == 2.5", &[]));
    }

    #[test]
    fn concat_and_deref() {
        assert!(check(
            "$(\"ro\" . \"le\") == \"Manager\"",
            &[("role", "Manager")]
        ));
        assert!(check("a . b == \"xy\"", &[("a", "x"), ("b", "y")]));
    }

    #[test]
    fn regex_operator() {
        assert!(check("oper ~= \"^(read|write)$\"", &[("oper", "read")]));
        assert!(!check("oper ~= \"^(read|write)$\"", &[("oper", "append")]));
        // Bad pattern fails rather than erroring.
        assert!(!check("oper ~= \"(unclosed\"", &[("oper", "x")]));
    }

    #[test]
    fn reserved_attributes() {
        let attrs = ActionAttributes::new();
        let values = ComplianceValues::with_middle(&["log"]).unwrap();
        let env = Env::new(&attrs, &[], &values, "Kalice,Kbob");
        assert!(eval_expr(
            &parse_expression("_MIN_TRUST == \"_MIN_TRUST\"").unwrap(),
            &env
        ));
        assert!(eval_expr(
            &parse_expression("_VALUES == \"_MIN_TRUST log _MAX_TRUST\"").unwrap(),
            &env
        ));
        assert!(eval_expr(
            &parse_expression("_ACTION_AUTHORIZERS ~= \"Kbob\"").unwrap(),
            &env
        ));
    }

    #[test]
    fn local_constants_shadow_attributes() {
        let attrs: ActionAttributes = [("who", "attr-value")].into_iter().collect();
        let values = ComplianceValues::binary();
        let locals = vec![("who".to_string(), "local-value".to_string())];
        let env = Env::new(&attrs, &locals, &values, "");
        assert!(eval_expr(
            &parse_expression("who == \"local-value\"").unwrap(),
            &env
        ));
    }

    #[test]
    fn conditions_program_values() {
        let values = ComplianceValues::with_middle(&["log", "escalate"]).unwrap();
        let attrs: ActionAttributes = [("amount", "500")].into_iter().collect();
        let env = env_fixture(&attrs, &values);
        let prog = parse_conditions(
            "amount < 100 -> \"_MAX_TRUST\"; amount < 1000 -> \"escalate\"; amount < 10000 -> \"log\";",
        )
        .unwrap();
        // amount=500: clauses 2 and 3 succeed; max is "escalate".
        let v = eval_conditions(&prog, &env, &values);
        assert_eq!(values.name_of(v), "escalate");
    }

    #[test]
    fn conditions_no_clause_succeeds() {
        let values = ComplianceValues::binary();
        let attrs = ActionAttributes::new();
        let env = env_fixture(&attrs, &values);
        let prog = parse_conditions("a == \"1\";").unwrap();
        assert_eq!(eval_conditions(&prog, &env, &values), values.min());
    }

    #[test]
    fn nested_conditions() {
        let values = ComplianceValues::with_middle(&["mid"]).unwrap();
        let attrs: ActionAttributes = [("d", "x"), ("r", "2")].into_iter().collect();
        let env = env_fixture(&attrs, &values);
        let prog =
            parse_conditions("d == \"x\" -> { r == \"1\" -> \"_MAX_TRUST\"; r == \"2\" -> \"mid\"; };")
                .unwrap();
        let v = eval_conditions(&prog, &env, &values);
        assert_eq!(values.name_of(v), "mid");
    }

    #[test]
    fn unknown_clause_value_is_min() {
        let values = ComplianceValues::binary();
        let attrs = ActionAttributes::new();
        let env = env_fixture(&attrs, &values);
        let prog = parse_conditions("true -> \"no-such-value\";").unwrap();
        assert_eq!(eval_conditions(&prog, &env, &values), values.min());
    }

    #[test]
    fn empty_program_is_min() {
        let values = ComplianceValues::binary();
        let attrs = ActionAttributes::new();
        let env = env_fixture(&attrs, &values);
        let prog = parse_conditions("").unwrap();
        assert_eq!(eval_conditions(&prog, &env, &values), values.min());
    }

    #[test]
    fn attributes_api() {
        let mut a = ActionAttributes::new();
        assert!(a.is_empty());
        a.set("k", "v");
        assert_eq!(a.get("k"), "v");
        assert_eq!(a.get("missing"), "");
        assert!(a.contains("k"));
        assert!(!a.contains("missing"));
        assert_eq!(a.len(), 1);
        let b = ActionAttributes::new().with("k", "v");
        assert_eq!(a, b);
    }
}
