//! Tokeniser for KeyNote field bodies (conditions, licensees,
//! local-constants).

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier / attribute name / bare word.
    Ident(String),
    /// Quoted string literal (unescaped).
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `~=`
    Tilde,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `->`
    Arrow,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `$`
    Dollar,
    /// `=` (used in Local-Constants)
    Assign,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Num(n) => write!(f, "{n}"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Gt => write!(f, ">"),
            Token::Le => write!(f, "<="),
            Token::Ge => write!(f, ">="),
            Token::Tilde => write!(f, "~="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Caret => write!(f, "^"),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Arrow => write!(f, "->"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Dollar => write!(f, "$"),
            Token::Assign => write!(f, "="),
        }
    }
}

/// Lexing errors, with byte offsets into the field body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LexError {
    /// A character that starts no token.
    UnexpectedChar(char, usize),
    /// Unterminated string literal.
    UnterminatedString(usize),
    /// Malformed number.
    BadNumber(usize),
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar(c, i) => write!(f, "unexpected character {c:?} at byte {i}"),
            LexError::UnterminatedString(i) => write!(f, "unterminated string starting at byte {i}"),
            LexError::BadNumber(i) => write!(f, "malformed number at byte {i}"),
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenises a field body.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        None => return Err(LexError::UnterminatedString(start)),
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            i += 1;
                            match chars.get(i) {
                                None => return Err(LexError::UnterminatedString(start)),
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some(&e) => s.push(e),
                            }
                            i += 1;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                // Don't eat a trailing '.': "1.foo" is number 1 then Dot.
                let mut text: String = chars[start..i].iter().collect();
                if text.ends_with('.') {
                    text.pop();
                    i -= 1;
                }
                let n: f64 = text.parse().map_err(|_| LexError::BadNumber(start))?;
                tokens.push(Token::Num(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            // `@`-prefixed identifiers name assertion metadata fields
            // (e.g. the analyzer's `@not-before`/`@not-after` validity
            // bounds in Local-Constants). `-` is allowed inside them so
            // the conventional kebab-case names lex as one token; a
            // bare `@` is still an error.
            '@' => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '-')
                {
                    i += 1;
                }
                if i == start + 1 {
                    return Err(LexError::UnexpectedChar('@', start));
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            '&' => {
                if chars.get(i + 1) == Some(&'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError::UnexpectedChar('&', i));
                }
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(LexError::UnexpectedChar('|', i));
                }
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::EqEq);
                    i += 2;
                } else {
                    tokens.push(Token::Assign);
                    i += 1;
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Bang);
                    i += 1;
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '~' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Tilde);
                    i += 2;
                } else {
                    return Err(LexError::UnexpectedChar('~', i));
                }
            }
            '-' => {
                if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::Arrow);
                    i += 2;
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '^' => {
                tokens.push(Token::Caret);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '$' => {
                tokens.push(Token::Dollar);
                i += 1;
            }
            other => return Err(LexError::UnexpectedChar(other, i)),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_condition_tokens() {
        let toks = lex("app_domain==\"SalariesDB\" && (oper==\"read\" || oper==\"write\");")
            .unwrap();
        assert_eq!(toks[0], Token::Ident("app_domain".into()));
        assert_eq!(toks[1], Token::EqEq);
        assert_eq!(toks[2], Token::Str("SalariesDB".into()));
        assert_eq!(toks[3], Token::AndAnd);
        assert_eq!(*toks.last().unwrap(), Token::Semi);
    }

    #[test]
    fn numbers_and_dots() {
        assert_eq!(lex("1.5").unwrap(), vec![Token::Num(1.5)]);
        assert_eq!(
            lex("1.x").unwrap(),
            vec![Token::Num(1.0), Token::Dot, Token::Ident("x".into())]
        );
        assert_eq!(lex("42").unwrap(), vec![Token::Num(42.0)]);
        assert!(lex("1.2.3").is_err());
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            lex("\"a\\\"b\\n\"").unwrap(),
            vec![Token::Str("a\"b\n".into())]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn operators() {
        let toks = lex("<= >= == != ~= -> && || ! = < >").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Le,
                Token::Ge,
                Token::EqEq,
                Token::NotEq,
                Token::Tilde,
                Token::Arrow,
                Token::AndAnd,
                Token::OrOr,
                Token::Bang,
                Token::Assign,
                Token::Lt,
                Token::Gt,
            ]
        );
    }

    #[test]
    fn arithmetic_tokens() {
        let toks = lex("a + b * 2 - c / d % e ^ 2").unwrap();
        assert!(toks.contains(&Token::Plus));
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Minus));
        assert!(toks.contains(&Token::Slash));
        assert!(toks.contains(&Token::Percent));
        assert!(toks.contains(&Token::Caret));
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("a # b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("~x").is_err());
    }

    #[test]
    fn kof_shape() {
        let toks = lex("2-of(\"Ka\", \"Kb\", \"Kc\")").unwrap();
        assert_eq!(toks[0], Token::Num(2.0));
        assert_eq!(toks[1], Token::Minus);
        assert_eq!(toks[2], Token::Ident("of".into()));
        assert_eq!(toks[3], Token::LParen);
    }
}
