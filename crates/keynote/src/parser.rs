//! Parsers for KeyNote condition expressions, licensee formulas, and
//! whole assertions.
//!
//! The field-level assertion syntax follows RFC 2704: `Field: body`
//! lines, continuation lines indented with whitespace, assertions
//! separated by blank lines. Field names are case-insensitive.

use crate::ast::{
    ArithOp, Assertion, Clause, CmpOp, ConditionsProgram, Expr, LicenseeExpr, Principal, Term,
};
use crate::lexer::{lex, LexError, Token};
use std::fmt;

/// Parse errors.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// Tokenisation failed.
    Lex(LexError),
    /// Unexpected token (found, context).
    Unexpected(String, &'static str),
    /// Input ended prematurely.
    Eof(&'static str),
    /// An unknown assertion field name.
    UnknownField(String),
    /// A required field is missing.
    MissingField(&'static str),
    /// A field appeared twice.
    DuplicateField(String),
    /// Field line without a `name:` prefix.
    BadFieldLine(String),
    /// Threshold `k` out of range for `k-of(...)`.
    BadThreshold(usize, usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lex error: {e}"),
            ParseError::Unexpected(t, ctx) => write!(f, "unexpected token `{t}` in {ctx}"),
            ParseError::Eof(ctx) => write!(f, "unexpected end of input in {ctx}"),
            ParseError::UnknownField(n) => write!(f, "unknown assertion field `{n}`"),
            ParseError::MissingField(n) => write!(f, "missing required field `{n}`"),
            ParseError::DuplicateField(n) => write!(f, "duplicate field `{n}`"),
            ParseError::BadFieldLine(l) => write!(f, "line is not a field: `{l}`"),
            ParseError::BadThreshold(k, n) => {
                write!(f, "threshold {k}-of({n} principals) out of range")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

struct P {
    tokens: Vec<Token>,
    pos: usize,
}

impl P {
    fn new(src: &str) -> Result<Self, ParseError> {
        Ok(P {
            tokens: lex(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, ctx: &'static str) -> Result<(), ParseError> {
        match self.bump() {
            Some(ref got) if got == t => Ok(()),
            Some(got) => Err(ParseError::Unexpected(got.to_string(), ctx)),
            None => Err(ParseError::Eof(ctx)),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    // ---- Conditions program ----

    fn parse_program(&mut self, stop_at_rbrace: bool) -> Result<ConditionsProgram, ParseError> {
        let mut clauses = Vec::new();
        loop {
            // Allow empty programs and trailing semicolons.
            while self.eat(&Token::Semi) {}
            if self.at_end() || (stop_at_rbrace && self.peek() == Some(&Token::RBrace)) {
                break;
            }
            clauses.push(self.parse_clause()?);
            if !self.eat(&Token::Semi) {
                if self.at_end() || (stop_at_rbrace && self.peek() == Some(&Token::RBrace)) {
                    break;
                }
                return Err(ParseError::Unexpected(
                    self.peek().map(|t| t.to_string()).unwrap_or_default(),
                    "conditions program (expected `;`)",
                ));
            }
        }
        Ok(ConditionsProgram { clauses })
    }

    fn parse_clause(&mut self) -> Result<Clause, ParseError> {
        let test = self.parse_expr()?;
        if self.eat(&Token::Arrow) {
            if self.eat(&Token::LBrace) {
                let prog = self.parse_program(true)?;
                self.expect(&Token::RBrace, "nested conditions program")?;
                Ok(Clause::Nested(test, prog))
            } else {
                let value = match self.bump() {
                    Some(Token::Str(s)) => s,
                    Some(Token::Ident(s)) => s,
                    Some(got) => {
                        return Err(ParseError::Unexpected(got.to_string(), "clause value"))
                    }
                    None => return Err(ParseError::Eof("clause value")),
                };
                Ok(Clause::Arrow(test, value))
            }
        } else {
            Ok(Clause::Bare(test))
        }
    }

    // ---- Boolean expressions ----

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.parse_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.parse_unary()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Bang) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        // `true` / `false` keywords.
        if let Some(Token::Ident(id)) = self.peek() {
            let lowered = id.to_ascii_lowercase();
            if lowered == "true" || lowered == "false" {
                // Only a keyword if not followed by a comparison operator
                // (an attribute may be named `true`).
                let next = self.tokens.get(self.pos + 1);
                let is_cmp = matches!(
                    next,
                    Some(
                        Token::EqEq
                            | Token::NotEq
                            | Token::Lt
                            | Token::Gt
                            | Token::Le
                            | Token::Ge
                            | Token::Tilde
                    )
                );
                if !is_cmp {
                    self.bump();
                    return Ok(if lowered == "true" {
                        Expr::True
                    } else {
                        Expr::False
                    });
                }
            }
        }
        // Try a comparison first; fall back to a parenthesised boolean
        // expression (backtracking resolves the `(` ambiguity).
        let save = self.pos;
        match self.try_comparison() {
            Ok(e) => Ok(e),
            Err(cmp_err) => {
                self.pos = save;
                if self.eat(&Token::LParen) {
                    let inner = self.parse_expr()?;
                    self.expect(&Token::RParen, "parenthesised expression")?;
                    Ok(inner)
                } else {
                    Err(cmp_err)
                }
            }
        }
    }

    fn try_comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_term()?;
        match self.bump() {
            Some(Token::EqEq) => Ok(Expr::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs: self.parse_term()?,
            }),
            Some(Token::NotEq) => Ok(Expr::Cmp {
                op: CmpOp::Ne,
                lhs,
                rhs: self.parse_term()?,
            }),
            Some(Token::Lt) => Ok(Expr::Cmp {
                op: CmpOp::Lt,
                lhs,
                rhs: self.parse_term()?,
            }),
            Some(Token::Gt) => Ok(Expr::Cmp {
                op: CmpOp::Gt,
                lhs,
                rhs: self.parse_term()?,
            }),
            Some(Token::Le) => Ok(Expr::Cmp {
                op: CmpOp::Le,
                lhs,
                rhs: self.parse_term()?,
            }),
            Some(Token::Ge) => Ok(Expr::Cmp {
                op: CmpOp::Ge,
                lhs,
                rhs: self.parse_term()?,
            }),
            Some(Token::Tilde) => Ok(Expr::RegexMatch {
                lhs,
                pattern: self.parse_term()?,
            }),
            Some(got) => Err(ParseError::Unexpected(got.to_string(), "comparison")),
            None => Err(ParseError::Eof("comparison")),
        }
    }

    // ---- Terms ----
    // Precedence (loosest to tightest): `.` concat, `+ -`, `* / %`, `^`
    // (right-assoc), unary `-`, atoms.

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.parse_addsub()?;
        while self.eat(&Token::Dot) {
            let rhs = self.parse_addsub()?;
            lhs = Term::Concat(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_addsub(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.parse_muldiv()?;
        loop {
            if self.eat(&Token::Plus) {
                let rhs = self.parse_muldiv()?;
                lhs = Term::Arith {
                    op: ArithOp::Add,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                };
            } else if self.eat(&Token::Minus) {
                let rhs = self.parse_muldiv()?;
                lhs = Term::Arith {
                    op: ArithOp::Sub,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_muldiv(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.parse_pow()?;
        loop {
            if self.eat(&Token::Star) {
                let rhs = self.parse_pow()?;
                lhs = Term::Arith {
                    op: ArithOp::Mul,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                };
            } else if self.eat(&Token::Slash) {
                let rhs = self.parse_pow()?;
                lhs = Term::Arith {
                    op: ArithOp::Div,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                };
            } else if self.eat(&Token::Percent) {
                let rhs = self.parse_pow()?;
                lhs = Term::Arith {
                    op: ArithOp::Mod,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_pow(&mut self) -> Result<Term, ParseError> {
        let base = self.parse_term_atom()?;
        if self.eat(&Token::Caret) {
            let exp = self.parse_pow()?; // right-assoc
            Ok(Term::Arith {
                op: ArithOp::Pow,
                lhs: Box::new(base),
                rhs: Box::new(exp),
            })
        } else {
            Ok(base)
        }
    }

    fn parse_term_atom(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Token::Str(s)) => Ok(Term::Str(s)),
            Some(Token::Num(n)) => Ok(Term::Num(n)),
            Some(Token::Ident(name)) => Ok(Term::Attr(name)),
            Some(Token::Minus) => {
                let inner = self.parse_term_atom()?;
                Ok(Term::Neg(Box::new(inner)))
            }
            Some(Token::Dollar) => {
                self.expect(&Token::LParen, "$(...) dereference")?;
                let inner = self.parse_term()?;
                self.expect(&Token::RParen, "$(...) dereference")?;
                Ok(Term::Deref(Box::new(inner)))
            }
            Some(Token::LParen) => {
                let inner = self.parse_term()?;
                self.expect(&Token::RParen, "parenthesised term")?;
                Ok(inner)
            }
            Some(got) => Err(ParseError::Unexpected(got.to_string(), "term")),
            None => Err(ParseError::Eof("term")),
        }
    }

    // ---- Licensee formulas ----

    fn parse_licensees(&mut self) -> Result<LicenseeExpr, ParseError> {
        let expr = self.parse_lic_or()?;
        if !self.at_end() {
            return Err(ParseError::Unexpected(
                self.peek().map(|t| t.to_string()).unwrap_or_default(),
                "licensees formula",
            ));
        }
        Ok(expr)
    }

    fn parse_lic_or(&mut self) -> Result<LicenseeExpr, ParseError> {
        let mut lhs = self.parse_lic_and()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.parse_lic_and()?;
            lhs = LicenseeExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_lic_and(&mut self) -> Result<LicenseeExpr, ParseError> {
        let mut lhs = self.parse_lic_atom()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.parse_lic_atom()?;
            lhs = LicenseeExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_lic_atom(&mut self) -> Result<LicenseeExpr, ParseError> {
        match self.bump() {
            Some(Token::Str(s)) => Ok(LicenseeExpr::Principal(s)),
            Some(Token::Ident(s)) => Ok(LicenseeExpr::Principal(s)),
            Some(Token::LParen) => {
                let inner = self.parse_lic_or()?;
                self.expect(&Token::RParen, "licensees group")?;
                Ok(inner)
            }
            Some(Token::Num(k)) => {
                // `k-of(p1, ..., pn)`
                self.expect(&Token::Minus, "k-of threshold")?;
                match self.bump() {
                    Some(Token::Ident(ref w)) if w.eq_ignore_ascii_case("of") => {}
                    Some(got) => {
                        return Err(ParseError::Unexpected(got.to_string(), "k-of threshold"))
                    }
                    None => return Err(ParseError::Eof("k-of threshold")),
                }
                self.expect(&Token::LParen, "k-of list")?;
                let mut items = Vec::new();
                loop {
                    items.push(self.parse_lic_or()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen, "k-of list")?;
                let k_int = k as usize;
                if k_int == 0 || k.fract() != 0.0 || k_int > items.len() {
                    return Err(ParseError::BadThreshold(k_int, items.len()));
                }
                Ok(LicenseeExpr::KOf(k_int, items))
            }
            Some(got) => Err(ParseError::Unexpected(got.to_string(), "licensees")),
            None => Err(ParseError::Eof("licensees")),
        }
    }
}

/// Parses a conditions program from a field body.
pub fn parse_conditions(src: &str) -> Result<ConditionsProgram, ParseError> {
    let mut p = P::new(src)?;
    let prog = p.parse_program(false)?;
    if !p.at_end() {
        return Err(ParseError::Unexpected(
            p.peek().map(|t| t.to_string()).unwrap_or_default(),
            "end of conditions",
        ));
    }
    Ok(prog)
}

/// Parses a single boolean expression (no clause structure).
pub fn parse_expression(src: &str) -> Result<Expr, ParseError> {
    let mut p = P::new(src)?;
    let e = p.parse_expr()?;
    if !p.at_end() {
        return Err(ParseError::Unexpected(
            p.peek().map(|t| t.to_string()).unwrap_or_default(),
            "end of expression",
        ));
    }
    Ok(e)
}

/// Parses a licensees formula from a field body.
pub fn parse_licensees(src: &str) -> Result<LicenseeExpr, ParseError> {
    let mut p = P::new(src)?;
    p.parse_licensees()
}

/// Parses an `Authorizer` field body.
pub fn parse_authorizer(src: &str) -> Result<Principal, ParseError> {
    let mut p = P::new(src)?;
    let prin = match p.bump() {
        Some(Token::Ident(ref w)) if w.eq_ignore_ascii_case("policy") => Principal::Policy,
        Some(Token::Ident(w)) => Principal::Key(w),
        Some(Token::Str(s)) => Principal::Key(s),
        Some(got) => return Err(ParseError::Unexpected(got.to_string(), "authorizer")),
        None => return Err(ParseError::Eof("authorizer")),
    };
    if !p.at_end() {
        return Err(ParseError::Unexpected(
            p.peek().map(|t| t.to_string()).unwrap_or_default(),
            "authorizer",
        ));
    }
    Ok(prin)
}

/// Parses a `Local-Constants` field body: `name = "value"` pairs.
pub fn parse_local_constants(src: &str) -> Result<Vec<(String, String)>, ParseError> {
    let mut p = P::new(src)?;
    let mut out = Vec::new();
    while !p.at_end() {
        let name = match p.bump() {
            Some(Token::Ident(n)) => n,
            Some(got) => return Err(ParseError::Unexpected(got.to_string(), "local constant")),
            None => break,
        };
        p.expect(&Token::Assign, "local constant")?;
        let value = match p.bump() {
            Some(Token::Str(v)) => v,
            Some(Token::Num(n)) => format_num(n),
            Some(got) => {
                return Err(ParseError::Unexpected(got.to_string(), "local constant value"))
            }
            None => return Err(ParseError::Eof("local constant value")),
        };
        out.push((name, value));
        // Optional comma between pairs.
        p.eat(&Token::Comma);
    }
    Ok(out)
}

/// Formats a number the way the evaluator renders numeric results:
/// integral values without a decimal point.
pub fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Splits a multi-assertion text on blank lines and parses each chunk.
pub fn parse_assertions(text: &str) -> Result<Vec<Assertion>, ParseError> {
    let mut out = Vec::new();
    let mut chunk = String::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            if !chunk.trim().is_empty() {
                out.push(parse_assertion(&chunk)?);
            }
            chunk.clear();
        } else {
            chunk.push_str(line);
            chunk.push('\n');
        }
    }
    if !chunk.trim().is_empty() {
        out.push(parse_assertion(&chunk)?);
    }
    Ok(out)
}

/// Parses one assertion from field-structured text.
pub fn parse_assertion(text: &str) -> Result<Assertion, ParseError> {
    // Join continuation lines (indented) onto their field line.
    let mut fields: Vec<(String, String)> = Vec::new();
    for raw in text.lines() {
        if raw.trim().is_empty() {
            continue;
        }
        if raw.starts_with(' ') || raw.starts_with('\t') {
            match fields.last_mut() {
                Some((_, body)) => {
                    body.push(' ');
                    body.push_str(raw.trim());
                }
                None => return Err(ParseError::BadFieldLine(raw.to_string())),
            }
            continue;
        }
        let Some(colon) = raw.find(':') else {
            return Err(ParseError::BadFieldLine(raw.to_string()));
        };
        let name = raw[..colon].trim().to_string();
        let body = raw[colon + 1..].trim().to_string();
        fields.push((name, body));
    }

    let mut version = None;
    let mut comment = None;
    let mut local_constants = Vec::new();
    let mut authorizer = None;
    let mut licensees = None;
    let mut conditions = None;
    let mut signature = None;

    for (name, body) in fields {
        match name.to_ascii_lowercase().as_str() {
            "keynote-version" => {
                set_once(&mut version, body, &name)?;
            }
            "comment" => {
                set_once(&mut comment, body, &name)?;
            }
            "local-constants" => {
                if !local_constants.is_empty() {
                    return Err(ParseError::DuplicateField(name));
                }
                local_constants = parse_local_constants(&body)?;
            }
            "authorizer" => {
                set_once(&mut authorizer, parse_authorizer(&body)?, &name)?;
            }
            "licensees" => {
                set_once(&mut licensees, parse_licensees(&body)?, &name)?;
            }
            "conditions" => {
                set_once(&mut conditions, parse_conditions(&body)?, &name)?;
            }
            "signature" => {
                set_once(&mut signature, body, &name)?;
            }
            _ => return Err(ParseError::UnknownField(name)),
        }
    }

    Ok(Assertion {
        version,
        comment,
        local_constants,
        authorizer: authorizer.ok_or(ParseError::MissingField("Authorizer"))?,
        licensees,
        conditions,
        signature,
    })
}

fn set_once<T>(slot: &mut Option<T>, value: T, field: &str) -> Result<(), ParseError> {
    if slot.is_some() {
        return Err(ParseError::DuplicateField(field.to_string()));
    }
    *slot = Some(value);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figure_2() {
        // Figure 2: policy credential allowing Bob to read/write.
        let text = "Authorizer: POLICY\n\
                    Licensees: \"Kbob\"\n\
                    Conditions: app_domain==\"SalariesDB\" &&\n\
                    \t(oper==\"read\" || oper==\"write\");\n";
        let a = parse_assertion(text).unwrap();
        assert_eq!(a.authorizer, Principal::Policy);
        assert_eq!(
            a.licensees,
            Some(LicenseeExpr::Principal("Kbob".to_string()))
        );
        let prog = a.conditions.unwrap();
        assert_eq!(prog.clauses.len(), 1);
        match &prog.clauses[0] {
            Clause::Bare(Expr::And(_, _)) => {}
            other => panic!("unexpected clause: {other:?}"),
        }
    }

    #[test]
    fn parses_paper_figure_4() {
        // Figure 4: Kbob delegates write to Kalice.
        let text = "Authorizer: \"Kbob\"\n\
                    licensees: \"Kalice\"\n\
                    Conditions: app_domain==\"SalariesDB\"\n\
                    \t&& oper==\"write\";\n";
        let a = parse_assertion(text).unwrap();
        assert_eq!(a.authorizer, Principal::key("Kbob"));
        assert_eq!(a.licensees, Some(LicenseeExpr::Principal("Kalice".into())));
    }

    #[test]
    fn parses_arrow_clause_values() {
        let prog = parse_conditions("amount < 100 -> \"approve\"; amount < 1000 -> log;").unwrap();
        assert_eq!(prog.clauses.len(), 2);
        assert!(matches!(&prog.clauses[0], Clause::Arrow(_, v) if v == "approve"));
        assert!(matches!(&prog.clauses[1], Clause::Arrow(_, v) if v == "log"));
    }

    #[test]
    fn parses_nested_program() {
        let prog =
            parse_conditions("app_domain==\"x\" -> { a==\"1\" -> v1; a==\"2\" -> v2; };").unwrap();
        assert_eq!(prog.clauses.len(), 1);
        match &prog.clauses[0] {
            Clause::Nested(_, inner) => assert_eq!(inner.clauses.len(), 2),
            other => panic!("unexpected clause {other:?}"),
        }
    }

    #[test]
    fn parses_licensee_formulas() {
        let f = parse_licensees("\"Ka\" && (\"Kb\" || \"Kc\")").unwrap();
        match f {
            LicenseeExpr::And(a, b) => {
                assert_eq!(*a, LicenseeExpr::Principal("Ka".into()));
                assert!(matches!(*b, LicenseeExpr::Or(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_threshold() {
        let f = parse_licensees("2-of(\"Ka\", \"Kb\", \"Kc\")").unwrap();
        match f {
            LicenseeExpr::KOf(2, items) => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
        assert!(parse_licensees("4-of(\"Ka\", \"Kb\")").is_err());
        assert!(parse_licensees("0-of(\"Ka\")").is_err());
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let e = parse_expression("1 + 2 * 3 == 7").unwrap();
        match e {
            Expr::Cmp { op: CmpOp::Eq, lhs, .. } => match lhs {
                Term::Arith { op: ArithOp::Add, rhs, .. } => {
                    assert!(matches!(*rhs, Term::Arith { op: ArithOp::Mul, .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pow_is_right_associative() {
        let e = parse_expression("2 ^ 3 ^ 2 == 512").unwrap();
        match e {
            Expr::Cmp { lhs: Term::Arith { op: ArithOp::Pow, rhs, .. }, .. } => {
                assert!(matches!(*rhs, Term::Arith { op: ArithOp::Pow, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_deref_and_concat() {
        let e = parse_expression("$(\"ro\" . \"le\") == \"Manager\"").unwrap();
        match e {
            Expr::Cmp { lhs: Term::Deref(inner), .. } => {
                assert!(matches!(*inner, Term::Concat(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn true_false_keywords() {
        assert_eq!(parse_expression("true").unwrap(), Expr::True);
        assert_eq!(parse_expression("FALSE").unwrap(), Expr::False);
        // `true` used as attribute in a comparison stays an attribute.
        let e = parse_expression("true == \"x\"").unwrap();
        assert!(matches!(e, Expr::Cmp { lhs: Term::Attr(ref n), .. } if n == "true"));
    }

    #[test]
    fn not_and_regex() {
        let e = parse_expression("!(a == \"1\") && b ~= \"^x+$\"").unwrap();
        assert!(matches!(e, Expr::And(_, _)));
    }

    #[test]
    fn authorizer_forms() {
        assert_eq!(parse_authorizer("POLICY").unwrap(), Principal::Policy);
        assert_eq!(parse_authorizer("Policy").unwrap(), Principal::Policy);
        assert_eq!(parse_authorizer("\"Kx\"").unwrap(), Principal::key("Kx"));
        assert_eq!(parse_authorizer("Kx").unwrap(), Principal::key("Kx"));
        assert!(parse_authorizer("\"Ka\" \"Kb\"").is_err());
        assert!(parse_authorizer("").is_err());
    }

    #[test]
    fn local_constants() {
        let lc = parse_local_constants("Kops = \"rsa-sim:abc:10001\" Admin=\"Kx\"").unwrap();
        assert_eq!(lc.len(), 2);
        assert_eq!(lc[0].0, "Kops");
        assert_eq!(lc[1], ("Admin".to_string(), "Kx".to_string()));
    }

    #[test]
    fn field_errors() {
        assert!(matches!(
            parse_assertion("Licensees: \"Ka\"\n"),
            Err(ParseError::MissingField("Authorizer"))
        ));
        assert!(matches!(
            parse_assertion("Authorizer: POLICY\nAuthorizer: POLICY\n"),
            Err(ParseError::DuplicateField(_))
        ));
        assert!(matches!(
            parse_assertion("Bogus-Field: x\nAuthorizer: POLICY\n"),
            Err(ParseError::UnknownField(_))
        ));
        assert!(matches!(
            parse_assertion("no colon here\n"),
            Err(ParseError::BadFieldLine(_))
        ));
        assert!(matches!(
            parse_assertion("  leading continuation\n"),
            Err(ParseError::BadFieldLine(_))
        ));
    }

    #[test]
    fn multi_assertion_text() {
        let text = "Authorizer: POLICY\nLicensees: \"Ka\"\n\n\nAuthorizer: \"Ka\"\nLicensees: \"Kb\"\n";
        let all = parse_assertions(text).unwrap();
        assert_eq!(all.len(), 2);
        assert!(all[0].is_policy());
        assert_eq!(all[1].authorizer, Principal::key("Ka"));
    }

    #[test]
    fn empty_conditions_program() {
        let prog = parse_conditions("").unwrap();
        assert!(prog.clauses.is_empty());
        let prog = parse_conditions(";;;").unwrap();
        assert!(prog.clauses.is_empty());
    }

    #[test]
    fn format_num_renders_integers() {
        assert_eq!(format_num(3.0), "3");
        assert_eq!(format_num(3.5), "3.5");
        assert_eq!(format_num(-2.0), "-2");
    }
}
