//! Compliance value sets (RFC 2704 §4).
//!
//! A KeyNote query is evaluated against an *ordered* set of compliance
//! values, from minimum trust to maximum trust. The classic binary set is
//! `_MIN_TRUST < _MAX_TRUST` (i.e. false/true), but applications may pass
//! richer sets such as `_MIN_TRUST < "approve_with_log" < _MAX_TRUST`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Name of the minimum-trust value.
pub const MIN_TRUST: &str = "_MIN_TRUST";
/// Name of the maximum-trust value.
pub const MAX_TRUST: &str = "_MAX_TRUST";

/// An ordered compliance value set.
///
/// Index 0 is always `_MIN_TRUST` and the last index is `_MAX_TRUST`;
/// application-specific values sit in between in increasing trust order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComplianceValues {
    names: Vec<String>,
}

impl ComplianceValues {
    /// The binary set `_MIN_TRUST < _MAX_TRUST`.
    pub fn binary() -> Self {
        ComplianceValues {
            names: vec![MIN_TRUST.to_string(), MAX_TRUST.to_string()],
        }
    }

    /// Builds a set with `middle` application values between min and max.
    ///
    /// Returns `None` if a middle value duplicates another name or uses a
    /// reserved name.
    pub fn with_middle(middle: &[&str]) -> Option<Self> {
        let mut names = Vec::with_capacity(middle.len() + 2);
        names.push(MIN_TRUST.to_string());
        for &m in middle {
            if m == MIN_TRUST || m == MAX_TRUST || names.iter().any(|n| n == m) {
                return None;
            }
            names.push(m.to_string());
        }
        names.push(MAX_TRUST.to_string());
        Some(ComplianceValues { names })
    }

    /// Number of values in the set.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false: a set has at least min and max.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the minimum-trust value (always 0).
    pub fn min(&self) -> ComplianceValue {
        ComplianceValue(0)
    }

    /// Index of the maximum-trust value.
    pub fn max(&self) -> ComplianceValue {
        ComplianceValue(self.names.len() - 1)
    }

    /// Resolves a value name to its ordinal, if present.
    pub fn index_of(&self, name: &str) -> Option<ComplianceValue> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(ComplianceValue)
    }

    /// Name of an ordinal value.
    pub fn name_of(&self, v: ComplianceValue) -> &str {
        &self.names[v.0]
    }

    /// All names in increasing trust order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The `_VALUES` pseudo-attribute: space-separated names.
    pub fn values_attribute(&self) -> String {
        self.names.join(" ")
    }
}

impl Default for ComplianceValues {
    fn default() -> Self {
        Self::binary()
    }
}

/// An ordinal into a [`ComplianceValues`] set; larger means more trusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComplianceValue(pub usize);

impl ComplianceValue {
    /// Minimum of two values (conjunction).
    pub fn and(self, other: ComplianceValue) -> ComplianceValue {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two values (disjunction).
    pub fn or(self, other: ComplianceValue) -> ComplianceValue {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for ComplianceValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cv#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_set_shape() {
        let v = ComplianceValues::binary();
        assert_eq!(v.len(), 2);
        assert_eq!(v.name_of(v.min()), MIN_TRUST);
        assert_eq!(v.name_of(v.max()), MAX_TRUST);
        assert!(v.min() < v.max());
    }

    #[test]
    fn middle_values_ordered() {
        let v = ComplianceValues::with_middle(&["log", "escalate"]).unwrap();
        assert_eq!(v.len(), 4);
        let log = v.index_of("log").unwrap();
        let esc = v.index_of("escalate").unwrap();
        assert!(v.min() < log && log < esc && esc < v.max());
    }

    #[test]
    fn duplicate_or_reserved_middle_rejected() {
        assert!(ComplianceValues::with_middle(&["a", "a"]).is_none());
        assert!(ComplianceValues::with_middle(&[MIN_TRUST]).is_none());
        assert!(ComplianceValues::with_middle(&[MAX_TRUST]).is_none());
    }

    #[test]
    fn and_or_are_min_max() {
        let a = ComplianceValue(1);
        let b = ComplianceValue(3);
        assert_eq!(a.and(b), a);
        assert_eq!(a.or(b), b);
        assert_eq!(b.and(a), a);
        assert_eq!(b.or(a), b);
    }

    #[test]
    fn values_attribute_format() {
        let v = ComplianceValues::with_middle(&["mid"]).unwrap();
        assert_eq!(v.values_attribute(), "_MIN_TRUST mid _MAX_TRUST");
    }

    #[test]
    fn index_of_unknown() {
        let v = ComplianceValues::binary();
        assert!(v.index_of("nope").is_none());
    }
}
