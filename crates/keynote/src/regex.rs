//! A small POSIX-flavoured regular-expression engine for the KeyNote
//! `~=` operator (RFC 2704 uses POSIX regular expressions).
//!
//! Supported syntax: literal characters, `.`, character classes
//! `[abc]`/`[a-z]`/`[^...]`, the postfix quantifiers `*`, `+`, `?`,
//! alternation `|`, grouping `(...)`, and the anchors `^`/`$`. Matching
//! is by backtracking over the parsed AST; capture groups are not
//! exposed (the framework never uses the `_0.._N` capture attributes).

use std::fmt;

/// A compiled regular expression.
#[derive(Clone, Debug)]
pub struct Regex {
    node: Node,
    anchored_start: bool,
    anchored_end: bool,
}

/// Regex parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegexError {
    /// Unbalanced parenthesis or bracket.
    Unbalanced(usize),
    /// A quantifier with nothing to repeat.
    DanglingQuantifier(usize),
    /// An empty character class or malformed range.
    BadClass(usize),
    /// Trailing escape character.
    TrailingEscape,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegexError::Unbalanced(i) => write!(f, "unbalanced group at byte {i}"),
            RegexError::DanglingQuantifier(i) => write!(f, "dangling quantifier at byte {i}"),
            RegexError::BadClass(i) => write!(f, "bad character class at byte {i}"),
            RegexError::TrailingEscape => write!(f, "trailing escape"),
        }
    }
}

impl std::error::Error for RegexError {}

#[derive(Clone, Debug)]
enum Node {
    Empty,
    Char(char),
    AnyChar,
    Class { negated: bool, items: Vec<ClassItem> },
    Concat(Vec<Node>),
    Alt(Vec<Node>),
    Star(Box<Node>),
    Plus(Box<Node>),
    Opt(Box<Node>),
}

#[derive(Clone, Debug)]
enum ClassItem {
    Single(char),
    Range(char, char),
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    _src: &'a str,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            chars: src.chars().collect(),
            pos: 0,
            _src: src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alt(&mut self) -> Result<Node, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Node::Alt(branches))
        }
    }

    fn parse_concat(&mut self) -> Result<Node, RegexError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        match parts.len() {
            0 => Ok(Node::Empty),
            1 => Ok(parts.pop().unwrap()),
            _ => Ok(Node::Concat(parts)),
        }
    }

    fn parse_repeat(&mut self) -> Result<Node, RegexError> {
        let atom = self.parse_atom()?;
        let mut node = atom;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    node = Node::Star(Box::new(node));
                }
                Some('+') => {
                    self.bump();
                    node = Node::Plus(Box::new(node));
                }
                Some('?') => {
                    self.bump();
                    node = Node::Opt(Box::new(node));
                }
                _ => break,
            }
        }
        Ok(node)
    }

    fn parse_atom(&mut self) -> Result<Node, RegexError> {
        let start = self.pos;
        match self.bump() {
            None => Ok(Node::Empty),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(RegexError::Unbalanced(start));
                }
                Ok(inner)
            }
            Some(')') => Err(RegexError::Unbalanced(start)),
            Some('*') | Some('+') | Some('?') => Err(RegexError::DanglingQuantifier(start)),
            Some('.') => Ok(Node::AnyChar),
            Some('[') => self.parse_class(start),
            Some('\\') => match self.bump() {
                None => Err(RegexError::TrailingEscape),
                Some(c) => Ok(Node::Char(c)),
            },
            Some(c) => Ok(Node::Char(c)),
        }
    }

    fn parse_class(&mut self, start: usize) -> Result<Node, RegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        // A literal ']' is allowed as the first class member.
        if self.peek() == Some(']') {
            self.bump();
            items.push(ClassItem::Single(']'));
        }
        loop {
            match self.bump() {
                None => return Err(RegexError::Unbalanced(start)),
                Some(']') => break,
                Some('\\') => match self.bump() {
                    None => return Err(RegexError::TrailingEscape),
                    Some(c) => items.push(ClassItem::Single(c)),
                },
                Some(c) => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).copied().is_some_and(|n| n != ']')
                    {
                        self.bump(); // '-'
                        let hi = self.bump().ok_or(RegexError::Unbalanced(start))?;
                        if hi < c {
                            return Err(RegexError::BadClass(start));
                        }
                        items.push(ClassItem::Range(c, hi));
                    } else {
                        items.push(ClassItem::Single(c));
                    }
                }
            }
        }
        if items.is_empty() {
            return Err(RegexError::BadClass(start));
        }
        Ok(Node::Class { negated, items })
    }
}

impl Regex {
    /// Compiles a pattern.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let anchored_start = pattern.starts_with('^');
        let anchored_end = pattern.ends_with('$') && !pattern.ends_with("\\$");
        let body_start = usize::from(anchored_start);
        let body_end = if anchored_end {
            pattern.len() - 1
        } else {
            pattern.len()
        };
        let body = &pattern[body_start..body_end.max(body_start)];
        let mut p = Parser::new(body);
        let node = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(RegexError::Unbalanced(p.pos));
        }
        Ok(Regex {
            node,
            anchored_start,
            anchored_end,
        })
    }

    /// True when the pattern matches anywhere in `text` (subject to the
    /// pattern's own anchors).
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        let starts: Box<dyn Iterator<Item = usize>> = if self.anchored_start {
            Box::new(std::iter::once(0))
        } else {
            Box::new(0..=chars.len())
        };
        for start in starts {
            let mut matched = false;
            match_node(&self.node, &chars, start, &mut |end| {
                if !self.anchored_end || end == chars.len() {
                    matched = true;
                    false // stop exploring
                } else {
                    true // keep exploring
                }
            });
            if matched {
                return true;
            }
        }
        false
    }
}

/// Backtracking matcher: calls `k(end)` for every position where `node`
/// can finish matching, starting at `pos`. `k` returns false to stop.
/// Returns false when the continuation asked to stop.
fn match_node(node: &Node, text: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match node {
        Node::Empty => k(pos),
        Node::Char(c) => {
            if text.get(pos) == Some(c) {
                k(pos + 1)
            } else {
                true
            }
        }
        Node::AnyChar => {
            if pos < text.len() {
                k(pos + 1)
            } else {
                true
            }
        }
        Node::Class { negated, items } => {
            if let Some(&c) = text.get(pos) {
                let inside = items.iter().any(|item| match item {
                    ClassItem::Single(s) => *s == c,
                    ClassItem::Range(lo, hi) => *lo <= c && c <= *hi,
                });
                if inside != *negated {
                    return k(pos + 1);
                }
            }
            true
        }
        Node::Concat(parts) => match_concat(parts, text, pos, k),
        Node::Alt(branches) => {
            for b in branches {
                if !match_node(b, text, pos, k) {
                    return false;
                }
            }
            true
        }
        Node::Star(inner) => match_star(inner, text, pos, k),
        Node::Plus(inner) => {
            // One mandatory match then star.
            match_node(inner, text, pos, &mut |mid| {
                if mid == pos {
                    // Zero-width inner match: avoid infinite recursion.
                    return k(mid);
                }
                match_star(inner, text, mid, k)
            })
        }
        Node::Opt(inner) => {
            if !match_node(inner, text, pos, k) {
                return false;
            }
            k(pos)
        }
    }
}

fn match_concat(
    parts: &[Node],
    text: &[char],
    pos: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    match parts.split_first() {
        None => k(pos),
        Some((head, rest)) => match_node(head, text, pos, &mut |mid| {
            match_concat(rest, text, mid, k)
        }),
    }
}

fn match_star(inner: &Node, text: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    // Try zero repetitions first... but greedy semantics don't matter for
    // is_match; explore zero first for simplicity.
    if !k(pos) {
        return false;
    }
    match_node(inner, text, pos, &mut |mid| {
        if mid == pos {
            return true; // zero-width: don't loop forever
        }
        match_star(inner, text, mid, k)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literal_substring_search() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab"));
        assert!(m("", "anything"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^abc", "xabc"));
        assert!(m("def$", "abcdef"));
        assert!(!m("def$", "defx"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
    }

    #[test]
    fn dot_and_classes() {
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "axc"));
        assert!(!m("a.c", "ac"));
        assert!(m("[abc]+", "zzbzz"));
        assert!(m("[a-f0-9]+$", "deadbeef42"));
        assert!(!m("^[a-f]+$", "xyz"));
        assert!(m("[^0-9]", "a1"));
        assert!(!m("^[^0-9]+$", "123"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("^ab+c$", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("^ab?c$", "abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("^(read|write)$", "read"));
        assert!(m("^(read|write)$", "write"));
        assert!(!m("^(read|write)$", "append"));
        assert!(m("^Salaries(DB)?$", "Salaries"));
        assert!(m("^Salaries(DB)?$", "SalariesDB"));
        assert!(m("^(ab)+$", "ababab"));
        assert!(!m("^(ab)+$", "aba"));
    }

    #[test]
    fn escapes() {
        assert!(m("a\\.c", "a.c"));
        assert!(!m("^a\\.c$", "abc"));
        assert!(m("\\[x\\]", "[x]"));
        assert!(m("a\\$b", "a$b"));
    }

    #[test]
    fn class_literal_bracket_and_dash() {
        assert!(m("^[]]$", "]"));
        assert!(m("^[a-]$", "-"));
        assert!(m("^[a-]$", "a"));
    }

    #[test]
    fn zero_width_star_terminates() {
        // (a?)* on a long string must not hang.
        assert!(m("^(a?)*$", "aaaa"));
        assert!(m("^(a*)*b$", "aaab"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(abc").is_err());
        assert!(Regex::new("abc)").is_err());
        assert!(Regex::new("*abc").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("abc\\").is_err());
    }

    #[test]
    fn domain_style_patterns() {
        assert!(m("^Finance(\\..*)?$", "Finance"));
        assert!(m("^Finance(\\..*)?$", "Finance.Payroll"));
        assert!(!m("^Finance(\\..*)?$", "FinanceX"));
    }
}
