//! Canonical serialisation of assertions back to KeyNote text.
//!
//! The canonical form is what gets signed (see [`crate::signing`]) and
//! what round-trips through the parser, so it must be deterministic:
//! fields in a fixed order, single spaces, no continuation lines.

use crate::ast::{
    ArithOp, Assertion, Clause, ConditionsProgram, Expr, LicenseeExpr, Principal, Term,
};
use crate::parser::format_num;
use std::fmt::Write;

/// Escapes a string for inclusion in double quotes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Renders a term.
pub fn print_term(t: &Term) -> String {
    match t {
        Term::Str(s) => format!("\"{}\"", escape(s)),
        Term::Num(n) => format_num(*n),
        Term::Attr(a) => a.clone(),
        Term::Deref(inner) => format!("$({})", print_term(inner)),
        Term::Concat(a, b) => format!("({} . {})", print_term(a), print_term(b)),
        Term::Arith { op, lhs, rhs } => match op {
            ArithOp::Pow => format!("({} ^ {})", print_term(lhs), print_term(rhs)),
            _ => format!("({} {} {})", print_term(lhs), op.symbol(), print_term(rhs)),
        },
        Term::Neg(inner) => format!("-{}", print_term(inner)),
    }
}

/// Renders a boolean expression.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::True => "true".to_string(),
        Expr::False => "false".to_string(),
        Expr::Or(a, b) => format!("({} || {})", print_expr(a), print_expr(b)),
        Expr::And(a, b) => format!("({} && {})", print_expr(a), print_expr(b)),
        Expr::Not(inner) => format!("!({})", print_expr(inner)),
        Expr::Cmp { op, lhs, rhs } => {
            format!("{} {} {}", print_term(lhs), op.symbol(), print_term(rhs))
        }
        Expr::RegexMatch { lhs, pattern } => {
            format!("{} ~= {}", print_term(lhs), print_term(pattern))
        }
    }
}

/// Renders a conditions program.
pub fn print_conditions(p: &ConditionsProgram) -> String {
    let mut out = String::new();
    for clause in &p.clauses {
        match clause {
            Clause::Bare(e) => {
                let _ = write!(out, "{};", print_expr(e));
            }
            Clause::Arrow(e, v) => {
                let _ = write!(out, "{} -> \"{}\";", print_expr(e), escape(v));
            }
            Clause::Nested(e, inner) => {
                let _ = write!(out, "{} -> {{ {} }};", print_expr(e), print_conditions(inner));
            }
        }
        out.push(' ');
    }
    out.trim_end().to_string()
}

/// Renders a licensees formula.
pub fn print_licensees(l: &LicenseeExpr) -> String {
    match l {
        LicenseeExpr::Principal(p) => format!("\"{}\"", escape(p)),
        LicenseeExpr::And(a, b) => format!("({} && {})", print_licensees(a), print_licensees(b)),
        LicenseeExpr::Or(a, b) => format!("({} || {})", print_licensees(a), print_licensees(b)),
        LicenseeExpr::KOf(k, items) => {
            let body: Vec<String> = items.iter().map(print_licensees).collect();
            format!("{}-of({})", k, body.join(", "))
        }
    }
}

/// Renders a principal for the `Authorizer` field.
pub fn print_principal(p: &Principal) -> String {
    match p {
        Principal::Policy => "POLICY".to_string(),
        Principal::Key(k) => format!("\"{}\"", escape(k)),
    }
}

/// Canonical text of an assertion, excluding the `Signature` value.
///
/// This is the byte string that signatures cover: every semantic field in
/// fixed order, terminated by the bare `Signature:` label.
pub fn signable_text(a: &Assertion) -> String {
    let mut out = String::new();
    if let Some(v) = &a.version {
        let _ = writeln!(out, "KeyNote-Version: {v}");
    }
    if let Some(c) = &a.comment {
        let _ = writeln!(out, "Comment: {c}");
    }
    if !a.local_constants.is_empty() {
        let pairs: Vec<String> = a
            .local_constants
            .iter()
            .map(|(n, v)| format!("{n} = \"{}\"", escape(v)))
            .collect();
        let _ = writeln!(out, "Local-Constants: {}", pairs.join(" "));
    }
    let _ = writeln!(out, "Authorizer: {}", print_principal(&a.authorizer));
    if let Some(l) = &a.licensees {
        let _ = writeln!(out, "Licensees: {}", print_licensees(l));
    }
    if let Some(c) = &a.conditions {
        let _ = writeln!(out, "Conditions: {}", print_conditions(c));
    }
    out.push_str("Signature:");
    out
}

/// Full canonical text of an assertion (with the signature value when
/// present).
pub fn print_assertion(a: &Assertion) -> String {
    let mut out = signable_text(a);
    match &a.signature {
        Some(sig) => {
            out.push(' ');
            out.push_str(sig);
            out.push('\n');
        }
        None => {
            // Unsigned assertions drop the dangling Signature label.
            out.truncate(out.len() - "Signature:".len());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_assertion, parse_conditions, parse_expression, parse_licensees};

    #[test]
    fn expression_roundtrip() {
        let srcs = [
            "app_domain == \"SalariesDB\" && (oper == \"read\" || oper == \"write\")",
            "!(a == \"1\") || b ~= \"^x\"",
            "1 + 2 * 3 == 7",
            "$(\"ro\" . \"le\") == \"Manager\"",
            "2 ^ 3 ^ 2 == 512",
            "-1 < amount",
        ];
        for src in srcs {
            let e = parse_expression(src).unwrap();
            let printed = print_expr(&e);
            let re = parse_expression(&printed).unwrap();
            assert_eq!(e, re, "src={src} printed={printed}");
        }
    }

    #[test]
    fn conditions_roundtrip() {
        let src = "a==\"1\" -> \"v1\"; b==\"2\" -> { c==\"3\" -> \"v2\"; }; d==\"4\";";
        let p = parse_conditions(src).unwrap();
        let printed = print_conditions(&p);
        let rp = parse_conditions(&printed).unwrap();
        assert_eq!(p, rp);
    }

    #[test]
    fn licensees_roundtrip() {
        for src in [
            "\"Ka\"",
            "\"Ka\" && \"Kb\"",
            "(\"Ka\" || \"Kb\") && \"Kc\"",
            "2-of(\"Ka\", \"Kb\", \"Kc\")",
        ] {
            let l = parse_licensees(src).unwrap();
            let printed = print_licensees(&l);
            assert_eq!(parse_licensees(&printed).unwrap(), l, "src={src}");
        }
    }

    #[test]
    fn assertion_roundtrip() {
        let text = "KeyNote-Version: 2\n\
                    Comment: fig 4\n\
                    Authorizer: \"Kbob\"\n\
                    Licensees: \"Kalice\"\n\
                    Conditions: app_domain==\"SalariesDB\" && oper==\"write\";\n\
                    Signature: sig-rsa-sha256:deadbeef\n";
        let a = parse_assertion(text).unwrap();
        let printed = print_assertion(&a);
        let b = parse_assertion(&printed).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn signable_text_is_stable_and_excludes_signature() {
        let text = "Authorizer: \"Ka\"\nLicensees: \"Kb\"\nSignature: sig-rsa-sha256:aa\n";
        let a = parse_assertion(text).unwrap();
        let s1 = signable_text(&a);
        assert!(s1.ends_with("Signature:"));
        assert!(!s1.contains("sig-rsa-sha256"));
        let mut b = a.clone();
        b.signature = Some("sig-rsa-sha256:bb".to_string());
        assert_eq!(s1, signable_text(&b));
    }

    #[test]
    fn escaping_survives_roundtrip() {
        let lic = LicenseeExpr::Principal("K\"quoted\\name".to_string());
        let printed = print_licensees(&lic);
        assert_eq!(parse_licensees(&printed).unwrap(), lic);
    }
}
