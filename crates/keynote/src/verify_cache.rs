//! Sharded memo cache for credential signature verdicts.
//!
//! Verifying a signed credential costs an RSA exponentiation, and
//! request-presented credentials (`query_action_with_extra`) were
//! re-verified on every query. A verdict is a pure function of the
//! credential's signable text, its authorizer key, and the signature
//! bytes, so it can be memoized indefinitely: tampering with any of the
//! three changes the cache key, and *revocation* is deliberately not a
//! cache concern — the compliance checker rejects revoked authorizers
//! after the (possibly memoized) signature check, so a revoked key is
//! refused even when its verdict is cached.
//!
//! Unsigned assertions are not cached: their verdict is free to compute
//! and caching them would only add hash traffic.

use crate::ast::Assertion;
use crate::print::signable_text;
use crate::signing::{verify_assertion, SignatureStatus};
use hetsec_crypto::sha256;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards; must be a power of two.
const SHARDS: usize = 16;

/// Per-shard entry cap. The cache stores 33-byte entries, so the bound
/// is generous; eviction drops an arbitrary entry (verdicts are cheap
/// to recompute, so precision is not worth an LRU list).
const SHARD_CAPACITY: usize = 4096;

/// Counters describing cache effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran a real signature verification.
    pub misses: u64,
    /// Verdicts admitted from verdict stamps rather than local
    /// verification ([`VerifyCache::admit_stamped`]).
    pub stamped: u64,
    /// Verdicts currently stored.
    pub entries: usize,
}

/// Sharded map from credential fingerprint to signature verdict.
///
/// Interior mutability keeps the session API `&self`-friendly; the
/// cache is shared (via `Arc`) across session clones because verdicts
/// are immutable facts about credential bytes, not session state.
pub struct VerifyCache {
    shards: Vec<Mutex<HashMap<[u8; 32], SignatureStatus>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stamped: AtomicU64,
}

impl Default for VerifyCache {
    fn default() -> Self {
        VerifyCache::new()
    }
}

impl std::fmt::Debug for VerifyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("VerifyCache")
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("entries", &stats.entries)
            .finish()
    }
}

/// Fingerprint over the three inputs the verdict depends on, each
/// length-prefixed so field boundaries cannot be confused.
fn fingerprint(signable: &str, key_text: &str, sig_text: &str) -> [u8; 32] {
    let mut buf = Vec::with_capacity(signable.len() + key_text.len() + sig_text.len() + 24);
    for part in [signable, key_text, sig_text] {
        buf.extend_from_slice(&(part.len() as u64).to_be_bytes());
        buf.extend_from_slice(part.as_bytes());
    }
    sha256(&buf)
}

/// The cache key a signed credential verifies under — the same
/// fingerprint [`VerifyCache::verify`] memoizes by, exposed so verdict
/// stamps can name a credential without shipping its bytes. `None` for
/// unsigned or POLICY-authored assertions, which have no cacheable
/// verdict.
pub fn credential_fingerprint(assertion: &Assertion) -> Option<[u8; 32]> {
    let (Some(sig_text), Some(key_text)) = (&assertion.signature, assertion.authorizer.key_text())
    else {
        return None;
    };
    Some(fingerprint(&signable_text(assertion), key_text, sig_text))
}

impl VerifyCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        VerifyCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stamped: AtomicU64::new(0),
        }
    }

    /// Verifies `assertion`, answering from the cache when the same
    /// (signable text, authorizer key, signature) triple has been
    /// verified before. Behaviorally identical to
    /// [`verify_assertion`].
    pub fn verify(&self, assertion: &Assertion) -> SignatureStatus {
        let Some(key) = credential_fingerprint(assertion) else {
            // Unsigned / POLICY-authored: the plain path is already
            // trivial, nothing worth caching.
            return verify_assertion(assertion);
        };
        let shard = &self.shards[(key[0] as usize) & (SHARDS - 1)];
        if let Some(status) = shard.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return status.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let status = verify_assertion(assertion);
        let mut map = shard.lock().unwrap();
        if map.len() >= SHARD_CAPACITY {
            if let Some(&evict) = map.keys().next() {
                map.remove(&evict);
            }
        }
        map.insert(key, status.clone());
        status
    }

    /// Admits an externally attested verdict under `fingerprint`, as
    /// computed by [`credential_fingerprint`]. Subsequent [`verify`]
    /// calls for the same credential bytes answer from the cache —
    /// *authenticating the attestation is the caller's job* (the webcom
    /// stamp verifier checks the issuing master's signature and fleet
    /// membership before calling this). Revocation is unaffected: the
    /// compliance checker refuses revoked authorizers after the
    /// (cached or stamped) signature verdict, exactly as for locally
    /// computed verdicts.
    ///
    /// [`verify`]: VerifyCache::verify
    pub fn admit_stamped(&self, fingerprint: [u8; 32], status: SignatureStatus) {
        let shard = &self.shards[(fingerprint[0] as usize) & (SHARDS - 1)];
        let mut map = shard.lock().unwrap();
        if map.len() >= SHARD_CAPACITY {
            if let Some(&evict) = map.keys().next() {
                map.remove(&evict);
            }
        }
        map.insert(fingerprint, status);
        self.stamped.fetch_add(1, Ordering::Relaxed);
    }

    /// Peeks at the stored verdict for `fingerprint` without verifying
    /// anything or moving the hit/miss counters. Stamp verifiers use
    /// this to skip re-checking a stamp whose verdict is already
    /// admitted.
    pub fn lookup(&self, fingerprint: &[u8; 32]) -> Option<SignatureStatus> {
        let shard = &self.shards[(fingerprint[0] as usize) & (SHARDS - 1)];
        shard.lock().unwrap().get(fingerprint).cloned()
    }

    /// Hit/miss/occupancy counters.
    pub fn stats(&self) -> VerifyCacheStats {
        VerifyCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stamped: self.stamped.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().unwrap().len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{LicenseeExpr, Principal};
    use crate::signing::sign_assertion;
    use hetsec_crypto::KeyPair;

    fn signed_credential(label: &str, licensee: &str) -> Assertion {
        let kp = KeyPair::from_label(label);
        let mut a = Assertion::new(
            Principal::key(kp.public().to_text()),
            LicenseeExpr::Principal(licensee.to_string()),
        );
        sign_assertion(&mut a, &kp).unwrap();
        a
    }

    #[test]
    fn memoizes_valid_verdicts() {
        let cache = VerifyCache::new();
        let a = signed_credential("vc-1", "Kalice");
        assert_eq!(cache.verify(&a), SignatureStatus::Valid);
        assert_eq!(cache.verify(&a), SignatureStatus::Valid);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn tampering_changes_the_cache_key() {
        let cache = VerifyCache::new();
        let a = signed_credential("vc-2", "Kalice");
        assert_eq!(cache.verify(&a), SignatureStatus::Valid);
        let mut tampered = a.clone();
        tampered.licensees = Some(LicenseeExpr::Principal("Kmallory".to_string()));
        // The tampered text hashes to a different key: fresh miss,
        // fresh (Invalid) verdict — the Valid memo cannot be reused.
        assert_eq!(cache.verify(&tampered), SignatureStatus::Invalid);
        assert_eq!(cache.verify(&tampered), SignatureStatus::Invalid);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    }

    #[test]
    fn unsigned_assertions_bypass_the_cache() {
        let cache = VerifyCache::new();
        let a = Assertion::new(
            Principal::key("Kbob"),
            LicenseeExpr::Principal("Kalice".to_string()),
        );
        assert_eq!(cache.verify(&a), SignatureStatus::Unsigned);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn admitted_stamped_verdict_answers_without_verification() {
        let cache = VerifyCache::new();
        let a = signed_credential("vc-stamp", "Kalice");
        let fp = credential_fingerprint(&a).unwrap();
        cache.admit_stamped(fp, SignatureStatus::Valid);
        // The first verify is already a hit: no RSA was paid locally.
        assert_eq!(cache.verify(&a), SignatureStatus::Valid);
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.stamped, stats.entries),
            (1, 0, 1, 1)
        );
    }

    #[test]
    fn unsigned_assertions_have_no_fingerprint() {
        let a = Assertion::new(
            Principal::key("Kbob"),
            LicenseeExpr::Principal("Kalice".to_string()),
        );
        assert_eq!(credential_fingerprint(&a), None);
    }

    #[test]
    fn invalid_verdicts_are_memoized_too() {
        let cache = VerifyCache::new();
        let mut a = signed_credential("vc-3", "Kalice");
        a.signature = Some("garbage".to_string());
        assert_eq!(cache.verify(&a), SignatureStatus::Invalid);
        assert_eq!(cache.verify(&a), SignatureStatus::Invalid);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
