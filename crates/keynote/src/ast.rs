//! Abstract syntax for KeyNote assertions (RFC 2704 §3-4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A principal: either the local trust root `POLICY` or a key, denoted by
/// its printable text (an `rsa-sim:` key string or a symbolic name such
/// as the paper's `Kbob`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Principal {
    /// The local policy root.
    Policy,
    /// A key, by printable text.
    Key(String),
}

impl Principal {
    /// Builds a key principal.
    pub fn key(text: impl Into<String>) -> Principal {
        Principal::Key(text.into())
    }

    /// The key text, or `None` for `POLICY`.
    pub fn key_text(&self) -> Option<&str> {
        match self {
            Principal::Policy => None,
            Principal::Key(k) => Some(k),
        }
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Principal::Policy => write!(f, "POLICY"),
            Principal::Key(k) => write!(f, "\"{k}\""),
        }
    }
}

/// Comparison operators usable in conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Source form of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
        }
    }
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^` (exponentiation)
    Pow,
}

impl ArithOp {
    /// Source form of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
            ArithOp::Pow => "^",
        }
    }
}

/// A string- or number-valued term in a condition expression.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// A quoted string literal.
    Str(String),
    /// A numeric literal.
    Num(f64),
    /// A direct action-attribute reference.
    Attr(String),
    /// Indirect dereference `$(term)`: the term's string value names the
    /// attribute to read.
    Deref(Box<Term>),
    /// String concatenation `a . b`.
    Concat(Box<Term>, Box<Term>),
    /// Binary arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<Term>,
        /// Right operand.
        rhs: Box<Term>,
    },
    /// Unary negation.
    Neg(Box<Term>),
}

impl Term {
    /// True when the term is syntactically numeric (forces a numeric
    /// comparison when used as a comparison operand).
    pub fn is_numeric_syntax(&self) -> bool {
        matches!(self, Term::Num(_) | Term::Arith { .. } | Term::Neg(_))
    }
}

/// A boolean condition expression.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Literal `true`.
    True,
    /// Literal `false`.
    False,
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Comparison of two terms.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left term.
        lhs: Term,
        /// Right term.
        rhs: Term,
    },
    /// POSIX regular-expression match `lhs ~= pattern`.
    RegexMatch {
        /// Subject term.
        lhs: Term,
        /// Pattern term (compiled at evaluation time).
        pattern: Term,
    },
}

/// One clause of a conditions program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Clause {
    /// `test` — equivalent to `test -> _MAX_TRUST`.
    Bare(Expr),
    /// `test -> value`.
    Arrow(Expr, String),
    /// `test -> { program }`.
    Nested(Expr, ConditionsProgram),
}

/// An ordered list of clauses; its value is the maximum over succeeding
/// clauses (RFC 2704 §4.3), `_MIN_TRUST` when none succeed.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct ConditionsProgram {
    /// The clauses in source order.
    pub clauses: Vec<Clause>,
}

/// A monotone formula over principals (the `Licensees` field).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LicenseeExpr {
    /// A single principal.
    Principal(String),
    /// Conjunction (minimum).
    And(Box<LicenseeExpr>, Box<LicenseeExpr>),
    /// Disjunction (maximum).
    Or(Box<LicenseeExpr>, Box<LicenseeExpr>),
    /// `k-of(p1, ..., pn)` threshold: the k-th largest operand value.
    KOf(usize, Vec<LicenseeExpr>),
}

impl LicenseeExpr {
    /// All principal texts mentioned by the formula (with duplicates).
    pub fn principals(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_principals(&mut out);
        out
    }

    fn collect_principals<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            LicenseeExpr::Principal(p) => out.push(p),
            LicenseeExpr::And(a, b) | LicenseeExpr::Or(a, b) => {
                a.collect_principals(out);
                b.collect_principals(out);
            }
            LicenseeExpr::KOf(_, items) => {
                for i in items {
                    i.collect_principals(out);
                }
            }
        }
    }
}

/// A parsed KeyNote assertion.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Assertion {
    /// `KeyNote-Version` field, if present.
    pub version: Option<String>,
    /// `Comment` field, if present.
    pub comment: Option<String>,
    /// `Local-Constants`: name/value pairs substituted during evaluation
    /// (they shadow action attributes).
    pub local_constants: Vec<(String, String)>,
    /// The `Authorizer` (required).
    pub authorizer: Principal,
    /// The `Licensees` formula; `None` authorises no one.
    pub licensees: Option<LicenseeExpr>,
    /// The `Conditions` program; `None` means unconditional.
    pub conditions: Option<ConditionsProgram>,
    /// The `Signature` value text, if the assertion is signed.
    pub signature: Option<String>,
}

impl Assertion {
    /// A minimal unsigned assertion.
    pub fn new(authorizer: Principal, licensees: LicenseeExpr) -> Self {
        Assertion {
            version: None,
            comment: None,
            local_constants: Vec::new(),
            authorizer,
            licensees: Some(licensees),
            conditions: None,
            signature: None,
        }
    }

    /// True when the authorizer is `POLICY` (a local policy assertion).
    pub fn is_policy(&self) -> bool {
        self.authorizer == Principal::Policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn principal_display() {
        assert_eq!(Principal::Policy.to_string(), "POLICY");
        assert_eq!(Principal::key("Kbob").to_string(), "\"Kbob\"");
        assert_eq!(Principal::key("Kbob").key_text(), Some("Kbob"));
        assert_eq!(Principal::Policy.key_text(), None);
    }

    #[test]
    fn licensee_principal_collection() {
        let f = LicenseeExpr::Or(
            Box::new(LicenseeExpr::Principal("a".into())),
            Box::new(LicenseeExpr::KOf(
                2,
                vec![
                    LicenseeExpr::Principal("b".into()),
                    LicenseeExpr::And(
                        Box::new(LicenseeExpr::Principal("c".into())),
                        Box::new(LicenseeExpr::Principal("a".into())),
                    ),
                ],
            )),
        );
        assert_eq!(f.principals(), vec!["a", "b", "c", "a"]);
    }

    #[test]
    fn numeric_syntax_detection() {
        assert!(Term::Num(1.0).is_numeric_syntax());
        assert!(Term::Neg(Box::new(Term::Attr("x".into()))).is_numeric_syntax());
        assert!(!Term::Str("1".into()).is_numeric_syntax());
        assert!(!Term::Attr("x".into()).is_numeric_syntax());
    }

    #[test]
    fn policy_detection() {
        let a = Assertion::new(Principal::Policy, LicenseeExpr::Principal("k".into()));
        assert!(a.is_policy());
        let b = Assertion::new(Principal::key("k1"), LicenseeExpr::Principal("k2".into()));
        assert!(!b.is_policy());
    }
}
