//! Signed verdict stamps: portable signature-verdict attestations.
//!
//! PR 3's [`crate::verify_cache`] amortises credential verification
//! *per process*; in a sharded fabric every master and client a
//! credential touches still pays its own first RSA exponentiation. A
//! `VerdictStamp` makes the verdict portable: the node that performed
//! the cache-miss verify (the credential's home master) signs
//! `(credential fingerprint, status, session epoch, issued-at)` with
//! its own key, and any node that trusts that key admits the verdict
//! into its local cache after a single stamp-signature check — one
//! modpow against a key whose Montgomery context is already cached,
//! instead of a full per-credential verify (key parse + fresh context
//! + modpow) per credential.
//!
//! The stamp attests only the *signature verdict*, never authorisation:
//! compliance checking — including revoked-authorizer refusal — runs
//! unchanged on every node, so a stamp for a revoked key's credential
//! is still refused at compliance time. Deciding *which* issuer keys to
//! trust and how to treat stale epochs is the transport layer's job
//! (see `hetsec-webcom`'s stamp verifier).

use crate::signing::SignatureStatus;
use hetsec_crypto::stamp::{sign_stamp, verify_stamp};
use hetsec_crypto::{hex_digest, KeyPair, PublicKey, Signature};
use serde::{Deserialize, Serialize};

/// Wire code for a [`SignatureStatus`]; stable across releases (the
/// stamp signature covers it, so both ends must agree byte-for-byte).
pub fn status_code(status: &SignatureStatus) -> u8 {
    match status {
        SignatureStatus::Unsigned => 0,
        SignatureStatus::Valid => 1,
        SignatureStatus::Invalid => 2,
        SignatureStatus::Unverifiable => 3,
    }
}

/// Inverse of [`status_code`]; `None` for unknown codes (a stamp from
/// a newer protocol revision — reject rather than guess).
pub fn status_from_code(code: u8) -> Option<SignatureStatus> {
    match code {
        0 => Some(SignatureStatus::Unsigned),
        1 => Some(SignatureStatus::Valid),
        2 => Some(SignatureStatus::Invalid),
        3 => Some(SignatureStatus::Unverifiable),
        _ => None,
    }
}

fn decode_fingerprint(hex: &str) -> Option<[u8; 32]> {
    if hex.len() != 64 {
        return None;
    }
    let mut out = [0u8; 32];
    for (i, byte) in out.iter_mut().enumerate() {
        *byte = u8::from_str_radix(hex.get(2 * i..2 * i + 2)?, 16).ok()?;
    }
    Some(out)
}

/// A signed, self-describing verdict attestation. All fields are
/// printable so the stamp rides JSON wire frames unchanged.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictStamp {
    /// Hex of the credential's verify-cache fingerprint
    /// ([`crate::verify_cache::credential_fingerprint`]).
    pub fingerprint: String,
    /// [`status_code`] of the attested verdict.
    pub status: u8,
    /// The issuer's trust-session epoch at issue time; receivers treat
    /// stamps older than the issuer's highest seen epoch as stale.
    pub epoch: u64,
    /// Seconds since the Unix epoch at issue time (informational).
    pub issued_at: u64,
    /// Printable public key of the issuing master — the fleet-trust
    /// lookup key.
    pub issuer: String,
    /// Printable signature over the canonical stamp payload.
    pub signature: String,
}

impl VerdictStamp {
    /// Issues a stamp: signs the verdict with the issuing master's key.
    pub fn issue(
        key: &KeyPair,
        fingerprint: [u8; 32],
        status: &SignatureStatus,
        epoch: u64,
        issued_at: u64,
    ) -> VerdictStamp {
        let code = status_code(status);
        let sig = sign_stamp(key, &fingerprint, code, epoch, issued_at);
        VerdictStamp {
            fingerprint: hex_digest(&fingerprint),
            status: code,
            epoch,
            issued_at,
            issuer: key.public().to_text(),
            signature: sig.to_text(),
        }
    }

    /// Decoded fingerprint, or `None` if the hex is malformed.
    pub fn fingerprint_bytes(&self) -> Option<[u8; 32]> {
        decode_fingerprint(&self.fingerprint)
    }

    /// Decoded verdict, or `None` for unknown status codes.
    pub fn status(&self) -> Option<SignatureStatus> {
        status_from_code(self.status)
    }

    /// Checks the stamp signature against `issuer` — which the caller
    /// must already have resolved *and trusted* (fleet membership is
    /// decided before, not by, this check). Returns the attested
    /// `(fingerprint, status)` on success; `None` if any field is
    /// malformed or the signature does not verify.
    pub fn verify_with(&self, issuer: &PublicKey) -> Option<([u8; 32], SignatureStatus)> {
        let fingerprint = self.fingerprint_bytes()?;
        let status = self.status()?;
        let sig: Signature = self.signature.parse().ok()?;
        if !verify_stamp(
            issuer,
            &fingerprint,
            self.status,
            self.epoch,
            self.issued_at,
            &sig,
        ) {
            return None;
        }
        Some((fingerprint, status))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Assertion, LicenseeExpr, Principal};
    use crate::signing::sign_assertion;
    use crate::verify_cache::credential_fingerprint;

    fn master() -> KeyPair {
        KeyPair::from_label("stamp-test-master")
    }

    fn signed_credential(label: &str) -> Assertion {
        let kp = KeyPair::from_label(label);
        let mut a = Assertion::new(
            Principal::key(kp.public().to_text()),
            LicenseeExpr::Principal("Kworker".to_string()),
        );
        sign_assertion(&mut a, &kp).unwrap();
        a
    }

    #[test]
    fn issue_then_verify() {
        let kp = master();
        let cred = signed_credential("stamp-cred");
        let fp = credential_fingerprint(&cred).unwrap();
        let stamp = VerdictStamp::issue(&kp, fp, &SignatureStatus::Valid, 4, 99);
        let (got_fp, got_status) = stamp.verify_with(kp.public()).unwrap();
        assert_eq!(got_fp, fp);
        assert_eq!(got_status, SignatureStatus::Valid);
    }

    #[test]
    fn wrong_issuer_rejected() {
        let kp = master();
        let other = KeyPair::from_label("stamp-test-imposter");
        let stamp = VerdictStamp::issue(&kp, [5u8; 32], &SignatureStatus::Valid, 0, 0);
        assert!(stamp.verify_with(other.public()).is_none());
    }

    #[test]
    fn malformed_fields_rejected() {
        let kp = master();
        let good = VerdictStamp::issue(&kp, [1u8; 32], &SignatureStatus::Valid, 1, 2);
        let mut short_fp = good.clone();
        short_fp.fingerprint.truncate(10);
        assert!(short_fp.verify_with(kp.public()).is_none());
        let mut bad_hex = good.clone();
        bad_hex.fingerprint = "zz".repeat(32);
        assert!(bad_hex.verify_with(kp.public()).is_none());
        let mut unknown_status = good.clone();
        unknown_status.status = 200;
        assert!(unknown_status.verify_with(kp.public()).is_none());
        let mut bad_sig = good.clone();
        bad_sig.signature = "garbage".to_string();
        assert!(bad_sig.verify_with(kp.public()).is_none());
        assert!(good.verify_with(kp.public()).is_some());
    }

    #[test]
    fn status_codes_roundtrip() {
        for status in [
            SignatureStatus::Unsigned,
            SignatureStatus::Valid,
            SignatureStatus::Invalid,
            SignatureStatus::Unverifiable,
        ] {
            assert_eq!(status_from_code(status_code(&status)), Some(status));
        }
        assert_eq!(status_from_code(4), None);
    }

    #[test]
    fn serde_roundtrip() {
        let kp = master();
        let stamp = VerdictStamp::issue(&kp, [8u8; 32], &SignatureStatus::Valid, 7, 123);
        let json = serde_json::to_string(&stamp).unwrap();
        let back: VerdictStamp = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stamp);
        assert!(back.verify_with(kp.public()).is_some());
    }
}
