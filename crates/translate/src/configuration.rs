//! Policy Configuration (paper §4.1): KeyNote → middleware RBAC.
//!
//! The inverse of comprehension: a Figure 5-style policy assertion is
//! decompiled back into `HasPermission` rows and Figure 6-style
//! credentials into `UserRole` rows, which can then be commissioned into
//! any middleware through its [`hetsec_middleware::MiddlewareSecurity`]
//! surface. The decompiler normalises the condition expression into
//! disjunctive normal form; conjunctions that do not bind the expected
//! attributes are reported rather than silently dropped.

use crate::comprehension::APP_DOMAIN;
use crate::directory::PrincipalDirectory;
use hetsec_keynote::ast::{Assertion, Clause, CmpOp, Expr, LicenseeExpr, Principal, Term};
use hetsec_rbac::{PermissionGrant, RbacPolicy, RoleAssignment, User as RbacUser};
use serde::{Deserialize, Serialize};

/// A conjunction of `attr == value` bindings.
pub type Conjunct = Vec<(String, String)>;

/// Converts an expression into DNF over `attr == value` atoms.
///
/// Returns `None` when the expression uses constructs that do not
/// correspond to RBAC rows (negation, inequalities, arithmetic, regex) —
/// such policies are KeyNote-only and cannot be pushed down into
/// middleware.
pub fn expr_to_dnf(e: &Expr) -> Option<Vec<Conjunct>> {
    match e {
        Expr::True => Some(vec![Vec::new()]),
        Expr::False => Some(Vec::new()),
        Expr::Or(a, b) => {
            let mut left = expr_to_dnf(a)?;
            let right = expr_to_dnf(b)?;
            left.extend(right);
            Some(left)
        }
        Expr::And(a, b) => {
            let left = expr_to_dnf(a)?;
            let right = expr_to_dnf(b)?;
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    let mut c = l.clone();
                    c.extend(r.iter().cloned());
                    out.push(c);
                }
            }
            Some(out)
        }
        Expr::Cmp { op: CmpOp::Eq, lhs, rhs } => match (lhs, rhs) {
            (Term::Attr(a), Term::Str(v)) | (Term::Str(v), Term::Attr(a)) => {
                Some(vec![vec![(a.clone(), v.clone())]])
            }
            _ => None,
        },
        _ => None,
    }
}

/// Reads the single binding for `attr` in a conjunct; contradictory
/// duplicate bindings yield `None`.
fn binding<'a>(conjunct: &'a Conjunct, attr: &str) -> Option<&'a str> {
    let mut found: Option<&str> = None;
    for (a, v) in conjunct {
        if a == attr {
            match found {
                None => found = Some(v),
                Some(prev) if prev == v => {}
                Some(_) => return None,
            }
        }
    }
    found
}

/// Outcome of decoding a credential set.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeReport {
    /// The reconstructed relations.
    pub policy: RbacPolicy,
    /// Assertions or conjuncts that could not be interpreted, with
    /// reasons.
    pub skipped: Vec<String>,
}

/// Collects the conjuncts of every clause test in an assertion. Only
/// bare and `-> _MAX_TRUST` clauses translate to flat RBAC rows.
fn assertion_conjuncts(a: &Assertion, report: &mut DecodeReport) -> Vec<Conjunct> {
    let Some(prog) = &a.conditions else {
        report.skipped.push("assertion without conditions".to_string());
        return Vec::new();
    };
    let mut out = Vec::new();
    for clause in &prog.clauses {
        let test = match clause {
            Clause::Bare(t) => t,
            Clause::Arrow(t, v) if v == "_MAX_TRUST" => t,
            Clause::Arrow(_, v) => {
                report
                    .skipped
                    .push(format!("clause with non-binary value `{v}`"));
                continue;
            }
            Clause::Nested(..) => {
                report.skipped.push("nested conditions clause".to_string());
                continue;
            }
        };
        match expr_to_dnf(test) {
            Some(conjuncts) => out.extend(conjuncts),
            None => report
                .skipped
                .push("clause uses non-RBAC constructs (kept KeyNote-only)".to_string()),
        }
    }
    out
}

/// Decodes a set of KeyNote assertions back into the common RBAC
/// relations (the inverse of
/// [`crate::comprehension::encode_policy`]).
///
/// * A `POLICY` assertion licensing `webcom_key` contributes
///   `HasPermission` rows;
/// * a credential authored by `webcom_key` licensing a single user key
///   contributes `UserRole` rows (the user resolved via `directory`).
pub fn decode_policy(
    assertions: &[Assertion],
    webcom_key: &str,
    directory: &dyn PrincipalDirectory,
) -> DecodeReport {
    let mut report = DecodeReport::default();
    for a in assertions {
        match &a.authorizer {
            Principal::Policy => {
                // Must license the WebCom administration key.
                match &a.licensees {
                    Some(LicenseeExpr::Principal(k)) if k == webcom_key => {}
                    other => {
                        report.skipped.push(format!(
                            "POLICY assertion licensing {other:?}, not the WebCom key"
                        ));
                        continue;
                    }
                }
                for conjunct in assertion_conjuncts(a, &mut report) {
                    decode_grant(&conjunct, &mut report);
                }
            }
            Principal::Key(author) if author == webcom_key => {
                let user_key = match &a.licensees {
                    Some(LicenseeExpr::Principal(k)) => k.clone(),
                    other => {
                        report.skipped.push(format!(
                            "WebCom credential with non-singleton licensees {other:?}"
                        ));
                        continue;
                    }
                };
                // Resolve the key through the directory; fall back to
                // the Figure 6 comment convention ("<user> is authorised
                // as ..."), which makes symbolic credentials decodable
                // by a process that did not issue the keys (the CLI).
                let resolved = directory.user_of(&user_key).or_else(|| {
                    a.comment
                        .as_deref()
                        .and_then(|c| c.split(" is authorised as ").next())
                        .filter(|name| !name.is_empty() && !name.contains(' '))
                        .map(RbacUser::new)
                });
                let Some(user) = resolved else {
                    report
                        .skipped
                        .push(format!("unknown principal `{user_key}`"));
                    continue;
                };
                for conjunct in assertion_conjuncts(a, &mut report) {
                    if binding(&conjunct, "app_domain") != Some(APP_DOMAIN) {
                        report
                            .skipped
                            .push(format!("membership conjunct outside {APP_DOMAIN}"));
                        continue;
                    }
                    match (binding(&conjunct, "Domain"), binding(&conjunct, "Role")) {
                        (Some(d), Some(r)) => {
                            report
                                .policy
                                .assign(RoleAssignment::new(user.clone(), d, r));
                        }
                        _ => report.skipped.push(format!(
                            "membership conjunct missing Domain/Role: {conjunct:?}"
                        )),
                    }
                }
            }
            Principal::Key(other) => {
                report.skipped.push(format!(
                    "credential from `{other}` (third-party delegation stays KeyNote-only)"
                ));
            }
        }
    }
    report
}

fn decode_grant(conjunct: &Conjunct, report: &mut DecodeReport) {
    if binding(conjunct, "app_domain") != Some(APP_DOMAIN) {
        report
            .skipped
            .push(format!("grant conjunct outside {APP_DOMAIN}"));
        return;
    }
    match (
        binding(conjunct, "Domain"),
        binding(conjunct, "Role"),
        binding(conjunct, "ObjectType"),
        binding(conjunct, "Permission"),
    ) {
        (Some(d), Some(r), Some(t), Some(p)) => {
            report.policy.grant(PermissionGrant::new(d, r, t, p));
        }
        _ => report.skipped.push(format!(
            "grant conjunct missing Domain/Role/ObjectType/Permission: {conjunct:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comprehension::encode_policy;
    use crate::directory::SymbolicDirectory;
    use hetsec_keynote::parser::parse_expression;
    use hetsec_rbac::fixtures::{salaries_policy, synthetic_policy};

    #[test]
    fn dnf_simple_cases() {
        let e = parse_expression("a == \"1\"").unwrap();
        assert_eq!(expr_to_dnf(&e), Some(vec![vec![("a".into(), "1".into())]]));
        let e = parse_expression("a == \"1\" || b == \"2\"").unwrap();
        assert_eq!(expr_to_dnf(&e).unwrap().len(), 2);
        let e = parse_expression("a == \"1\" && (b == \"2\" || c == \"3\")").unwrap();
        let dnf = expr_to_dnf(&e).unwrap();
        assert_eq!(dnf.len(), 2);
        assert!(dnf.iter().all(|c| c.len() == 2));
        assert_eq!(expr_to_dnf(&Expr::True), Some(vec![vec![]]));
        assert_eq!(expr_to_dnf(&Expr::False), Some(vec![]));
    }

    #[test]
    fn dnf_rejects_non_rbac_constructs() {
        for src in [
            "!(a == \"1\")",
            "a != \"1\"",
            "a < \"1\"",
            "a ~= \"x\"",
            "a + 1 == 2",
            "a == b",
        ] {
            let e = parse_expression(src).unwrap();
            assert!(expr_to_dnf(&e).is_none(), "src={src}");
        }
    }

    #[test]
    fn reversed_equality_accepted() {
        let e = parse_expression("\"WebCom\" == app_domain").unwrap();
        assert_eq!(
            expr_to_dnf(&e),
            Some(vec![vec![("app_domain".into(), "WebCom".into())]])
        );
    }

    #[test]
    fn encode_decode_roundtrips_figure_1() {
        let original = salaries_policy();
        let dir = SymbolicDirectory::default();
        let assertions = encode_policy(&original, "KWebCom", &dir);
        let report = decode_policy(&assertions, "KWebCom", &dir);
        assert_eq!(report.policy, original);
        assert!(report.skipped.is_empty(), "{:?}", report.skipped);
    }

    #[test]
    fn encode_decode_roundtrips_synthetic() {
        let original = synthetic_policy(4, 3, 3, 2);
        let dir = SymbolicDirectory::default();
        let assertions = encode_policy(&original, "KWebCom", &dir);
        let report = decode_policy(&assertions, "KWebCom", &dir);
        assert_eq!(report.policy, original);
        assert!(report.skipped.is_empty());
    }

    #[test]
    fn third_party_delegations_stay_keynote_only() {
        use crate::comprehension::delegate_role;
        use hetsec_rbac::{DomainRole, User};
        let dir = SymbolicDirectory::default();
        let mut assertions = encode_policy(&salaries_policy(), "KWebCom", &dir);
        assertions.push(delegate_role(
            &User::new("Claire"),
            &User::new("Fred"),
            &DomainRole::new("Sales", "Manager"),
            &dir,
        ));
        let report = decode_policy(&assertions, "KWebCom", &dir);
        // The delegation does not become a UserRole row...
        assert!(!report
            .policy
            .user_in_role(&"Fred".into(), &"Sales".into(), &"Manager".into()));
        // ...and is reported.
        assert!(report.skipped.iter().any(|s| s.contains("third-party")));
    }

    #[test]
    fn foreign_policy_assertions_skipped() {
        let dir = SymbolicDirectory::default();
        let a = hetsec_keynote::parser::parse_assertion(
            "Authorizer: POLICY\nLicensees: \"Ksomeoneelse\"\nConditions: app_domain==\"WebCom\";\n",
        )
        .unwrap();
        let report = decode_policy(&[a], "KWebCom", &dir);
        assert!(report.policy.is_empty());
        assert_eq!(report.skipped.len(), 1);
    }

    #[test]
    fn unknown_principal_skipped() {
        let dir = SymbolicDirectory::default();
        let a = hetsec_keynote::parser::parse_assertion(
            "Authorizer: \"KWebCom\"\nLicensees: \"rsa-sim:abc:10001\"\n\
             Conditions: app_domain==\"WebCom\" && Domain==\"D\" && Role==\"R\";\n",
        )
        .unwrap();
        let report = decode_policy(&[a], "KWebCom", &dir);
        assert!(report.policy.is_empty());
        assert!(report.skipped.iter().any(|s| s.contains("unknown principal")));
    }

    #[test]
    fn incomplete_conjuncts_reported() {
        let dir = SymbolicDirectory::default();
        let a = hetsec_keynote::parser::parse_assertion(
            "Authorizer: POLICY\nLicensees: \"KWebCom\"\n\
             Conditions: app_domain==\"WebCom\" && Domain==\"D\" && Role==\"R\";\n",
        )
        .unwrap();
        let report = decode_policy(&[a], "KWebCom", &dir);
        assert!(report.policy.is_empty());
        assert!(report
            .skipped
            .iter()
            .any(|s| s.contains("missing Domain/Role/ObjectType/Permission")));
    }

    #[test]
    fn keynote_only_conditions_preserved_as_skips() {
        let dir = SymbolicDirectory::default();
        let a = hetsec_keynote::parser::parse_assertion(
            "Authorizer: POLICY\nLicensees: \"KWebCom\"\n\
             Conditions: app_domain==\"WebCom\" && amount < 100;\n",
        )
        .unwrap();
        let report = decode_policy(&[a], "KWebCom", &dir);
        assert!(report.policy.is_empty());
        assert!(report.skipped.iter().any(|s| s.contains("non-RBAC")));
    }

    #[test]
    fn contradictory_bindings_rejected() {
        let c: Conjunct = vec![
            ("Domain".into(), "A".into()),
            ("Domain".into(), "B".into()),
        ];
        assert_eq!(binding(&c, "Domain"), None);
        let ok: Conjunct = vec![
            ("Domain".into(), "A".into()),
            ("Domain".into(), "A".into()),
        ];
        assert_eq!(binding(&ok, "Domain"), Some("A"));
    }
}
