//! Policy Maintenance (paper §4.4): keeping a consistent global policy
//! across heterogeneous middlewares.
//!
//! The paper recommends making changes *to the trust-management policy*
//! and propagating them down the security stack. [`PolicyBus`] holds the
//! unified (trust-level) policy, fans every change out to the registered
//! middleware endpoints that own the affected domain, and can audit
//! end-to-end consistency by diffing each endpoint's exported policy
//! against the unified view.

use hetsec_middleware::security::MiddlewareSecurity;
use hetsec_rbac::{Domain, PermissionGrant, PolicyDiff, RbacPolicy, RoleAssignment};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One change to the unified policy.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyChange {
    /// Add a `HasPermission` row.
    Grant(PermissionGrant),
    /// Remove a `HasPermission` row.
    Revoke(PermissionGrant),
    /// Add a `UserRole` row.
    Assign(RoleAssignment),
    /// Remove a `UserRole` row.
    Unassign(RoleAssignment),
}

impl PolicyChange {
    /// The domain the change affects.
    pub fn domain(&self) -> &Domain {
        match self {
            PolicyChange::Grant(g) | PolicyChange::Revoke(g) => &g.domain,
            PolicyChange::Assign(a) | PolicyChange::Unassign(a) => &a.domain,
        }
    }
}

/// A concrete verdict-flip witness attached to a semantic-diff
/// objection (`HS015`/`HS016`): the exact request the candidate policy
/// decides differently from the current one. All fields are
/// pre-rendered strings so the type stays serialization-stable without
/// depending on the analyzer crate.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionWitness {
    /// The requesting principal (key text).
    pub principal: String,
    /// The request's action-attribute valuation, `Attr="value", ...`.
    pub attributes: String,
    /// The current policy's verdict: `GRANT` or `DENY`.
    pub before: String,
    /// The candidate policy's verdict: `GRANT` or `DENY`.
    pub after: String,
}

/// One objection raised by an [`AdmissionGate`] reviewing a candidate
/// unified policy. Mirrors the analyzer's JSON finding shape (stable
/// `HS0xx` code, lowercase severity label) without depending on the
/// analyzer crate — the gate implementation lives above this crate.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionFinding {
    /// Stable lint code (`HS0xx`).
    pub code: String,
    /// Severity label: `error`, `warn` or `info`.
    pub severity: String,
    /// Human-readable description of the objection.
    pub message: String,
    /// Verdict-flip witnesses, for semantic-diff objections. Empty for
    /// syntactic findings (and for payloads serialized before the field
    /// existed).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub witnesses: Vec<AdmissionWitness>,
}

impl AdmissionFinding {
    /// True for findings that block admission.
    pub fn is_error(&self) -> bool {
        self.severity == "error"
    }
}

/// Pre-commit review of a candidate unified policy. [`PolicyBus::apply`]
/// evaluates the candidate (current policy + change) through the gate
/// *before* committing; any `error`-severity finding rejects the change
/// outright — nothing is committed and nothing propagates.
pub trait AdmissionGate: Send + Sync {
    /// Reviews `candidate` against `current`, returning objections.
    /// Implementations should report only *new* problems the change
    /// introduces, so pre-existing debt does not freeze the policy.
    fn review(&self, current: &RbacPolicy, candidate: &RbacPolicy) -> Vec<AdmissionFinding>;

    /// Delta-aware review: like [`AdmissionGate::review`], but also
    /// told *which* change produced the candidate, so incremental
    /// implementations can dirty only what the change touches instead
    /// of re-deriving the edit by diffing the two policies. The default
    /// ignores the change and falls back to the full review.
    fn review_delta(
        &self,
        current: &RbacPolicy,
        candidate: &RbacPolicy,
        change: &PolicyChange,
    ) -> Vec<AdmissionFinding> {
        let _ = change;
        self.review(current, candidate)
    }
}

/// What happened when a change was propagated.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PropagationReport {
    /// Whether the unified policy actually changed.
    pub unified_changed: bool,
    /// Admission-gate objections. Non-empty means the change was
    /// rejected before commit: the unified policy is untouched and
    /// nothing propagated.
    pub rejected: Vec<AdmissionFinding>,
    /// Endpoints (by instance name) that accepted the change.
    pub propagated_to: Vec<String>,
    /// Endpoint failures: (instance name, error text).
    pub failures: Vec<(String, String)>,
    /// Post-propagation consistency audit over every endpoint (the
    /// analyzer's pass 4 run from the maintenance flow): each entry is
    /// one endpoint diffed against the unified view.
    pub consistency: Vec<EndpointConsistency>,
}

impl PropagationReport {
    /// True when the change passed the admission gate (or no gate is
    /// installed).
    pub fn admitted(&self) -> bool {
        self.rejected.is_empty()
    }

    /// True when every endpoint agreed with the unified policy after
    /// the propagation.
    pub fn is_consistent(&self) -> bool {
        self.consistency.iter().all(|c| c.is_consistent())
    }

    /// Instance names of endpoints that disagree with the unified view.
    pub fn inconsistent_endpoints(&self) -> Vec<&str> {
        self.consistency
            .iter()
            .filter(|c| !c.is_consistent())
            .map(|c| c.instance.as_str())
            .collect()
    }
}

/// Consistency audit result for one endpoint.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EndpointConsistency {
    /// The endpoint's instance name.
    pub instance: String,
    /// Difference between the endpoint's export and the unified view
    /// restricted to the endpoint's domains (empty diff = consistent).
    pub diff: PolicyDiff,
}

impl EndpointConsistency {
    /// True when the endpoint agrees with the unified policy.
    pub fn is_consistent(&self) -> bool {
        self.diff.is_empty()
    }
}

/// The maintenance bus.
pub struct PolicyBus {
    unified: RwLock<RbacPolicy>,
    endpoints: RwLock<Vec<Arc<dyn MiddlewareSecurity>>>,
    gate: RwLock<Option<Arc<dyn AdmissionGate>>>,
}

/// Applies `change` to `policy`, returning whether anything changed.
fn apply_change(policy: &mut RbacPolicy, change: &PolicyChange) -> bool {
    match change {
        PolicyChange::Grant(g) => policy.grant(g.clone()),
        PolicyChange::Revoke(g) => policy.revoke(g),
        PolicyChange::Assign(a) => policy.assign(a.clone()),
        PolicyChange::Unassign(a) => policy.unassign(a),
    }
}

impl Default for PolicyBus {
    fn default() -> Self {
        Self::new()
    }
}

impl PolicyBus {
    /// An empty bus.
    pub fn new() -> Self {
        PolicyBus {
            unified: RwLock::new(RbacPolicy::new()),
            endpoints: RwLock::new(Vec::new()),
            gate: RwLock::new(None),
        }
    }

    /// A bus seeded with an initial unified policy.
    pub fn with_policy(policy: RbacPolicy) -> Self {
        PolicyBus {
            unified: RwLock::new(policy),
            endpoints: RwLock::new(Vec::new()),
            gate: RwLock::new(None),
        }
    }

    /// Installs an admission gate reviewed on every [`PolicyBus::apply`].
    pub fn set_gate(&self, gate: Arc<dyn AdmissionGate>) {
        *self.gate.write() = Some(gate);
    }

    /// Removes the admission gate.
    pub fn clear_gate(&self) {
        *self.gate.write() = None;
    }

    /// Registers a middleware endpoint and commissions it with the
    /// portion of the unified policy it owns (initial configuration).
    pub fn register(&self, endpoint: Arc<dyn MiddlewareSecurity>) {
        endpoint.import_policy(&self.unified.read());
        self.endpoints.write().push(endpoint);
    }

    /// The current unified policy.
    pub fn unified(&self) -> RbacPolicy {
        self.unified.read().clone()
    }

    /// Registered endpoint count.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.read().len()
    }

    /// Applies a change to the unified policy and propagates it to every
    /// endpoint owning the affected domain (the paper's recommended
    /// top-down maintenance flow).
    pub fn apply(&self, change: &PolicyChange) -> PropagationReport {
        let mut report = PropagationReport::default();
        // Admission review: evaluate the candidate policy *before*
        // committing, so a rejected change never reaches the unified
        // view or any endpoint.
        let gate = self.gate.read().clone();
        if let Some(gate) = gate {
            let current = self.unified.read().clone();
            let mut candidate = current.clone();
            if apply_change(&mut candidate, change) {
                let findings = gate.review_delta(&current, &candidate, change);
                if findings.iter().any(AdmissionFinding::is_error) {
                    report.rejected = findings;
                    report.consistency = self.consistency_report();
                    return report;
                }
            }
        }
        {
            let mut unified = self.unified.write();
            report.unified_changed = apply_change(&mut unified, change);
        }
        let domain = change.domain();
        for ep in self.endpoints.read().iter() {
            if !ep.owned_domains().contains(domain) {
                continue;
            }
            let result = match change {
                PolicyChange::Grant(g) => ep.grant(g),
                PolicyChange::Revoke(g) => ep.revoke(g),
                PolicyChange::Assign(a) => ep.assign(a),
                PolicyChange::Unassign(a) => ep.unassign(a),
            };
            match result {
                Ok(()) => report.propagated_to.push(ep.instance_name()),
                Err(e) => report.failures.push((ep.instance_name(), e.to_string())),
            }
        }
        // Audit every endpoint right away, so a change that silently
        // failed to land (or out-of-band drift) surfaces with the
        // propagation that noticed it, not at the next manual audit.
        report.consistency = self.consistency_report();
        report
    }

    /// Restricts `policy` to the rows within `domains`.
    fn restrict(policy: &RbacPolicy, domains: &[Domain]) -> RbacPolicy {
        let mut out = RbacPolicy::new();
        for g in policy.grants() {
            if domains.contains(&g.domain) {
                out.grant(g.clone());
            }
        }
        for a in policy.assignments() {
            if domains.contains(&a.domain) {
                out.assign(a.clone());
            }
        }
        out
    }

    /// Audits every endpoint against the unified view.
    pub fn consistency_report(&self) -> Vec<EndpointConsistency> {
        let unified = self.unified.read().clone();
        self.endpoints
            .read()
            .iter()
            .map(|ep| {
                let owned = ep.owned_domains();
                let want = Self::restrict(&unified, &owned);
                let have = Self::restrict(&ep.export_policy(), &owned);
                EndpointConsistency {
                    instance: ep.instance_name(),
                    diff: PolicyDiff::between(&have, &want),
                }
            })
            .collect()
    }

    /// Repairs every inconsistent endpoint by re-importing the unified
    /// view (changes made behind the bus's back are overwritten in the
    /// additive direction; stale extra rows are revoked). Returns the
    /// number of rows changed across endpoints.
    pub fn repair(&self) -> usize {
        let mut changed = 0;
        let unified = self.unified.read().clone();
        for ep in self.endpoints.read().iter() {
            let owned = ep.owned_domains();
            let want = Self::restrict(&unified, &owned);
            let have = Self::restrict(&ep.export_policy(), &owned);
            let diff = PolicyDiff::between(&have, &want);
            for g in &diff.added_grants {
                if ep.grant(g).is_ok() {
                    changed += 1;
                }
            }
            for g in &diff.removed_grants {
                if ep.revoke(g).is_ok() {
                    changed += 1;
                }
            }
            for a in &diff.added_assignments {
                if ep.assign(a).is_ok() {
                    changed += 1;
                }
            }
            for a in &diff.removed_assignments {
                if ep.unassign(a).is_ok() {
                    changed += 1;
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_com::ComMiddleware;
    use hetsec_ejb::EjbMiddleware;
    use hetsec_middleware::naming::EjbDomain;
    use hetsec_middleware::security::MiddlewareSecurityExt;
    use hetsec_rbac::fixtures::salaries_policy;

    fn two_endpoint_bus() -> (PolicyBus, Arc<ComMiddleware>, Arc<EjbMiddleware>, String) {
        let ejb_domain = EjbDomain::new("h", "s", "j").to_string();
        // Unified policy: COM rows in CORP, EJB rows in the EJB domain.
        let mut unified = RbacPolicy::new();
        unified.grant(PermissionGrant::new("CORP", "Manager", "SalariesDB", "Access"));
        unified.assign(RoleAssignment::new("bob", "CORP", "Manager"));
        unified.grant(PermissionGrant::new(
            ejb_domain.as_str(),
            "Clerk",
            "SalariesBean",
            "write",
        ));
        unified.assign(RoleAssignment::new("alice", ejb_domain.as_str(), "Clerk"));
        let bus = PolicyBus::with_policy(unified);
        let com = Arc::new(ComMiddleware::new("CORP"));
        let ejb = Arc::new(EjbMiddleware::new(EjbDomain::new("h", "s", "j")));
        bus.register(com.clone());
        bus.register(ejb.clone());
        (bus, com, ejb, ejb_domain)
    }

    #[test]
    fn registration_commissions_owned_portion() {
        let (bus, com, ejb, ejb_domain) = two_endpoint_bus();
        assert_eq!(bus.endpoint_count(), 2);
        assert!(com.allows(&"bob".into(), &"CORP".into(), &"SalariesDB".into(), &"Access".into()));
        assert!(ejb.allows(
            &"alice".into(),
            &ejb_domain.as_str().into(),
            &"SalariesBean".into(),
            &"write".into()
        ));
        // Everything consistent right after commissioning.
        assert!(bus.consistency_report().iter().all(|c| c.is_consistent()));
    }

    #[test]
    fn apply_propagates_to_owning_endpoint_only() {
        let (bus, com, ejb, ejb_domain) = two_endpoint_bus();
        let change = PolicyChange::Assign(RoleAssignment::new("carol", "CORP", "Manager"));
        let report = bus.apply(&change);
        assert!(report.unified_changed);
        assert_eq!(report.propagated_to, vec![com.instance_name()]);
        assert!(report.failures.is_empty());
        assert!(report.is_consistent());
        assert_eq!(report.consistency.len(), 2);
        assert!(com.allows(&"carol".into(), &"CORP".into(), &"SalariesDB".into(), &"Access".into()));
        // EJB untouched.
        assert!(!ejb.allows(
            &"carol".into(),
            &ejb_domain.as_str().into(),
            &"SalariesBean".into(),
            &"write".into()
        ));
        assert!(bus.consistency_report().iter().all(|c| c.is_consistent()));
    }

    #[test]
    fn revocation_propagates() {
        let (bus, com, _, _) = two_endpoint_bus();
        let change = PolicyChange::Unassign(RoleAssignment::new("bob", "CORP", "Manager"));
        let report = bus.apply(&change);
        assert!(report.unified_changed);
        assert!(!com.allows(&"bob".into(), &"CORP".into(), &"SalariesDB".into(), &"Access".into()));
    }

    #[test]
    fn idempotent_change_reports_no_unified_change() {
        let (bus, _, _, _) = two_endpoint_bus();
        let change = PolicyChange::Assign(RoleAssignment::new("bob", "CORP", "Manager"));
        let report = bus.apply(&change);
        assert!(!report.unified_changed); // already present
    }

    #[test]
    fn out_of_band_drift_detected_and_repaired() {
        let (bus, com, _, _) = two_endpoint_bus();
        // Someone edits the COM catalogue behind the bus's back.
        com.catalog().add_role_member("Manager", "mallory");
        let audit = bus.consistency_report();
        let com_audit = audit.iter().find(|c| c.instance.contains("COM+")).unwrap();
        assert!(!com_audit.is_consistent());
        assert_eq!(com_audit.diff.removed_assignments.len(), 1);
        let changed = bus.repair();
        assert_eq!(changed, 1);
        assert!(bus.consistency_report().iter().all(|c| c.is_consistent()));
        assert!(!com.allows(&"mallory".into(), &"CORP".into(), &"SalariesDB".into(), &"Access".into()));
    }

    #[test]
    fn apply_surfaces_out_of_band_drift() {
        let (bus, com, _, _) = two_endpoint_bus();
        // Drift introduced behind the bus's back ...
        com.catalog().add_role_member("Manager", "mallory");
        // ... is reported by the very next propagation, without a
        // separate audit call.
        let change = PolicyChange::Assign(RoleAssignment::new("carol", "CORP", "Manager"));
        let report = bus.apply(&change);
        assert!(!report.is_consistent());
        let bad = report.inconsistent_endpoints();
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("COM+"), "{bad:?}");
    }

    /// A gate that objects (with the given severity) to any change
    /// touching the named user.
    struct UserBan {
        user: &'static str,
        severity: &'static str,
    }

    impl AdmissionGate for UserBan {
        fn review(&self, current: &RbacPolicy, candidate: &RbacPolicy) -> Vec<AdmissionFinding> {
            let had = current.assignments().any(|a| a.user.as_str() == self.user);
            let has = candidate.assignments().any(|a| a.user.as_str() == self.user);
            if has && !had {
                vec![AdmissionFinding {
                    code: "HS013".to_string(),
                    severity: self.severity.to_string(),
                    message: format!("user {:?} is banned", self.user),
                    witnesses: Vec::new(),
                }]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn gate_rejects_before_commit_and_propagation() {
        let (bus, com, _, _) = two_endpoint_bus();
        bus.set_gate(Arc::new(UserBan { user: "mallory", severity: "error" }));
        let before = bus.unified();
        let report = bus.apply(&PolicyChange::Assign(RoleAssignment::new(
            "mallory", "CORP", "Manager",
        )));
        assert!(!report.admitted());
        assert!(!report.unified_changed);
        assert!(report.propagated_to.is_empty());
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].code, "HS013");
        assert!(report.rejected[0].is_error());
        // Nothing committed, nothing propagated.
        assert_eq!(bus.unified(), before);
        assert!(!com.allows(&"mallory".into(), &"CORP".into(), &"SalariesDB".into(), &"Access".into()));
        // The fabric is still consistent — the rejection left no drift.
        assert!(report.is_consistent());
    }

    #[test]
    fn gate_admits_clean_changes_and_non_error_findings() {
        let (bus, com, _, _) = two_endpoint_bus();
        bus.set_gate(Arc::new(UserBan { user: "mallory", severity: "warn" }));
        // A change the gate has no objection to goes through untouched.
        let clean = bus.apply(&PolicyChange::Assign(RoleAssignment::new(
            "carol", "CORP", "Manager",
        )));
        assert!(clean.admitted() && clean.unified_changed);
        // Warn-severity objections do not block.
        let warned = bus.apply(&PolicyChange::Assign(RoleAssignment::new(
            "mallory", "CORP", "Manager",
        )));
        assert!(warned.admitted() && warned.unified_changed);
        assert!(com.allows(&"mallory".into(), &"CORP".into(), &"SalariesDB".into(), &"Access".into()));
    }

    #[test]
    fn cleared_gate_stops_reviewing() {
        let (bus, _, _, _) = two_endpoint_bus();
        bus.set_gate(Arc::new(UserBan { user: "mallory", severity: "error" }));
        bus.clear_gate();
        let report = bus.apply(&PolicyChange::Assign(RoleAssignment::new(
            "mallory", "CORP", "Manager",
        )));
        assert!(report.admitted() && report.unified_changed);
    }

    #[test]
    fn unified_policy_snapshot() {
        let bus = PolicyBus::with_policy(salaries_policy());
        assert_eq!(bus.unified(), salaries_policy());
        assert_eq!(bus.endpoint_count(), 0);
    }

    #[test]
    fn change_domain_accessor() {
        let g = PermissionGrant::new("D", "R", "T", "p");
        assert_eq!(PolicyChange::Grant(g.clone()).domain().as_str(), "D");
        assert_eq!(PolicyChange::Revoke(g).domain().as_str(), "D");
        let a = RoleAssignment::new("u", "E", "R");
        assert_eq!(PolicyChange::Assign(a.clone()).domain().as_str(), "E");
        assert_eq!(PolicyChange::Unassign(a).domain().as_str(), "E");
    }
}
