//! Similarity metrics for imprecise policy migration (paper §4.3, [13]).
//!
//! Migrating a policy between middleware systems is "not a simple
//! one-to-one mapping": role and domain names drift (`Manager` vs
//! `Managers` vs `SalesManager`). Following Foley's imprecise-delegation
//! work [13], names are matched by string similarity; three standard
//! metrics are provided plus a combined scorer and a best-match resolver.

use std::collections::BTreeSet;

/// Levenshtein edit distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalised Levenshtein similarity in `[0, 1]`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == ca {
                b_taken[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_taken.iter())
        .filter(|(_, &t)| t)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity (prefix-boosted Jaro), `p = 0.1`, max prefix 4.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Sørensen-Dice coefficient over character bigrams.
pub fn dice_bigram(a: &str, b: &str) -> f64 {
    fn bigrams(s: &str) -> BTreeSet<(char, char)> {
        let chars: Vec<char> = s.chars().collect();
        chars.windows(2).map(|w| (w[0], w[1])).collect()
    }
    if a == b {
        return 1.0;
    }
    let ba = bigrams(a);
    let bb = bigrams(b);
    if ba.is_empty() || bb.is_empty() {
        return 0.0;
    }
    let shared = ba.intersection(&bb).count();
    2.0 * shared as f64 / (ba.len() + bb.len()) as f64
}

/// The combined scorer used by migration: mean of the three metrics over
/// case-folded names. Exact case-insensitive matches score 1.
pub fn combined_similarity(a: &str, b: &str) -> f64 {
    let a = a.to_lowercase();
    let b = b.to_lowercase();
    if a == b {
        return 1.0;
    }
    (levenshtein_similarity(&a, &b) + jaro_winkler(&a, &b) + dice_bigram(&a, &b)) / 3.0
}

/// The best candidate for `name` among `candidates`, if its combined
/// score reaches `threshold`. Ties resolve to the lexicographically
/// smallest candidate for determinism.
pub fn best_match<'a>(
    name: &str,
    candidates: impl IntoIterator<Item = &'a str>,
    threshold: f64,
) -> Option<(&'a str, f64)> {
    let mut best: Option<(&'a str, f64)> = None;
    for c in candidates {
        let score = combined_similarity(name, c);
        let better = match best {
            None => true,
            Some((bc, bs)) => score > bs + 1e-12 || ((score - bs).abs() <= 1e-12 && c < bc),
        };
        if better {
            best = Some((c, score));
        }
    }
    best.filter(|(_, s)| *s >= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("manager", "manager"), 0);
        assert_eq!(levenshtein("manager", "managers"), 1);
    }

    #[test]
    fn levenshtein_similarity_range() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("manager", "managers");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-4);
        assert!((jaro_winkler("martha", "marhta") - 0.961111).abs() < 1e-4);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn dice_basics() {
        assert_eq!(dice_bigram("night", "night"), 1.0);
        assert!(dice_bigram("night", "nacht") > 0.2);
        assert_eq!(dice_bigram("a", "b"), 0.0); // no bigrams
        assert_eq!(dice_bigram("ab", "cd"), 0.0);
    }

    #[test]
    fn combined_is_case_insensitive() {
        assert_eq!(combined_similarity("Manager", "manager"), 1.0);
        let close = combined_similarity("Manager", "Managers");
        let far = combined_similarity("Manager", "Assistant");
        assert!(close > 0.85, "close={close}");
        assert!(far < 0.55, "far={far}");
        assert!(close > far);
    }

    #[test]
    fn best_match_selects_and_thresholds() {
        let candidates = ["Manager", "Clerk", "Assistant"];
        let (m, s) = best_match("Managers", candidates, 0.8).unwrap();
        assert_eq!(m, "Manager");
        assert!(s > 0.8);
        assert!(best_match("Wizard", candidates, 0.8).is_none());
        assert!(best_match("anything", [], 0.0).is_none());
    }

    #[test]
    fn best_match_tie_break_is_deterministic() {
        // Two identical candidates (after folding) tie; smallest wins.
        let r = best_match("role", ["roleB", "roleA"], 0.0).unwrap();
        assert_eq!(r.0, "roleA");
    }

    #[test]
    fn matching_accuracy_on_typo_perturbations() {
        // abl1's accuracy claim: drifted role names (typos, plurals,
        // camel-case splits) match back to their canonical vocabulary.
        let vocab: Vec<String> = [
            "Manager", "Clerk", "Assistant", "Auditor", "Director", "Analyst",
            "Operator", "Administrator", "Supervisor", "Engineer", "Consultant",
            "Treasurer",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let perturb = |name: &str, kind: usize| -> String {
            let mut chars: Vec<char> = name.chars().collect();
            match kind {
                0 => format!("{name}s"),                         // plural
                1 => name.to_lowercase(),                        // case drift
                2 => {
                    chars.remove(name.len() / 2);                // dropped char
                    chars.into_iter().collect()
                }
                3 => {
                    chars.swap(1, 2);                            // transposition
                    chars.into_iter().collect()
                }
                _ => format!("Sr{name}"),                        // prefix
            }
        };
        let mut correct = 0usize;
        let mut total = 0usize;
        for name in &vocab {
            for kind in 0..5 {
                let drifted = perturb(name, kind);
                total += 1;
                if let Some((m, _)) = best_match(&drifted, vocab.iter().map(String::as_str), 0.7)
                {
                    if m == name {
                        correct += 1;
                    }
                }
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(accuracy >= 0.9, "accuracy {accuracy} below 0.9 ({correct}/{total})");
    }

    #[test]
    fn metrics_are_symmetric() {
        for (a, b) in [("Manager", "Managers"), ("Clerk", "Clerks"), ("x", "yx")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert!((jaro(a, b) - jaro(b, a)).abs() < 1e-12);
            assert!((dice_bigram(a, b) - dice_bigram(b, a)).abs() < 1e-12);
        }
    }
}
