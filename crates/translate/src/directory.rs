//! Mapping between RBAC users and KeyNote principals (keys).
//!
//! The trust layer speaks in public keys while middleware speaks in user
//! names; translations need a bidirectional directory. Two
//! implementations: the paper's symbolic `K<name>` convention (used in
//! its figures) and a real-keystore directory backed by the simulated
//! PKI.

use hetsec_crypto::KeyStore;
use hetsec_rbac::User;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Bidirectional user <-> key-text mapping.
pub trait PrincipalDirectory: Send + Sync {
    /// The key text for a user (created on demand).
    fn key_of(&self, user: &User) -> String;

    /// The user owning a key text, if known.
    fn user_of(&self, key_text: &str) -> Option<User>;
}

/// The paper's symbolic convention: user `Claire` owns key `Kclaire`.
///
/// Keys issued through [`PrincipalDirectory::key_of`] are remembered so
/// the reverse mapping is exact; keys never issued fall back to the
/// capitalisation heuristic the paper's figures imply.
#[derive(Default)]
pub struct SymbolicDirectory {
    issued: RwLock<HashMap<String, User>>,
}

impl PrincipalDirectory for SymbolicDirectory {
    fn key_of(&self, user: &User) -> String {
        let key = format!("K{}", user.as_str().to_lowercase());
        self.issued
            .write()
            .entry(key.clone())
            .or_insert_with(|| user.clone());
        key
    }

    fn user_of(&self, key_text: &str) -> Option<User> {
        if let Some(user) = self.issued.read().get(key_text) {
            return Some(user.clone());
        }
        let name = key_text.strip_prefix('K')?;
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return None;
        }
        // Restore the paper's capitalised user names.
        let mut chars = name.chars();
        let first = chars.next()?.to_ascii_uppercase();
        Some(User::new(format!("{first}{}", chars.as_str())))
    }
}

/// A directory backed by the simulated PKI: each user's key is derived
/// deterministically through a [`KeyStore`], and the reverse mapping is
/// maintained explicitly.
pub struct KeyStoreDirectory {
    store: KeyStore,
    reverse: RwLock<HashMap<String, User>>,
}

impl Default for KeyStoreDirectory {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyStoreDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        KeyStoreDirectory {
            store: KeyStore::new(),
            reverse: RwLock::new(HashMap::new()),
        }
    }

    /// The underlying keystore (for signing).
    pub fn store(&self) -> &KeyStore {
        &self.store
    }
}

impl PrincipalDirectory for KeyStoreDirectory {
    fn key_of(&self, user: &User) -> String {
        let text = self.store.public(user.as_str()).to_text();
        self.reverse
            .write()
            .entry(text.clone())
            .or_insert_with(|| user.clone());
        text
    }

    fn user_of(&self, key_text: &str) -> Option<User> {
        self.reverse.read().get(key_text).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbolic_roundtrip() {
        let d = SymbolicDirectory::default();
        let claire = User::new("Claire");
        assert_eq!(d.key_of(&claire), "Kclaire");
        assert_eq!(d.user_of("Kclaire"), Some(claire));
    }

    #[test]
    fn symbolic_rejects_non_symbolic_keys() {
        let d = SymbolicDirectory::default();
        assert_eq!(d.user_of("rsa-sim:abc:10001"), None);
        assert_eq!(d.user_of("K"), None);
        assert_eq!(d.user_of("bob"), None);
    }

    #[test]
    fn keystore_roundtrip() {
        let d = KeyStoreDirectory::new();
        let bob = User::new("Bob");
        let key = d.key_of(&bob);
        assert!(key.starts_with("rsa-sim:"));
        assert_eq!(d.user_of(&key), Some(bob.clone()));
        // Stable on repeat.
        assert_eq!(d.key_of(&bob), key);
    }

    #[test]
    fn keystore_unknown_key() {
        let d = KeyStoreDirectory::new();
        assert_eq!(d.user_of("rsa-sim:1234:10001"), None);
    }
}
