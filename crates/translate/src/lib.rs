//! Policy translation between middleware RBAC and KeyNote trust
//! management — the paper's central contribution (§4).
//!
//! The five characteristics of §1 map onto the modules:
//!
//! * **Policy Configuration** (§4.1) — [`configuration`]: KeyNote
//!   credentials decompiled into RBAC rows and commissioned into
//!   middleware;
//! * **Policy Comprehension** (§4.2) — [`comprehension`]: middleware
//!   RBAC encoded as the Figure 5 policy assertion plus Figure 6
//!   membership credentials;
//! * **Policy Migration** (§4.3) — [`migration`]: export → interpret
//!   (domain/permission maps, similarity-matched roles [13]) → import;
//! * **Policy Maintenance** (§4.4) — [`maintenance`]: the
//!   [`maintenance::PolicyBus`] propagating top-down changes and
//!   auditing consistency;
//! * **Policy Decentralisation** (§4.5) — Figure 7 delegation
//!   credentials ([`comprehension::delegate_role`]) evaluated by the
//!   KeyNote compliance checker without any central table.
//!
//! [`directory`] maps users to keys (symbolic or PKI-backed);
//! [`similarity`] provides the string metrics; [`batch`] parallelises
//! sweeps and signs credential sets with real keys.

pub mod batch;
pub mod comprehension;
pub mod configuration;
pub mod directory;
pub mod maintenance;
pub mod migration;
pub mod similarity;

pub use comprehension::{delegate_role, encode_has_permission, encode_policy, encode_user_role, APP_DOMAIN};
pub use configuration::{decode_policy, expr_to_dnf, DecodeReport};
pub use directory::{KeyStoreDirectory, PrincipalDirectory, SymbolicDirectory};
pub use maintenance::{
    AdmissionFinding, AdmissionGate, AdmissionWitness, EndpointConsistency, PolicyBus, PolicyChange,
    PropagationReport,
};
pub use migration::{migrate, transform_policy, MigrationReport, MigrationSpec};
