//! Batch/parallel translation helpers and real-key signing.
//!
//! Large deployments translate many middleware policies at once (the
//! Figure 9 scenario has one per system); encoding and decoding are
//! embarrassingly parallel over policies, so the sweeps use rayon.

use crate::comprehension::encode_policy;
use crate::configuration::{decode_policy, DecodeReport};
use crate::directory::KeyStoreDirectory;
use crate::directory::PrincipalDirectory;
use hetsec_keynote::ast::{Assertion, Principal};
use hetsec_keynote::signing::sign_assertion;
use hetsec_crypto::PublicKey;
use hetsec_rbac::RbacPolicy;
use rayon::prelude::*;

/// Encodes many policies in parallel.
pub fn encode_policies_par(
    policies: &[RbacPolicy],
    webcom_key: &str,
    directory: &dyn PrincipalDirectory,
) -> Vec<Vec<Assertion>> {
    policies
        .par_iter()
        .map(|p| encode_policy(p, webcom_key, directory))
        .collect()
}

/// Decodes many assertion sets in parallel.
pub fn decode_policies_par(
    assertion_sets: &[Vec<Assertion>],
    webcom_key: &str,
    directory: &dyn PrincipalDirectory,
) -> Vec<DecodeReport> {
    assertion_sets
        .par_iter()
        .map(|a| decode_policy(a, webcom_key, directory))
        .collect()
}

/// Signs every *unsigned* key-authored assertion whose authorizer key is
/// owned by the directory's keystore. Returns how many were signed.
/// Assertions with `POLICY` authorizers (locally trusted), foreign keys,
/// and existing signatures are left untouched.
pub fn sign_owned(assertions: &mut [Assertion], directory: &KeyStoreDirectory) -> usize {
    let mut signed = 0;
    for a in assertions.iter_mut() {
        if a.signature.is_some() {
            continue;
        }
        let Principal::Key(key_text) = &a.authorizer else {
            continue;
        };
        let Ok(public) = key_text.parse::<PublicKey>() else {
            continue;
        };
        let Some(owner) = directory.store().name_of(&public) else {
            continue;
        };
        let kp = directory.store().keypair(&owner);
        if sign_assertion(a, &kp).is_ok() {
            signed += 1;
        }
    }
    signed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::SymbolicDirectory;
    use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
    use hetsec_keynote::signing::{verify_assertion, SignatureStatus};
    use hetsec_rbac::fixtures::{salaries_policy, synthetic_policy};
    use hetsec_rbac::User;

    #[test]
    fn parallel_encode_matches_serial() {
        let dir = SymbolicDirectory::default();
        let policies: Vec<RbacPolicy> = (1..5).map(|i| synthetic_policy(i, 2, 2, 1)).collect();
        let par = encode_policies_par(&policies, "KWebCom", &dir);
        for (p, got) in policies.iter().zip(&par) {
            assert_eq!(got, &encode_policy(p, "KWebCom", &dir));
        }
    }

    #[test]
    fn parallel_roundtrip() {
        let dir = SymbolicDirectory::default();
        let policies: Vec<RbacPolicy> =
            vec![salaries_policy(), synthetic_policy(2, 2, 2, 2), RbacPolicy::new()];
        let encoded = encode_policies_par(&policies, "KWebCom", &dir);
        let decoded = decode_policies_par(&encoded, "KWebCom", &dir);
        for (original, report) in policies.iter().zip(&decoded) {
            assert_eq!(&report.policy, original);
        }
    }

    #[test]
    fn sign_owned_produces_verifiable_credentials() {
        let dir = KeyStoreDirectory::new();
        // Materialise the WebCom key and use its real text as authorizer.
        let webcom_key = dir.key_of(&User::new("WebCom"));
        let mut assertions = encode_policy(&salaries_policy(), &webcom_key, &dir);
        let signed = sign_owned(&mut assertions, &dir);
        // One credential per assignment; the POLICY assertion stays
        // unsigned.
        assert_eq!(signed, salaries_policy().assignment_count());
        for a in &assertions {
            match &a.authorizer {
                Principal::Policy => assert_eq!(verify_assertion(a), SignatureStatus::Unsigned),
                Principal::Key(_) => assert_eq!(verify_assertion(a), SignatureStatus::Valid),
            }
        }
        // The signed set passes a strict session end-to-end.
        let mut s = KeyNoteSession::new();
        for a in assertions {
            s.add_policy_assertion(a).unwrap();
        }
        let claire = dir.key_of(&User::new("Claire"));
        let attrs = [
            ("app_domain", "WebCom"),
            ("Domain", "Sales"),
            ("Role", "Manager"),
            ("ObjectType", "SalariesDB"),
            ("Permission", "read"),
        ]
        .into_iter()
        .collect();
        assert!(s.evaluate(&ActionQuery::principals(&[claire.as_str()]).attributes(&attrs)).is_authorized());
    }

    #[test]
    fn sign_owned_skips_foreign_keys() {
        let dir = KeyStoreDirectory::new();
        let foreign = hetsec_crypto::KeyPair::from_label("foreign-stranger");
        let mut assertions = vec![Assertion::new(
            Principal::key(foreign.public().to_text()),
            hetsec_keynote::ast::LicenseeExpr::Principal("Kx".into()),
        )];
        assert_eq!(sign_owned(&mut assertions, &dir), 0);
        assert!(assertions[0].signature.is_none());
    }
}
