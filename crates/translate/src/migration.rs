//! Policy Migration (paper §4.3): moving a security policy from one
//! middleware system to another.
//!
//! Migration is comprehension followed by configuration with
//! *interpretation* in between: domains must be remapped onto the target
//! instance's domains, permission vocabularies differ (COM+'s coarse
//! `Launch`/`Access`/`RunAs` vs method-level EJB/CORBA permissions), and
//! role names may have drifted — resolved with similarity metrics [13].

use crate::similarity::best_match;
use hetsec_middleware::security::{ImportReport, MiddlewareSecurity};
use hetsec_middleware::MiddlewareKind;
use hetsec_rbac::{Domain, PermissionGrant, RbacPolicy, RoleAssignment};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Declarative migration rules.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MigrationSpec {
    /// Source domain -> target domain. Unmapped domains pass through
    /// unchanged (and will be skipped by the target if foreign).
    pub domain_map: BTreeMap<String, String>,
    /// Source permission -> target permission, applied before the
    /// kind-level defaults.
    pub permission_map: BTreeMap<String, String>,
    /// Source object type -> target object type.
    pub object_map: BTreeMap<String, String>,
    /// When set, source role names are fuzzily matched against this
    /// vocabulary of target role names; matches at or above
    /// `role_threshold` are renamed.
    pub target_roles: Vec<String>,
    /// Similarity threshold for role matching (default 0.85).
    pub role_threshold: f64,
}

impl MigrationSpec {
    /// A spec that maps one source domain onto one target domain.
    pub fn domain(src: impl Into<String>, dst: impl Into<String>) -> Self {
        let mut m = MigrationSpec {
            role_threshold: 0.85,
            ..Self::default()
        };
        m.domain_map.insert(src.into(), dst.into());
        m
    }

    /// Adds a permission mapping.
    pub fn map_permission(mut self, src: impl Into<String>, dst: impl Into<String>) -> Self {
        self.permission_map.insert(src.into(), dst.into());
        self
    }

    /// Adds an object-type mapping.
    pub fn map_object(mut self, src: impl Into<String>, dst: impl Into<String>) -> Self {
        self.object_map.insert(src.into(), dst.into());
        self
    }

    /// Enables fuzzy role matching against the given target vocabulary.
    pub fn with_target_roles(mut self, roles: impl IntoIterator<Item = String>) -> Self {
        self.target_roles = roles.into_iter().collect();
        if self.role_threshold == 0.0 {
            self.role_threshold = 0.85;
        }
        self
    }
}

/// The default permission interpretation between middleware families:
/// method-level `read`/`write`-style permissions all require COM+
/// `Access`; COM+ `Access` maps to method-level `invoke`. Everything
/// else passes through.
pub fn default_permission_interpretation(
    from: MiddlewareKind,
    to: MiddlewareKind,
    permission: &str,
) -> String {
    match (from, to) {
        (MiddlewareKind::ComPlus, MiddlewareKind::Ejb | MiddlewareKind::Corba) => {
            match permission {
                "Access" => "invoke".to_string(),
                // Launch/RunAs have no method-level analogue; kept
                // verbatim so the report shows them skipped or the
                // target models them explicitly.
                other => other.to_string(),
            }
        }
        (MiddlewareKind::Ejb | MiddlewareKind::Corba, MiddlewareKind::ComPlus) => {
            // Any method-level permission needs COM+ Access.
            match permission {
                "Launch" | "Access" | "RunAs" => permission.to_string(),
                _ => "Access".to_string(),
            }
        }
        _ => permission.to_string(),
    }
}

/// What a migration did.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MigrationReport {
    /// The policy as transformed (before target-side skipping).
    pub transformed: RbacPolicy,
    /// Renames performed by similarity matching: (from, to, score).
    pub role_renames: Vec<(String, String, f64)>,
    /// The target's import report.
    pub import: ImportReport,
}

/// Transforms a source-shaped policy according to `spec` and the default
/// kind-level permission interpretation.
pub fn transform_policy(
    policy: &RbacPolicy,
    from: MiddlewareKind,
    to: MiddlewareKind,
    spec: &MigrationSpec,
) -> (RbacPolicy, Vec<(String, String, f64)>) {
    let mut renames: BTreeMap<String, (String, f64)> = BTreeMap::new();
    let mut map_role = |role: &str| -> String {
        if spec.target_roles.is_empty() {
            return role.to_string();
        }
        if let Some((to_name, score)) = renames.get(role) {
            let _ = score;
            return to_name.clone();
        }
        match best_match(
            role,
            spec.target_roles.iter().map(String::as_str),
            spec.role_threshold,
        ) {
            Some((m, score)) => {
                renames.insert(role.to_string(), (m.to_string(), score));
                m.to_string()
            }
            None => role.to_string(),
        }
    };
    let map_domain = |d: &Domain| -> String {
        spec.domain_map
            .get(d.as_str())
            .cloned()
            .unwrap_or_else(|| d.as_str().to_string())
    };
    let mut out = RbacPolicy::new();
    for g in policy.grants() {
        let permission = spec
            .permission_map
            .get(g.permission.as_str())
            .cloned()
            .unwrap_or_else(|| {
                default_permission_interpretation(from, to, g.permission.as_str())
            });
        let object = spec
            .object_map
            .get(g.object_type.as_str())
            .cloned()
            .unwrap_or_else(|| g.object_type.as_str().to_string());
        out.grant(PermissionGrant::new(
            map_domain(&g.domain),
            map_role(g.role.as_str()),
            object,
            permission,
        ));
    }
    for a in policy.assignments() {
        out.assign(RoleAssignment::new(
            a.user.as_str(),
            map_domain(&a.domain),
            map_role(a.role.as_str()),
        ));
    }
    let renames = renames
        .into_iter()
        .filter(|(from_name, (to_name, _))| from_name != to_name)
        .map(|(f, (t, s))| (f, t, s))
        .collect();
    (out, renames)
}

/// Full migration: export from `source`, transform, import into
/// `target` (the Figure 9 legacy-COM → EJB path).
pub fn migrate(
    source: &dyn MiddlewareSecurity,
    target: &dyn MiddlewareSecurity,
    spec: &MigrationSpec,
) -> MigrationReport {
    let exported = source.export_policy();
    let (transformed, role_renames) =
        transform_policy(&exported, source.kind(), target.kind(), spec);
    let import = target.import_policy(&transformed);
    MigrationReport {
        transformed,
        role_renames,
        import,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_com::ComMiddleware;
    use hetsec_corba::CorbaMiddleware;
    use hetsec_ejb::EjbMiddleware;
    use hetsec_middleware::naming::{CorbaDomain, EjbDomain};
    use hetsec_middleware::security::MiddlewareSecurityExt;

    fn com_fixture() -> ComMiddleware {
        let m = ComMiddleware::new("CORP");
        m.grant(&PermissionGrant::new("CORP", "Manager", "SalariesDB", "Access"))
            .unwrap();
        m.grant(&PermissionGrant::new("CORP", "Manager", "SalariesDB", "Launch"))
            .unwrap();
        m.assign(&RoleAssignment::new("bob", "CORP", "Manager")).unwrap();
        m
    }

    #[test]
    fn com_to_ejb_migration() {
        let com = com_fixture();
        let ejb_domain = EjbDomain::new("host1", "ejbsrv", "Salaries");
        let ejb = EjbMiddleware::new(ejb_domain.clone());
        let spec = MigrationSpec::domain("CORP", ejb_domain.to_string());
        let report = migrate(&com, &ejb, &spec);
        // Access -> invoke applied; Launch passes through verbatim.
        assert!(ejb.allows(
            &"bob".into(),
            &ejb_domain.to_string().as_str().into(),
            &"SalariesDB".into(),
            &"invoke".into()
        ));
        assert!(report.transformed.grants().any(|g| g.permission.as_str() == "Launch"));
        assert!(report.import.applied >= 2);
    }

    #[test]
    fn ejb_to_com_permission_interpretation() {
        let d = EjbDomain::new("h", "s", "j");
        let ejb = EjbMiddleware::new(d.clone());
        ejb.grant(&PermissionGrant::new(
            d.to_string().as_str(),
            "Clerk",
            "SalariesBean",
            "write",
        ))
        .unwrap();
        ejb.assign(&RoleAssignment::new("alice", d.to_string().as_str(), "Clerk"))
            .unwrap();
        let com = ComMiddleware::new("CORP");
        let spec = MigrationSpec::domain(d.to_string(), "CORP");
        let report = migrate(&ejb, &com, &spec);
        assert!(report.import.skipped.is_empty(), "{:?}", report.import.skipped);
        assert!(com.allows(
            &"alice".into(),
            &"CORP".into(),
            &"SalariesBean".into(),
            &"Access".into()
        ));
    }

    #[test]
    fn similarity_renames_drifted_roles() {
        let d = CorbaDomain::new("zeus", "orb");
        let corba = CorbaMiddleware::new(d.clone());
        corba
            .grant(&PermissionGrant::new(
                d.to_string().as_str(),
                "Managers", // drifted name
                "Salaries",
                "read",
            ))
            .unwrap();
        corba
            .assign(&RoleAssignment::new("claire", d.to_string().as_str(), "Managers"))
            .unwrap();
        let target_d = EjbDomain::new("h", "s", "j");
        let ejb = EjbMiddleware::new(target_d.clone());
        let spec = MigrationSpec::domain(d.to_string(), target_d.to_string())
            .with_target_roles(vec!["Manager".to_string(), "Clerk".to_string()]);
        let report = migrate(&corba, &ejb, &spec);
        assert_eq!(report.role_renames.len(), 1);
        assert_eq!(report.role_renames[0].0, "Managers");
        assert_eq!(report.role_renames[0].1, "Manager");
        assert!(ejb.allows(
            &"claire".into(),
            &target_d.to_string().as_str().into(),
            &"Salaries".into(),
            &"read".into()
        ));
    }

    #[test]
    fn unmapped_domains_pass_through_and_get_skipped() {
        let com = com_fixture();
        let ejb = EjbMiddleware::new(EjbDomain::new("h", "s", "j"));
        let report = migrate(&com, &ejb, &MigrationSpec::default());
        // Nothing imported: the CORP domain is foreign to the EJB server.
        assert_eq!(report.import.applied, 0);
        assert!(!report.import.skipped.is_empty());
    }

    #[test]
    fn explicit_maps_override_defaults() {
        let com = com_fixture();
        let d = EjbDomain::new("h", "s", "j");
        let ejb = EjbMiddleware::new(d.clone());
        let spec = MigrationSpec::domain("CORP", d.to_string())
            .map_permission("Access", "getSalary")
            .map_object("SalariesDB", "SalariesBean");
        let report = migrate(&com, &ejb, &spec);
        assert!(report
            .transformed
            .grants()
            .any(|g| g.permission.as_str() == "getSalary"
                && g.object_type.as_str() == "SalariesBean"));
        assert!(ejb.allows(
            &"bob".into(),
            &d.to_string().as_str().into(),
            &"SalariesBean".into(),
            &"getSalary".into()
        ));
    }

    #[test]
    fn default_interpretation_table() {
        use MiddlewareKind::*;
        assert_eq!(default_permission_interpretation(ComPlus, Ejb, "Access"), "invoke");
        assert_eq!(default_permission_interpretation(ComPlus, Corba, "Launch"), "Launch");
        assert_eq!(default_permission_interpretation(Ejb, ComPlus, "write"), "Access");
        assert_eq!(default_permission_interpretation(Ejb, ComPlus, "RunAs"), "RunAs");
        assert_eq!(default_permission_interpretation(Ejb, Corba, "write"), "write");
        assert_eq!(default_permission_interpretation(Corba, Corba, "op"), "op");
    }

    #[test]
    fn roundtrip_com_ejb_com_preserves_access_rows() {
        let com = com_fixture();
        let d = EjbDomain::new("h", "s", "j");
        let ejb = EjbMiddleware::new(d.clone());
        migrate(&com, &ejb, &MigrationSpec::domain("CORP", d.to_string()));
        let com2 = ComMiddleware::new("CORP");
        migrate(&ejb, &com2, &MigrationSpec::domain(d.to_string(), "CORP"));
        // bob's Access right survives the round trip.
        assert!(com2.allows(
            &"bob".into(),
            &"CORP".into(),
            &"SalariesDB".into(),
            &"Access".into()
        ));
    }
}
