//! Policy Comprehension (paper §4.2): middleware RBAC → KeyNote.
//!
//! The `HasPermission` table becomes one KeyNote **policy assertion**
//! authorising the WebCom administration key for the listed
//! (Domain, Role, ObjectType, Permission) combinations — the paper's
//! Figure 5. Each `UserRole` row becomes a **credential** signed by the
//! WebCom key authorising the user's key for the (Domain, Role) pair —
//! Figure 6. Figure 7's further delegation is [`delegate_role`].

use crate::directory::PrincipalDirectory;
use hetsec_keynote::ast::{Assertion, Clause, CmpOp, ConditionsProgram, Expr, LicenseeExpr, Principal, Term};
use hetsec_rbac::{DomainRole, RbacPolicy, RoleAssignment, User};

/// The `app_domain` value WebCom uses in its credentials.
pub const APP_DOMAIN: &str = "WebCom";

fn attr_eq(attr: &str, value: &str) -> Expr {
    Expr::Cmp {
        op: CmpOp::Eq,
        lhs: Term::Attr(attr.to_string()),
        rhs: Term::Str(value.to_string()),
    }
}

fn and(a: Expr, b: Expr) -> Expr {
    Expr::And(Box::new(a), Box::new(b))
}

fn or_all(mut exprs: Vec<Expr>) -> Option<Expr> {
    let first = exprs.pop()?;
    Some(exprs.into_iter().rev().fold(first, |acc, e| {
        Expr::Or(Box::new(e), Box::new(acc))
    }))
}

/// Encodes a `HasPermission` table as the Figure 5 policy assertion:
/// `POLICY` licenses `webcom_key` for the disjunction of all grants.
/// Returns `None` for a policy with no grants (an empty disjunction would
/// authorise nothing and is better omitted).
pub fn encode_has_permission(policy: &RbacPolicy, webcom_key: &str) -> Option<Assertion> {
    let rows: Vec<Expr> = policy
        .grants()
        .map(|g| {
            and(
                attr_eq("ObjectType", g.object_type.as_str()),
                and(
                    attr_eq("Domain", g.domain.as_str()),
                    and(
                        attr_eq("Role", g.role.as_str()),
                        attr_eq("Permission", g.permission.as_str()),
                    ),
                ),
            )
        })
        .collect();
    let disjunction = or_all(rows)?;
    let conditions = and(attr_eq("app_domain", APP_DOMAIN), disjunction);
    Some(Assertion {
        version: Some("2".to_string()),
        comment: Some("HasPermission table (paper Fig. 5)".to_string()),
        local_constants: Vec::new(),
        authorizer: Principal::Policy,
        licensees: Some(LicenseeExpr::Principal(webcom_key.to_string())),
        conditions: Some(ConditionsProgram {
            clauses: vec![Clause::Bare(conditions)],
        }),
        signature: None,
    })
}

/// Encodes one `UserRole` row as a Figure 6 credential: `webcom_key`
/// authorises the user's key for the (Domain, Role) membership.
pub fn encode_user_role(
    assignment: &RoleAssignment,
    webcom_key: &str,
    directory: &dyn PrincipalDirectory,
) -> Assertion {
    let user_key = directory.key_of(&assignment.user);
    let conditions = and(
        attr_eq("app_domain", APP_DOMAIN),
        and(
            attr_eq("Domain", assignment.domain.as_str()),
            attr_eq("Role", assignment.role.as_str()),
        ),
    );
    Assertion {
        version: Some("2".to_string()),
        comment: Some(format!(
            "{} is authorised as {}/{} (paper Fig. 6)",
            assignment.user, assignment.domain, assignment.role
        )),
        local_constants: Vec::new(),
        authorizer: Principal::key(webcom_key),
        licensees: Some(LicenseeExpr::Principal(user_key)),
        conditions: Some(ConditionsProgram {
            clauses: vec![Clause::Bare(conditions)],
        }),
        signature: None,
    }
}

/// Encodes a whole policy: the Figure 5 policy assertion (if any grants)
/// followed by one Figure 6 credential per `UserRole` row.
pub fn encode_policy(
    policy: &RbacPolicy,
    webcom_key: &str,
    directory: &dyn PrincipalDirectory,
) -> Vec<Assertion> {
    let mut out = Vec::with_capacity(1 + policy.assignment_count());
    out.extend(encode_has_permission(policy, webcom_key));
    for a in policy.assignments() {
        out.push(encode_user_role(a, webcom_key, directory));
    }
    out
}

/// Figure 7: a user further delegates a (Domain, Role) membership to
/// another user, decentralising the policy without touching the unified
/// table.
pub fn delegate_role(
    from: &User,
    to: &User,
    role: &DomainRole,
    directory: &dyn PrincipalDirectory,
) -> Assertion {
    let conditions = and(
        attr_eq("app_domain", APP_DOMAIN),
        and(
            attr_eq("Domain", role.domain.as_str()),
            attr_eq("Role", role.role.as_str()),
        ),
    );
    Assertion {
        version: Some("2".to_string()),
        comment: Some(format!(
            "{from} delegates {role} to {to} (paper Fig. 7)"
        )),
        local_constants: Vec::new(),
        authorizer: Principal::key(directory.key_of(from)),
        licensees: Some(LicenseeExpr::Principal(directory.key_of(to))),
        conditions: Some(ConditionsProgram {
            clauses: vec![Clause::Bare(conditions)],
        }),
        signature: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::SymbolicDirectory;
    use hetsec_keynote::eval::ActionAttributes;
    use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
    use hetsec_rbac::fixtures::salaries_policy;

    fn attrs(d: &str, r: &str, t: &str, p: &str) -> ActionAttributes {
        [
            ("app_domain", APP_DOMAIN),
            ("Domain", d),
            ("Role", r),
            ("ObjectType", t),
            ("Permission", p),
        ]
        .into_iter()
        .collect()
    }

    fn session_for_salaries() -> KeyNoteSession {
        let policy = salaries_policy();
        let dir = SymbolicDirectory::default();
        let assertions = encode_policy(&policy, "KWebCom", &dir);
        let mut s = KeyNoteSession::permissive();
        for a in assertions {
            s.add_policy_assertion(a).unwrap();
        }
        s
    }

    #[test]
    fn figure_5_policy_authorises_webcom_key() {
        let s = session_for_salaries();
        // KWebCom itself is trusted for every table row.
        for (d, r, p, expect) in [
            ("Finance", "Clerk", "write", true),
            ("Finance", "Manager", "read", true),
            ("Finance", "Manager", "write", true),
            ("Sales", "Manager", "read", true),
            ("Sales", "Manager", "write", false),
            ("Sales", "Assistant", "read", false),
            ("Finance", "Clerk", "read", false),
        ] {
            let q = s.evaluate(&ActionQuery::principals(&["KWebCom"]).attributes(&attrs(d, r, "SalariesDB", p)));
            assert_eq!(q.is_authorized(), expect, "{d}/{r} {p}");
        }
    }

    #[test]
    fn figure_6_user_credentials_compose_with_figure_5() {
        let s = session_for_salaries();
        // Claire (Sales/Manager) gets read through the chain
        // POLICY -> KWebCom -> Kclaire.
        let q = s.evaluate(&ActionQuery::principals(&["Kclaire"]).attributes(&attrs("Sales", "Manager", "SalariesDB", "read")));
        assert!(q.is_authorized());
        // But not write (table), and not Finance (membership).
        assert!(!s
            .evaluate(&ActionQuery::principals(&["Kclaire"]).attributes(&attrs("Sales", "Manager", "SalariesDB", "write")))
            .is_authorized());
        assert!(!s
            .evaluate(&ActionQuery::principals(&["Kclaire"]).attributes(&attrs("Finance", "Manager", "SalariesDB", "read")))
            .is_authorized());
    }

    #[test]
    fn wrong_app_domain_rejected() {
        let s = session_for_salaries();
        let mut a = attrs("Sales", "Manager", "SalariesDB", "read");
        a.set("app_domain", "SomethingElse");
        assert!(!s.evaluate(&ActionQuery::principals(&["Kclaire"]).attributes(&a)).is_authorized());
    }

    #[test]
    fn figure_7_delegation_extends_the_chain() {
        let mut s = session_for_salaries();
        let dir = SymbolicDirectory::default();
        let cred = delegate_role(
            &User::new("Claire"),
            &User::new("Fred"),
            &DomainRole::new("Sales", "Manager"),
            &dir,
        );
        s.add_credential_parsed(cred).unwrap();
        let q = s.evaluate(&ActionQuery::principals(&["Kfred"]).attributes(&attrs("Sales", "Manager", "SalariesDB", "read")));
        assert!(q.is_authorized());
        // Fred's delegated role cannot exceed Claire's authorisation.
        assert!(!s
            .evaluate(&ActionQuery::principals(&["Kfred"]).attributes(&attrs("Sales", "Manager", "SalariesDB", "write")))
            .is_authorized());
    }

    #[test]
    fn delegation_from_non_member_grants_nothing() {
        let mut s = session_for_salaries();
        let dir = SymbolicDirectory::default();
        // Dave (Sales/Assistant, no permissions) delegates a manager role
        // he does not hold: the chain breaks at Dave.
        let cred = delegate_role(
            &User::new("Dave"),
            &User::new("Mallory"),
            &DomainRole::new("Sales", "Manager"),
            &dir,
        );
        s.add_credential_parsed(cred).unwrap();
        assert!(!s
            .evaluate(&ActionQuery::principals(&["Kmallory"]).attributes(&attrs("Sales", "Manager", "SalariesDB", "read")))
            .is_authorized());
    }

    #[test]
    fn empty_policy_encodes_no_policy_assertion() {
        let empty = RbacPolicy::new();
        assert!(encode_has_permission(&empty, "KWebCom").is_none());
        assert!(encode_policy(&empty, "KWebCom", &SymbolicDirectory::default()).is_empty());
    }

    #[test]
    fn encoded_assertions_roundtrip_through_text() {
        use hetsec_keynote::parser::parse_assertion;
        use hetsec_keynote::print::print_assertion;
        let policy = salaries_policy();
        for a in encode_policy(&policy, "KWebCom", &SymbolicDirectory::default()) {
            let text = print_assertion(&a);
            let back = parse_assertion(&text).unwrap();
            assert_eq!(back.authorizer, a.authorizer);
            assert_eq!(back.licensees, a.licensees);
            assert_eq!(back.conditions, a.conditions);
        }
    }
}
