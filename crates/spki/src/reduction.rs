//! SPKI tuple reduction (RFC 2693 §6.3): name resolution and
//! authorisation-chain discovery.
//!
//! * **Name resolution** computes the set of keys a SDSI name denotes,
//!   chasing name certs through linked local namespaces (with cycle
//!   protection).
//! * **Authorisation** searches for a delegation chain from an ACL entry
//!   to the requesting key; every link but the last must carry
//!   `(propagate)`, tags intersect along the chain, and the request must
//!   be covered by the final intersection.

use crate::cert::{AuthCert, NameCert, Subject};
use crate::sexp::Sexp;
use crate::tag::Tag;
use std::collections::BTreeSet;

/// An ACL entry: the verifier's own trust root (an unsigned auth cert
/// whose issuer is the verifier itself).
#[derive(Clone, Debug, PartialEq)]
pub struct AclEntry {
    /// Grantee.
    pub subject: Subject,
    /// May the grantee re-delegate?
    pub propagate: bool,
    /// Granted authority.
    pub tag: Tag,
}

impl AclEntry {
    /// Builds an entry.
    pub fn new(subject: Subject, propagate: bool, tag: Tag) -> Self {
        AclEntry {
            subject,
            propagate,
            tag,
        }
    }
}

/// The certificate store the prover reduces over.
#[derive(Clone, Debug, Default)]
pub struct CertStore {
    /// Name certs.
    pub names: Vec<NameCert>,
    /// Auth certs.
    pub auths: Vec<AuthCert>,
}

impl CertStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a name cert.
    pub fn add_name(&mut self, c: NameCert) {
        self.names.push(c);
    }

    /// Adds an auth cert.
    pub fn add_auth(&mut self, c: AuthCert) {
        self.auths.push(c);
    }

    /// Resolves a subject to the set of keys it denotes.
    pub fn resolve(&self, subject: &Subject) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut in_progress = BTreeSet::new();
        self.resolve_into(subject, &mut out, &mut in_progress);
        out
    }

    fn resolve_into(
        &self,
        subject: &Subject,
        out: &mut BTreeSet<String>,
        in_progress: &mut BTreeSet<(String, Vec<String>)>,
    ) {
        match subject {
            Subject::Key(k) => {
                out.insert(k.clone());
            }
            Subject::Name { base, names } => {
                if names.is_empty() {
                    out.insert(base.clone());
                    return;
                }
                let state = (base.clone(), names.clone());
                if !in_progress.insert(state.clone()) {
                    return; // cycle
                }
                let (first, rest) = (&names[0], &names[1..]);
                for cert in &self.names {
                    if &cert.issuer != base || &cert.name != first {
                        continue;
                    }
                    // Rewrite: (base first rest...) -> subject ++ rest.
                    let next = match &cert.subject {
                        Subject::Key(k) if rest.is_empty() => Subject::Key(k.clone()),
                        Subject::Key(k) => Subject::Name {
                            base: k.clone(),
                            names: rest.to_vec(),
                        },
                        Subject::Name {
                            base: nb,
                            names: nn,
                        } => {
                            let mut combined = nn.clone();
                            combined.extend(rest.iter().cloned());
                            Subject::Name {
                                base: nb.clone(),
                                names: combined,
                            }
                        }
                    };
                    self.resolve_into(&next, out, in_progress);
                }
                in_progress.remove(&state);
            }
        }
    }
}

/// One step of a successful proof (for explanation/auditing).
#[derive(Clone, Debug, PartialEq)]
pub enum ProofStep {
    /// The chain starts at this ACL entry.
    Acl(AclEntry),
    /// The chain passes through this auth cert.
    Cert(AuthCert),
}

/// A successful authorisation proof.
#[derive(Clone, Debug, PartialEq)]
pub struct Proof {
    /// The chain, root first.
    pub steps: Vec<ProofStep>,
    /// The intersected authority the chain conveys.
    pub tag: Tag,
}

/// Attempts to prove that `requester` may perform `request` under the
/// given ACL and certificate store. Returns the first proof found
/// (shortest-first by BFS over chain length).
pub fn authorize(
    acl: &[AclEntry],
    store: &CertStore,
    requester: &str,
    request: &Sexp,
) -> Option<Proof> {
    // Each frontier item: (current grantee keys, may-extend?, tag so
    // far, steps so far, used cert indices).
    struct State {
        keys: BTreeSet<String>,
        propagate: bool,
        tag: Tag,
        steps: Vec<ProofStep>,
        used: BTreeSet<usize>,
    }
    let mut frontier: Vec<State> = Vec::new();
    for entry in acl {
        let keys = store.resolve(&entry.subject);
        frontier.push(State {
            keys,
            propagate: entry.propagate,
            tag: entry.tag.clone(),
            steps: vec![ProofStep::Acl(entry.clone())],
            used: BTreeSet::new(),
        });
    }
    // BFS over chain extensions.
    while !frontier.is_empty() {
        // Check for completion first (shortest chains win).
        for state in &frontier {
            if state.keys.contains(requester) && state.tag.covers(request) {
                return Some(Proof {
                    steps: state.steps.clone(),
                    tag: state.tag.clone(),
                });
            }
        }
        let mut next = Vec::new();
        for state in frontier {
            if !state.propagate {
                continue;
            }
            for (i, cert) in store.auths.iter().enumerate() {
                if state.used.contains(&i) || !state.keys.contains(&cert.issuer) {
                    continue;
                }
                let Some(tag) = state.tag.intersect(&cert.tag) else {
                    continue;
                };
                let mut used = state.used.clone();
                used.insert(i);
                let mut steps = state.steps.clone();
                steps.push(ProofStep::Cert(cert.clone()));
                next.push(State {
                    keys: store.resolve(&cert.subject),
                    propagate: cert.propagate,
                    tag,
                    steps,
                    used,
                });
            }
        }
        frontier = next;
    }
    None
}

/// Convenience: authorisation as a boolean.
pub fn is_authorized(
    acl: &[AclEntry],
    store: &CertStore,
    requester: &str,
    request: &Sexp,
) -> bool {
    authorize(acl, store, requester, request).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sexp::parse;

    fn tag(src: &str) -> Tag {
        Tag::from_sexp(&parse(src).unwrap()).unwrap()
    }

    fn req(src: &str) -> Sexp {
        parse(src).unwrap()
    }

    #[test]
    fn resolve_direct_name() {
        let mut store = CertStore::new();
        store.add_name(NameCert::new("Kw", "manager", Subject::key("Kclaire")));
        store.add_name(NameCert::new("Kw", "manager", Subject::key("Kelaine")));
        let keys = store.resolve(&Subject::name("Kw", "manager"));
        assert_eq!(keys.len(), 2);
        assert!(keys.contains("Kclaire"));
        assert!(keys.contains("Kelaine"));
    }

    #[test]
    fn resolve_linked_names() {
        // (Kw partners) -> (Kacme staff); (Kacme staff) -> Kbob
        let mut store = CertStore::new();
        store.add_name(NameCert::new(
            "Kw",
            "partners",
            Subject::name("Kacme", "staff"),
        ));
        store.add_name(NameCert::new("Kacme", "staff", Subject::key("Kbob")));
        let keys = store.resolve(&Subject::name("Kw", "partners"));
        assert_eq!(keys, ["Kbob".to_string()].into_iter().collect());
    }

    #[test]
    fn resolve_compound_name() {
        // (Kw partners staff): resolve "partners" in Kw, then "staff" in
        // the result.
        let mut store = CertStore::new();
        store.add_name(NameCert::new("Kw", "partners", Subject::key("Kacme")));
        store.add_name(NameCert::new("Kacme", "staff", Subject::key("Kbob")));
        let keys = store.resolve(&Subject::Name {
            base: "Kw".into(),
            names: vec!["partners".into(), "staff".into()],
        });
        assert_eq!(keys, ["Kbob".to_string()].into_iter().collect());
    }

    #[test]
    fn cyclic_names_terminate() {
        let mut store = CertStore::new();
        store.add_name(NameCert::new("Ka", "x", Subject::name("Kb", "y")));
        store.add_name(NameCert::new("Kb", "y", Subject::name("Ka", "x")));
        let keys = store.resolve(&Subject::name("Ka", "x"));
        assert!(keys.is_empty());
    }

    #[test]
    fn direct_acl_grant() {
        let acl = [AclEntry::new(
            Subject::key("Kbob"),
            false,
            tag("(salaries (* set read write))"),
        )];
        let store = CertStore::new();
        assert!(is_authorized(&acl, &store, "Kbob", &req("(salaries read)")));
        assert!(!is_authorized(&acl, &store, "Kbob", &req("(salaries drop)")));
        assert!(!is_authorized(&acl, &store, "Kalice", &req("(salaries read)")));
    }

    #[test]
    fn one_hop_delegation_requires_propagate() {
        let acl = [AclEntry::new(Subject::key("Kbob"), true, tag("(salaries write)"))];
        let mut store = CertStore::new();
        store.add_auth(AuthCert::new(
            "Kbob",
            Subject::key("Kalice"),
            false,
            tag("(salaries write)"),
        ));
        assert!(is_authorized(&acl, &store, "Kalice", &req("(salaries write)")));
        // Without propagate on the ACL entry, the chain cannot extend.
        let acl_no_prop = [AclEntry::new(
            Subject::key("Kbob"),
            false,
            tag("(salaries write)"),
        )];
        assert!(!is_authorized(&acl_no_prop, &store, "Kalice", &req("(salaries write)")));
    }

    #[test]
    fn tags_narrow_along_the_chain() {
        // Root grants read+write; Bob passes only write to Alice.
        let acl = [AclEntry::new(
            Subject::key("Kbob"),
            true,
            tag("(salaries (* set read write))"),
        )];
        let mut store = CertStore::new();
        store.add_auth(AuthCert::new(
            "Kbob",
            Subject::key("Kalice"),
            false,
            tag("(salaries write)"),
        ));
        assert!(is_authorized(&acl, &store, "Kalice", &req("(salaries write)")));
        assert!(!is_authorized(&acl, &store, "Kalice", &req("(salaries read)")));
    }

    #[test]
    fn delegation_cannot_widen() {
        // Bob only has read but delegates (*) to Alice: she gets read.
        let acl = [AclEntry::new(Subject::key("Kbob"), true, tag("(salaries read)"))];
        let mut store = CertStore::new();
        store.add_auth(AuthCert::new("Kbob", Subject::key("Kalice"), false, Tag::all()));
        assert!(is_authorized(&acl, &store, "Kalice", &req("(salaries read)")));
        assert!(!is_authorized(&acl, &store, "Kalice", &req("(salaries write)")));
    }

    #[test]
    fn name_subjects_in_auth_chain() {
        // ACL grants to the group name; Claire is a member via name cert.
        let acl = [AclEntry::new(
            Subject::name("Kw", "managers"),
            false,
            tag("(salaries read)"),
        )];
        let mut store = CertStore::new();
        store.add_name(NameCert::new("Kw", "managers", Subject::key("Kclaire")));
        assert!(is_authorized(&acl, &store, "Kclaire", &req("(salaries read)")));
        assert!(!is_authorized(&acl, &store, "Kbob", &req("(salaries read)")));
    }

    #[test]
    fn multi_hop_with_cycle_guard() {
        let acl = [AclEntry::new(Subject::key("K0"), true, Tag::all())];
        let mut store = CertStore::new();
        for i in 0..5 {
            store.add_auth(AuthCert::new(
                format!("K{i}"),
                Subject::key(format!("K{}", i + 1)),
                true,
                Tag::all(),
            ));
        }
        // A cycle back to K0 must not hang the search.
        store.add_auth(AuthCert::new("K5", Subject::key("K0"), true, Tag::all()));
        assert!(is_authorized(&acl, &store, "K5", &req("(anything)")));
        assert!(!is_authorized(&acl, &store, "K9", &req("(anything)")));
    }

    #[test]
    fn proof_records_the_chain() {
        let acl = [AclEntry::new(Subject::key("Kbob"), true, tag("(s write)"))];
        let mut store = CertStore::new();
        store.add_auth(AuthCert::new(
            "Kbob",
            Subject::key("Kalice"),
            false,
            tag("(s write)"),
        ));
        let proof = authorize(&acl, &store, "Kalice", &req("(s write)")).unwrap();
        assert_eq!(proof.steps.len(), 2);
        assert!(matches!(proof.steps[0], ProofStep::Acl(_)));
        assert!(matches!(proof.steps[1], ProofStep::Cert(_)));
        assert!(proof.tag.covers(&req("(s write)")));
    }

    #[test]
    fn shortest_chain_preferred() {
        // Direct grant and a longer chain both exist; proof is direct.
        let acl = [
            AclEntry::new(Subject::key("Kalice"), false, tag("(s read)")),
            AclEntry::new(Subject::key("Kbob"), true, tag("(s read)")),
        ];
        let mut store = CertStore::new();
        store.add_auth(AuthCert::new(
            "Kbob",
            Subject::key("Kalice"),
            false,
            tag("(s read)"),
        ));
        let proof = authorize(&acl, &store, "Kalice", &req("(s read)")).unwrap();
        assert_eq!(proof.steps.len(), 1);
    }
}
