//! SPKI/SDSI certificates (RFC 2693 §4-5).
//!
//! Two certificate forms matter for authorisation:
//!
//! * **name certs** — `(cert (issuer (name K n)) (subject S))`: in K's
//!   local namespace, the name `n` includes subject `S` (a key or a
//!   further name) — SDSI's linked local name spaces;
//! * **auth certs** — `(cert (issuer K) (subject S) (propagate)?
//!   (tag T))`: K grants the authority `T` to `S`, re-delegable iff
//!   `(propagate)` is present.

use crate::sexp::{parse, tagged_list, Sexp, SexpError};
use crate::tag::{Tag, TagError};
use hetsec_crypto::{KeyPair, PublicKey, Signature};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A subject: a key, or a (possibly compound) SDSI name rooted at a key.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Subject {
    /// A key, by printable text.
    Key(String),
    /// `(name K n1 n2 ...)`: the name `n1 ... nk` in K's namespace.
    Name {
        /// The namespace root key.
        base: String,
        /// The name components.
        names: Vec<String>,
    },
}

impl Subject {
    /// A key subject.
    pub fn key(k: impl Into<String>) -> Subject {
        Subject::Key(k.into())
    }

    /// A single-component name subject.
    pub fn name(base: impl Into<String>, name: impl Into<String>) -> Subject {
        Subject::Name {
            base: base.into(),
            names: vec![name.into()],
        }
    }

    /// S-expression form.
    pub fn to_sexp(&self) -> Sexp {
        match self {
            Subject::Key(k) => Sexp::atom(k.clone()),
            Subject::Name { base, names } => {
                let mut items = vec![Sexp::atom("name"), Sexp::atom(base.clone())];
                items.extend(names.iter().map(|n| Sexp::atom(n.clone())));
                Sexp::List(items)
            }
        }
    }

    /// Parses a subject expression.
    pub fn from_sexp(e: &Sexp) -> Result<Subject, CertError> {
        match e {
            Sexp::Atom(k) => Ok(Subject::Key(k.clone())),
            _ => match e.tagged() {
                Some(("name", rest)) if rest.len() >= 2 => {
                    let base = rest[0]
                        .as_atom()
                        .ok_or_else(|| CertError::Malformed("name base".into()))?
                        .to_string();
                    let names = rest[1..]
                        .iter()
                        .map(|n| {
                            n.as_atom()
                                .map(str::to_string)
                                .ok_or_else(|| CertError::Malformed("name component".into()))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(Subject::Name { base, names })
                }
                _ => Err(CertError::Malformed(format!("subject: {e}"))),
            },
        }
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sexp())
    }
}

/// Certificate errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertError {
    /// Structural problem.
    Malformed(String),
    /// Tag problem.
    Tag(TagError),
    /// S-expression syntax problem.
    Syntax(SexpError),
    /// Signature check failed or key mismatched.
    BadSignature(String),
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Malformed(m) => write!(f, "malformed certificate: {m}"),
            CertError::Tag(t) => write!(f, "{t}"),
            CertError::Syntax(s) => write!(f, "{s}"),
            CertError::BadSignature(m) => write!(f, "bad signature: {m}"),
        }
    }
}

impl std::error::Error for CertError {}

impl From<TagError> for CertError {
    fn from(e: TagError) -> Self {
        CertError::Tag(e)
    }
}

impl From<SexpError> for CertError {
    fn from(e: SexpError) -> Self {
        CertError::Syntax(e)
    }
}

/// A name certificate.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NameCert {
    /// Namespace owner key text.
    pub issuer: String,
    /// The local name being defined.
    pub name: String,
    /// What the name includes.
    pub subject: Subject,
    /// Signature text, if signed.
    pub signature: Option<String>,
}

/// An authorisation certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthCert {
    /// Granting key text.
    pub issuer: String,
    /// Grantee.
    pub subject: Subject,
    /// Whether the grantee may re-delegate.
    pub propagate: bool,
    /// The granted authority.
    pub tag: Tag,
    /// Signature text, if signed.
    pub signature: Option<String>,
}

impl NameCert {
    /// An unsigned name cert.
    pub fn new(issuer: impl Into<String>, name: impl Into<String>, subject: Subject) -> Self {
        NameCert {
            issuer: issuer.into(),
            name: name.into(),
            subject,
            signature: None,
        }
    }

    fn body_sexp(&self) -> Sexp {
        tagged_list(
            "cert",
            [
                tagged_list(
                    "issuer",
                    [tagged_list(
                        "name",
                        [Sexp::atom(self.issuer.clone()), Sexp::atom(self.name.clone())],
                    )],
                ),
                tagged_list("subject", [self.subject.to_sexp()]),
            ],
        )
    }

    /// S-expression form (with signature when present).
    pub fn to_sexp(&self) -> Sexp {
        append_signature(self.body_sexp(), &self.signature)
    }

    /// Signs in place; the keypair must match the issuer.
    pub fn sign(&mut self, key: &KeyPair) -> Result<(), CertError> {
        self.signature = Some(sign_body(&self.body_sexp(), &self.issuer, key)?);
        Ok(())
    }

    /// Verifies the signature (if the issuer is a parseable key).
    pub fn verify(&self) -> SignatureCheck {
        verify_body(&self.body_sexp(), &self.issuer, &self.signature)
    }
}

impl AuthCert {
    /// An unsigned auth cert.
    pub fn new(issuer: impl Into<String>, subject: Subject, propagate: bool, tag: Tag) -> Self {
        AuthCert {
            issuer: issuer.into(),
            subject,
            propagate,
            tag,
            signature: None,
        }
    }

    fn body_sexp(&self) -> Sexp {
        let mut items = vec![
            Sexp::atom("cert"),
            tagged_list("issuer", [Sexp::atom(self.issuer.clone())]),
            tagged_list("subject", [self.subject.to_sexp()]),
        ];
        if self.propagate {
            items.push(Sexp::list([Sexp::atom("propagate")]));
        }
        items.push(self.tag.to_sexp());
        Sexp::List(items)
    }

    /// S-expression form (with signature when present).
    pub fn to_sexp(&self) -> Sexp {
        append_signature(self.body_sexp(), &self.signature)
    }

    /// Signs in place; the keypair must match the issuer.
    pub fn sign(&mut self, key: &KeyPair) -> Result<(), CertError> {
        self.signature = Some(sign_body(&self.body_sexp(), &self.issuer, key)?);
        Ok(())
    }

    /// Verifies the signature (if the issuer is a parseable key).
    pub fn verify(&self) -> SignatureCheck {
        verify_body(&self.body_sexp(), &self.issuer, &self.signature)
    }
}

/// Signature verification outcome (mirrors the KeyNote layer's states).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SignatureCheck {
    /// No signature present.
    Unsigned,
    /// Valid signature by the issuer key.
    Valid,
    /// Signature present but wrong.
    Invalid,
    /// Issuer is a symbolic key; nothing to check against.
    Unverifiable,
}

fn sign_body(body: &Sexp, issuer: &str, key: &KeyPair) -> Result<String, CertError> {
    if key.public().to_text() != issuer {
        return Err(CertError::BadSignature(format!(
            "signing key does not match issuer {issuer}"
        )));
    }
    Ok(key.sign(body.to_string().as_bytes()).to_text())
}

fn verify_body(body: &Sexp, issuer: &str, signature: &Option<String>) -> SignatureCheck {
    let Some(sig_text) = signature else {
        return SignatureCheck::Unsigned;
    };
    let Ok(public) = issuer.parse::<PublicKey>() else {
        return SignatureCheck::Unverifiable;
    };
    let Ok(sig) = sig_text.parse::<Signature>() else {
        return SignatureCheck::Invalid;
    };
    if public.verify(body.to_string().as_bytes(), &sig) {
        SignatureCheck::Valid
    } else {
        SignatureCheck::Invalid
    }
}

fn append_signature(body: Sexp, signature: &Option<String>) -> Sexp {
    match signature {
        None => body,
        Some(sig) => {
            let Sexp::List(mut items) = body else {
                unreachable!("cert bodies are lists")
            };
            items.push(tagged_list("signature", [Sexp::atom(sig.clone())]));
            Sexp::List(items)
        }
    }
}

/// Either certificate kind, as parsed from text.
#[derive(Clone, Debug, PartialEq)]
pub enum Cert {
    /// A name cert.
    Name(NameCert),
    /// An auth cert.
    Auth(AuthCert),
}

/// Parses a certificate from s-expression text.
pub fn parse_cert(src: &str) -> Result<Cert, CertError> {
    let e = parse(src)?;
    cert_from_sexp(&e)
}

/// Parses a certificate from an s-expression.
pub fn cert_from_sexp(e: &Sexp) -> Result<Cert, CertError> {
    let Some(("cert", fields)) = e.tagged() else {
        return Err(CertError::Malformed("expected (cert ...)".into()));
    };
    let mut issuer: Option<Sexp> = None;
    let mut subject: Option<Subject> = None;
    let mut propagate = false;
    let mut tag: Option<Tag> = None;
    let mut signature: Option<String> = None;
    for field in fields {
        match field.tagged() {
            Some(("issuer", rest)) if rest.len() == 1 => issuer = Some(rest[0].clone()),
            Some(("subject", rest)) if rest.len() == 1 => {
                subject = Some(Subject::from_sexp(&rest[0])?)
            }
            Some(("propagate", [])) => propagate = true,
            Some(("tag", _)) => tag = Some(Tag::from_sexp(field)?),
            Some(("signature", rest)) if rest.len() == 1 => {
                signature = rest[0].as_atom().map(str::to_string)
            }
            _ => return Err(CertError::Malformed(format!("field {field}"))),
        }
    }
    let issuer = issuer.ok_or_else(|| CertError::Malformed("missing issuer".into()))?;
    let subject = subject.ok_or_else(|| CertError::Malformed("missing subject".into()))?;
    // A name-cert issuer is (name K n); an auth-cert issuer is a key.
    match issuer.tagged() {
        Some(("name", rest)) if rest.len() == 2 => {
            let base = rest[0]
                .as_atom()
                .ok_or_else(|| CertError::Malformed("issuer key".into()))?;
            let name = rest[1]
                .as_atom()
                .ok_or_else(|| CertError::Malformed("issuer name".into()))?;
            if tag.is_some() {
                return Err(CertError::Malformed("name cert with tag".into()));
            }
            Ok(Cert::Name(NameCert {
                issuer: base.to_string(),
                name: name.to_string(),
                subject,
                signature,
            }))
        }
        _ => {
            let key = issuer
                .as_atom()
                .ok_or_else(|| CertError::Malformed(format!("issuer {issuer}")))?;
            let tag = tag.ok_or_else(|| CertError::Malformed("auth cert without tag".into()))?;
            Ok(Cert::Auth(AuthCert {
                issuer: key.to_string(),
                subject,
                propagate,
                tag,
                signature,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_cert_roundtrip() {
        let c = NameCert::new("Kwebcom", "Sales-Manager", Subject::key("Kclaire"));
        let text = c.to_sexp().to_string();
        assert_eq!(
            text,
            "(cert (issuer (name Kwebcom Sales-Manager)) (subject Kclaire))"
        );
        match parse_cert(&text).unwrap() {
            Cert::Name(back) => assert_eq!(back, c),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn auth_cert_roundtrip() {
        let tag = Tag::from_sexp(&parse("(salaries read)").unwrap()).unwrap();
        let c = AuthCert::new(
            "Kwebcom",
            Subject::name("Kwebcom", "Sales-Manager"),
            true,
            tag,
        );
        let text = c.to_sexp().to_string();
        assert!(text.contains("(propagate)"));
        match parse_cert(&text).unwrap() {
            Cert::Auth(back) => assert_eq!(back, c),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compound_name_subject() {
        let s = Subject::Name {
            base: "Ka".into(),
            names: vec!["friends".into(), "managers".into()],
        };
        let text = s.to_sexp().to_string();
        assert_eq!(text, "(name Ka friends managers)");
        assert_eq!(Subject::from_sexp(&parse(&text).unwrap()).unwrap(), s);
    }

    #[test]
    fn malformed_certs_rejected() {
        assert!(parse_cert("(not-a-cert)").is_err());
        assert!(parse_cert("(cert (subject Ka))").is_err()); // no issuer
        assert!(parse_cert("(cert (issuer Ka))").is_err()); // no subject
        // auth cert requires a tag
        assert!(parse_cert("(cert (issuer Ka) (subject Kb))").is_err());
        // name cert must not carry a tag
        assert!(parse_cert("(cert (issuer (name Ka n)) (subject Kb) (tag (*)))").is_err());
    }

    #[test]
    fn sign_and_verify() {
        let kp = KeyPair::from_label("spki-issuer");
        let issuer = kp.public().to_text();
        let mut c = AuthCert::new(issuer.clone(), Subject::key("Kx"), false, Tag::all());
        assert_eq!(c.verify(), SignatureCheck::Unsigned);
        c.sign(&kp).unwrap();
        assert_eq!(c.verify(), SignatureCheck::Valid);
        // Tamper.
        c.propagate = true;
        assert_eq!(c.verify(), SignatureCheck::Invalid);
        // Wrong key rejected at sign time.
        let other = KeyPair::from_label("someone-else");
        let mut c2 = AuthCert::new(issuer, Subject::key("Kx"), false, Tag::all());
        assert!(c2.sign(&other).is_err());
    }

    #[test]
    fn symbolic_issuer_unverifiable() {
        let mut c = NameCert::new("Kwebcom", "n", Subject::key("Kx"));
        c.signature = Some("sig-rsa-sha256:1234".into());
        assert_eq!(c.verify(), SignatureCheck::Unverifiable);
    }

    #[test]
    fn signed_cert_text_roundtrip() {
        let kp = KeyPair::from_label("spki-name-issuer");
        let issuer = kp.public().to_text();
        let mut c = NameCert::new(issuer, "payroll", Subject::key("Kbob"));
        c.sign(&kp).unwrap();
        let text = c.to_sexp().to_string();
        match parse_cert(&text).unwrap() {
            Cert::Name(back) => {
                assert_eq!(back, c);
                assert_eq!(back.verify(), SignatureCheck::Valid);
            }
            other => panic!("{other:?}"),
        }
    }
}
