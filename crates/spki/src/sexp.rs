//! S-expressions, the syntax of SPKI/SDSI (RFC 2693).
//!
//! Supports the *advanced* transport form: atoms are tokens
//! (`[A-Za-z0-9+/_.*=-]+`) or double-quoted strings; lists are
//! parenthesised. Printing is canonical enough to round-trip and to be
//! byte-stable for signing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An s-expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Sexp {
    /// An atom (byte string, held as UTF-8 text here).
    Atom(String),
    /// A list of sub-expressions.
    List(Vec<Sexp>),
}

impl Sexp {
    /// An atom.
    pub fn atom(s: impl Into<String>) -> Sexp {
        Sexp::Atom(s.into())
    }

    /// A list.
    pub fn list(items: impl IntoIterator<Item = Sexp>) -> Sexp {
        Sexp::List(items.into_iter().collect())
    }

    /// The atom's text, if this is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            Sexp::Atom(s) => Some(s),
            Sexp::List(_) => None,
        }
    }

    /// The items, if this is a list.
    pub fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::Atom(_) => None,
            Sexp::List(items) => Some(items),
        }
    }

    /// For a list whose head is an atom, returns (head, rest).
    pub fn tagged(&self) -> Option<(&str, &[Sexp])> {
        let items = self.as_list()?;
        let head = items.first()?.as_atom()?;
        Some((head, &items[1..]))
    }
}

/// Parse errors with byte offsets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SexpError {
    /// Unexpected end of input.
    Eof,
    /// Unexpected character.
    Unexpected(char, usize),
    /// Unbalanced parenthesis.
    Unbalanced(usize),
    /// Unterminated string literal.
    UnterminatedString(usize),
    /// Trailing input after the expression.
    Trailing(usize),
}

impl fmt::Display for SexpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SexpError::Eof => write!(f, "unexpected end of input"),
            SexpError::Unexpected(c, i) => write!(f, "unexpected {c:?} at byte {i}"),
            SexpError::Unbalanced(i) => write!(f, "unbalanced parenthesis at byte {i}"),
            SexpError::UnterminatedString(i) => write!(f, "unterminated string at byte {i}"),
            SexpError::Trailing(i) => write!(f, "trailing input at byte {i}"),
        }
    }
}

impl std::error::Error for SexpError {}

fn is_token_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '+' | '/' | '_' | '.' | '*' | '=' | '-' | ':' | '#')
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    _src: &'a str,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_whitespace())
        {
            self.pos += 1;
        }
    }

    fn parse(&mut self) -> Result<Sexp, SexpError> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            None => Err(SexpError::Eof),
            Some('(') => {
                let open = self.pos;
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.chars.get(self.pos) {
                        None => return Err(SexpError::Unbalanced(open)),
                        Some(')') => {
                            self.pos += 1;
                            return Ok(Sexp::List(items));
                        }
                        Some(_) => items.push(self.parse()?),
                    }
                }
            }
            Some(')') => Err(SexpError::Unbalanced(self.pos)),
            Some('"') => {
                let open = self.pos;
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.chars.get(self.pos) {
                        None => return Err(SexpError::UnterminatedString(open)),
                        Some('"') => {
                            self.pos += 1;
                            return Ok(Sexp::Atom(s));
                        }
                        Some('\\') => {
                            self.pos += 1;
                            match self.chars.get(self.pos) {
                                None => return Err(SexpError::UnterminatedString(open)),
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some(&c) => s.push(c),
                            }
                            self.pos += 1;
                        }
                        Some(&c) => {
                            s.push(c);
                            self.pos += 1;
                        }
                    }
                }
            }
            Some(&c) if is_token_char(c) => {
                let start = self.pos;
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(|&c| is_token_char(c))
                {
                    self.pos += 1;
                }
                Ok(Sexp::Atom(self.chars[start..self.pos].iter().collect()))
            }
            Some(&c) => Err(SexpError::Unexpected(c, self.pos)),
        }
    }
}

/// Parses one s-expression, requiring the whole input be consumed.
pub fn parse(src: &str) -> Result<Sexp, SexpError> {
    let mut p = Parser {
        chars: src.chars().collect(),
        pos: 0,
        _src: src,
    };
    let e = p.parse()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(SexpError::Trailing(p.pos));
    }
    Ok(e)
}

/// True when the atom can print as a bare token.
fn is_token(s: &str) -> bool {
    !s.is_empty() && s.chars().all(is_token_char)
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Atom(s) if is_token(s) => write!(f, "{s}"),
            Sexp::Atom(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        other => write!(f, "{other}")?,
                    }
                }
                write!(f, "\"")
            }
            Sexp::List(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Builds `(head item1 item2 ...)`.
pub fn tagged_list(head: &str, items: impl IntoIterator<Item = Sexp>) -> Sexp {
    let mut v = vec![Sexp::atom(head)];
    v.extend(items);
    Sexp::List(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_atoms_and_lists() {
        assert_eq!(parse("abc").unwrap(), Sexp::atom("abc"));
        assert_eq!(
            parse("(a b c)").unwrap(),
            Sexp::list([Sexp::atom("a"), Sexp::atom("b"), Sexp::atom("c")])
        );
        assert_eq!(
            parse("(a (b c) d)").unwrap(),
            Sexp::list([
                Sexp::atom("a"),
                Sexp::list([Sexp::atom("b"), Sexp::atom("c")]),
                Sexp::atom("d")
            ])
        );
        assert_eq!(parse("()").unwrap(), Sexp::List(vec![]));
    }

    #[test]
    fn parses_quoted_strings() {
        assert_eq!(parse("\"hello world\"").unwrap(), Sexp::atom("hello world"));
        assert_eq!(parse("\"a\\\"b\"").unwrap(), Sexp::atom("a\"b"));
    }

    #[test]
    fn errors() {
        assert_eq!(parse(""), Err(SexpError::Eof));
        assert!(matches!(parse("(a"), Err(SexpError::Unbalanced(_))));
        assert!(matches!(parse(")"), Err(SexpError::Unbalanced(_))));
        assert!(matches!(parse("\"x"), Err(SexpError::UnterminatedString(_))));
        assert!(matches!(parse("a b"), Err(SexpError::Trailing(_))));
        assert!(matches!(parse("{"), Err(SexpError::Unexpected('{', 0))));
    }

    #[test]
    fn display_roundtrip() {
        for src in [
            "(cert (issuer ka) (subject kb))",
            "(tag (* set read write))",
            "(name ka \"sales manager\")",
            "()",
        ] {
            let e = parse(src).unwrap();
            assert_eq!(parse(&e.to_string()).unwrap(), e, "src={src}");
        }
    }

    #[test]
    fn quoting_non_token_atoms() {
        let e = Sexp::atom("has space");
        assert_eq!(e.to_string(), "\"has space\"");
        let e = Sexp::atom("token-ok_.*");
        assert_eq!(e.to_string(), "token-ok_.*");
    }

    #[test]
    fn accessors() {
        let e = parse("(cert (issuer ka))").unwrap();
        let (head, rest) = e.tagged().unwrap();
        assert_eq!(head, "cert");
        assert_eq!(rest.len(), 1);
        assert!(Sexp::atom("x").tagged().is_none());
        assert!(Sexp::List(vec![]).tagged().is_none());
        assert_eq!(Sexp::atom("x").as_atom(), Some("x"));
        assert!(Sexp::atom("x").as_list().is_none());
    }

    #[test]
    fn whitespace_flexible() {
        let e = parse("  ( a\n\t(b   c)\n )  ").unwrap();
        assert_eq!(e.to_string(), "(a (b c))");
    }
}
