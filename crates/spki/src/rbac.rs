//! RBAC ↔ SPKI/SDSI translation — the footnote-1 counterpart of the
//! KeyNote encoding: "While we use KeyNote in this paper, our results
//! are applicable to SPKI/SDSI."
//!
//! The mapping uses SDSI's strengths directly:
//!
//! * a (domain, role) pair becomes the local name `D/R` in the WebCom
//!   key's namespace; `UserRole` rows become **name certs**;
//! * each `HasPermission` row becomes an **ACL entry** granting the tag
//!   `(webcom D R T P)` to the name `D/R`, with `(propagate)` so members
//!   can delegate onward (the paper's Figure 7 flow).

use crate::cert::{AuthCert, NameCert, Subject};
use crate::reduction::{AclEntry, CertStore};
use crate::sexp::Sexp;
use crate::tag::Tag;
use hetsec_rbac::{Domain, Permission, RbacPolicy, Role, User};

/// The SDSI local name for a (domain, role) pair.
pub fn role_name(domain: &Domain, role: &Role) -> String {
    format!("{}/{}", domain.as_str(), role.as_str())
}

/// The key text convention for users (matches the paper's `K<name>`).
pub fn user_key(user: &User) -> String {
    format!("K{}", user.as_str().to_lowercase())
}

/// The request s-expression for an access attempt.
pub fn request(domain: &Domain, role: &Role, object: &str, permission: &Permission) -> Sexp {
    Sexp::list([
        Sexp::atom("webcom"),
        Sexp::atom(domain.as_str()),
        Sexp::atom(role.as_str()),
        Sexp::atom(object),
        Sexp::atom(permission.as_str()),
    ])
}

/// An encoded policy: the verifier's ACL plus the certificate store.
#[derive(Clone, Debug, Default)]
pub struct SpkiPolicy {
    /// The verifier's ACL (one entry per `HasPermission` row).
    pub acl: Vec<AclEntry>,
    /// Name certs for the `UserRole` relation (plus any delegations
    /// added later).
    pub store: CertStore,
}

/// Encodes an RBAC policy into SPKI/SDSI form under `webcom_key`.
pub fn encode_rbac(policy: &RbacPolicy, webcom_key: &str) -> SpkiPolicy {
    let mut out = SpkiPolicy::default();
    for g in policy.grants() {
        let tag = Tag::new(request(&g.domain, &g.role, g.object_type.as_str(), &g.permission));
        out.acl.push(AclEntry::new(
            Subject::name(webcom_key, role_name(&g.domain, &g.role)),
            true,
            tag,
        ));
    }
    for a in policy.assignments() {
        out.store.add_name(NameCert::new(
            webcom_key,
            role_name(&a.domain, &a.role),
            Subject::key(user_key(&a.user)),
        ));
    }
    out
}

/// Figure 7 in SPKI form: `from` delegates (a subset of) their authority
/// for a (domain, role) to `to`.
pub fn delegate_role_spki(
    from: &User,
    to: &User,
    domain: &Domain,
    role: &Role,
) -> AuthCert {
    let tag = Tag::new(Sexp::list([
        Sexp::atom("webcom"),
        Sexp::atom(domain.as_str()),
        Sexp::atom(role.as_str()),
    ]));
    AuthCert::new(user_key(from), Subject::key(user_key(to)), false, tag)
}

impl SpkiPolicy {
    /// The access check: may `user` exercise (domain, role, object,
    /// permission)?
    pub fn check(
        &self,
        user: &User,
        domain: &Domain,
        role: &Role,
        object: &str,
        permission: &Permission,
    ) -> bool {
        let req = request(domain, role, object, permission);
        crate::reduction::is_authorized(&self.acl, &self.store, &user_key(user), &req)
    }

    /// Like [`Self::check`] but for a raw key text (delegatees that are
    /// not users of the RBAC policy).
    pub fn check_key(
        &self,
        key: &str,
        domain: &Domain,
        role: &Role,
        object: &str,
        permission: &Permission,
    ) -> bool {
        let req = request(domain, role, object, permission);
        crate::reduction::is_authorized(&self.acl, &self.store, key, &req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_rbac::fixtures::salaries_policy;

    fn fixture() -> SpkiPolicy {
        encode_rbac(&salaries_policy(), "Kwebcom")
    }

    fn check(p: &SpkiPolicy, user: &str, d: &str, r: &str, perm: &str) -> bool {
        p.check(
            &user.into(),
            &d.into(),
            &r.into(),
            "SalariesDB",
            &perm.into(),
        )
    }

    #[test]
    fn figure_1_decisions_match() {
        let p = fixture();
        assert!(check(&p, "Alice", "Finance", "Clerk", "write"));
        assert!(!check(&p, "Alice", "Finance", "Clerk", "read"));
        assert!(check(&p, "Bob", "Finance", "Manager", "read"));
        assert!(check(&p, "Bob", "Finance", "Manager", "write"));
        assert!(check(&p, "Claire", "Sales", "Manager", "read"));
        assert!(!check(&p, "Claire", "Sales", "Manager", "write"));
        assert!(!check(&p, "Dave", "Sales", "Assistant", "read"));
        assert!(!check(&p, "Mallory", "Finance", "Manager", "read"));
        // Role pinning matters: Bob is not a Sales manager.
        assert!(!check(&p, "Bob", "Sales", "Manager", "read"));
    }

    #[test]
    fn figure_7_delegation_in_spki() {
        let mut p = fixture();
        // Before: Fred has nothing.
        assert!(!check(&p, "Fred", "Sales", "Manager", "read"));
        p.store.add_auth(delegate_role_spki(
            &"Claire".into(),
            &"Fred".into(),
            &"Sales".into(),
            &"Manager".into(),
        ));
        // After: Fred reads via Claire, bounded by Claire's authority.
        assert!(check(&p, "Fred", "Sales", "Manager", "read"));
        assert!(!check(&p, "Fred", "Sales", "Manager", "write"));
        // A delegation from a non-member grants nothing.
        let mut p2 = fixture();
        p2.store.add_auth(delegate_role_spki(
            &"Dave".into(),
            &"Mallory".into(),
            &"Sales".into(),
            &"Manager".into(),
        ));
        assert!(!check(&p2, "Mallory", "Sales", "Manager", "read"));
    }

    #[test]
    fn empty_policy_denies_everything() {
        let p = encode_rbac(&hetsec_rbac::RbacPolicy::new(), "Kw");
        assert!(!check(&p, "Bob", "Finance", "Manager", "read"));
        assert!(p.acl.is_empty());
    }

    #[test]
    fn role_name_and_key_conventions() {
        assert_eq!(role_name(&"Sales".into(), &"Manager".into()), "Sales/Manager");
        assert_eq!(user_key(&User::new("Claire")), "Kclaire");
        let r = request(&"D".into(), &"R".into(), "T", &"p".into());
        assert_eq!(r.to_string(), "(webcom D R T p)");
    }

    #[test]
    fn check_key_for_external_delegatees() {
        let mut p = fixture();
        p.store.add_auth(AuthCert::new(
            "Kclaire",
            Subject::key("rsa-sim:abc:10001"),
            false,
            Tag::new(request(&"Sales".into(), &"Manager".into(), "SalariesDB", &"read".into())),
        ));
        assert!(p.check_key(
            "rsa-sim:abc:10001",
            &"Sales".into(),
            &"Manager".into(),
            "SalariesDB",
            &"read".into()
        ));
    }
}
