//! SPKI/SDSI (RFC 2693) trust management — the alternative trust layer
//! the paper's footnote 1 refers to: "Secure WebCom includes support for
//! SPKI/SDSI. While we use KeyNote in this paper, our results are
//! applicable to SPKI/SDSI."
//!
//! * [`sexp`] — the s-expression syntax;
//! * [`tag`] — authorisation tags with `(*)` / `(* set ...)` /
//!   `(* prefix ...)` intersection algebra;
//! * [`cert`] — SDSI name certs and SPKI auth certs, with simulated-PKI
//!   signatures;
//! * [`reduction`] — name resolution over linked local namespaces and
//!   authorisation-chain discovery (tuple reduction) with proofs;
//! * [`rbac`] — the extended-RBAC encoding mirroring the KeyNote one
//!   (role = SDSI local name, membership = name cert, grant = ACL
//!   entry, Figure 7 delegation = auth cert).

pub mod cert;
pub mod rbac;
pub mod reduction;
pub mod sexp;
pub mod tag;

pub use cert::{AuthCert, Cert, CertError, NameCert, SignatureCheck, Subject};
pub use rbac::{delegate_role_spki, encode_rbac, role_name, user_key, SpkiPolicy};
pub use reduction::{authorize, is_authorized, AclEntry, CertStore, Proof, ProofStep};
pub use sexp::{parse, Sexp, SexpError};
pub use tag::{Tag, TagError};
