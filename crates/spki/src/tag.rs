//! SPKI authorisation tags and their intersection algebra (RFC 2693 §6).
//!
//! A tag is an s-expression describing a set of permitted requests. The
//! special forms are:
//!
//! * `(*)` — the set of all requests;
//! * `(* set e1 e2 ...)` — union of alternatives;
//! * `(* prefix p)` — all atoms with prefix `p`;
//! * plain atoms/lists — themselves (lists intersect element-wise, with
//!   a shorter list being a *prefix pattern* of a longer one).
//!
//! Delegation chains intersect tags; a request is authorised when the
//! chain's tag intersection *covers* the request s-expression.

use crate::sexp::Sexp;
use std::fmt;

/// An authorisation tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tag(pub Sexp);

/// Errors converting s-expressions into tags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagError(pub String);

impl fmt::Display for TagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed tag: {}", self.0)
    }
}

impl std::error::Error for TagError {}

impl Tag {
    /// The all-permissions tag `(*)`.
    pub fn all() -> Tag {
        Tag(Sexp::list([Sexp::atom("*")]))
    }

    /// Wraps an s-expression as a tag.
    pub fn new(body: Sexp) -> Tag {
        Tag(body)
    }

    /// Parses from `(tag <body>)` or a bare body.
    pub fn from_sexp(e: &Sexp) -> Result<Tag, TagError> {
        match e.tagged() {
            Some(("tag", rest)) => {
                if rest.len() != 1 {
                    return Err(TagError(format!("tag needs one body, got {}", rest.len())));
                }
                Ok(Tag(rest[0].clone()))
            }
            _ => Ok(Tag(e.clone())),
        }
    }

    /// Renders as `(tag <body>)`.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::list([Sexp::atom("tag"), self.0.clone()])
    }

    /// Intersection; `None` when the sets are disjoint.
    pub fn intersect(&self, other: &Tag) -> Option<Tag> {
        intersect(&self.0, &other.0).map(Tag)
    }

    /// True when this tag's set includes the concrete `request`.
    pub fn covers(&self, request: &Sexp) -> bool {
        covers(&self.0, request)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sexp())
    }
}

/// Is the expression the `(*)` wildcard?
fn is_star(e: &Sexp) -> bool {
    matches!(e.tagged(), Some(("*", rest)) if rest.is_empty())
}

/// Splits `(* set ...)` / `(* prefix p)` forms.
fn star_form(e: &Sexp) -> Option<(&str, &[Sexp])> {
    let items = e.as_list()?;
    if items.first()?.as_atom()? != "*" {
        return None;
    }
    let kind = items.get(1)?.as_atom()?;
    Some((kind, &items[2..]))
}

fn intersect(a: &Sexp, b: &Sexp) -> Option<Sexp> {
    if is_star(a) {
        return Some(b.clone());
    }
    if is_star(b) {
        return Some(a.clone());
    }
    // (* set ...) on either side: pairwise, keep non-empty results.
    if let Some(("set", alts)) = star_form(a) {
        let survivors: Vec<Sexp> = alts.iter().filter_map(|alt| intersect(alt, b)).collect();
        return set_of(survivors);
    }
    if let Some(("set", alts)) = star_form(b) {
        let survivors: Vec<Sexp> = alts.iter().filter_map(|alt| intersect(a, alt)).collect();
        return set_of(survivors);
    }
    // (* prefix p)
    if let Some(("prefix", args)) = star_form(a) {
        return intersect_prefix(args, b);
    }
    if let Some(("prefix", args)) = star_form(b) {
        return intersect_prefix(args, a);
    }
    match (a, b) {
        (Sexp::Atom(x), Sexp::Atom(y)) => (x == y).then(|| a.clone()),
        (Sexp::List(xs), Sexp::List(ys)) => {
            // Element-wise; the shorter list is a prefix pattern.
            let common = xs.len().min(ys.len());
            let mut out = Vec::with_capacity(xs.len().max(ys.len()));
            for i in 0..common {
                out.push(intersect(&xs[i], &ys[i])?);
            }
            out.extend_from_slice(if xs.len() > common { &xs[common..] } else { &ys[common..] });
            Some(Sexp::List(out))
        }
        _ => None,
    }
}

fn intersect_prefix(args: &[Sexp], other: &Sexp) -> Option<Sexp> {
    let p = args.first()?.as_atom()?;
    match other {
        Sexp::Atom(s) if s.starts_with(p) => Some(other.clone()),
        _ => {
            // prefix ∩ prefix: the longer prefix wins if compatible.
            if let Some(("prefix", other_args)) = star_form(other) {
                let q = other_args.first()?.as_atom()?;
                if q.starts_with(p) {
                    return Some(other.clone());
                }
                if p.starts_with(q) {
                    return Some(crate::sexp::tagged_list(
                        "*",
                        [Sexp::atom("prefix"), Sexp::atom(p)],
                    ));
                }
            }
            None
        }
    }
}

fn set_of(mut survivors: Vec<Sexp>) -> Option<Sexp> {
    match survivors.len() {
        0 => None,
        1 => Some(survivors.pop().unwrap()),
        _ => {
            let mut items = vec![Sexp::atom("*"), Sexp::atom("set")];
            items.extend(survivors);
            Some(Sexp::List(items))
        }
    }
}

/// Does pattern `pat` include the concrete expression `req`?
fn covers(pat: &Sexp, req: &Sexp) -> bool {
    if is_star(pat) {
        return true;
    }
    if let Some(("set", alts)) = star_form(pat) {
        return alts.iter().any(|alt| covers(alt, req));
    }
    if let Some(("prefix", args)) = star_form(pat) {
        return match (args.first().and_then(Sexp::as_atom), req.as_atom()) {
            (Some(p), Some(s)) => s.starts_with(p),
            _ => false,
        };
    }
    match (pat, req) {
        (Sexp::Atom(x), Sexp::Atom(y)) => x == y,
        (Sexp::List(ps), Sexp::List(rs)) => {
            // A pattern list covers a request list with at least as many
            // elements whose prefix matches element-wise (RFC 2693 §6.3).
            ps.len() <= rs.len() && ps.iter().zip(rs).all(|(p, r)| covers(p, r))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sexp::parse;

    fn tag(src: &str) -> Tag {
        Tag::from_sexp(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn star_covers_everything() {
        let t = Tag::all();
        assert!(t.covers(&parse("(anything at all)").unwrap()));
        assert!(t.covers(&parse("atom").unwrap()));
    }

    #[test]
    fn set_tags() {
        let t = tag("(* set read write)");
        assert!(t.covers(&parse("read").unwrap()));
        assert!(t.covers(&parse("write").unwrap()));
        assert!(!t.covers(&parse("delete").unwrap()));
    }

    #[test]
    fn prefix_tags() {
        let t = tag("(* prefix ftp://example/)");
        assert!(t.covers(&parse("\"ftp://example/pub\"").unwrap()));
        assert!(!t.covers(&parse("\"http://example/\"").unwrap()));
    }

    #[test]
    fn list_prefix_pattern_covers_longer_requests() {
        let t = tag("(salaries read)");
        assert!(t.covers(&parse("(salaries read)").unwrap()));
        assert!(t.covers(&parse("(salaries read extra-arg)").unwrap()));
        assert!(!t.covers(&parse("(salaries write)").unwrap()));
        assert!(!t.covers(&parse("(salaries)").unwrap()));
    }

    #[test]
    fn intersection_with_star() {
        let a = Tag::all();
        let b = tag("(salaries read)");
        assert_eq!(a.intersect(&b), Some(b.clone()));
        assert_eq!(b.intersect(&a), Some(b));
    }

    #[test]
    fn intersection_of_sets() {
        let a = tag("(* set read write audit)");
        let b = tag("(* set write delete)");
        let i = a.intersect(&b).unwrap();
        assert!(i.covers(&parse("write").unwrap()));
        assert!(!i.covers(&parse("read").unwrap()));
        assert!(!i.covers(&parse("delete").unwrap()));
        let c = tag("(* set delete)");
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn intersection_of_lists_elementwise() {
        let a = tag("(salaries (* set read write))");
        let b = tag("(salaries read)");
        let i = a.intersect(&b).unwrap();
        assert!(i.covers(&parse("(salaries read)").unwrap()));
        assert!(!i.covers(&parse("(salaries write)").unwrap()));
    }

    #[test]
    fn shorter_list_is_prefix_pattern_in_intersection() {
        let a = tag("(salaries)");
        let b = tag("(salaries read row-7)");
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.0, parse("(salaries read row-7)").unwrap());
    }

    #[test]
    fn prefix_intersections() {
        let a = tag("(* prefix ab)");
        let b = tag("(* prefix abc)");
        let i = a.intersect(&b).unwrap();
        assert!(i.covers(&parse("abcd").unwrap()));
        assert!(!i.covers(&parse("abz").unwrap()));
        let c = tag("(* prefix xy)");
        assert_eq!(a.intersect(&c), None);
        // prefix ∩ atom
        let d = tag("abcde");
        assert_eq!(a.intersect(&d).unwrap().0, parse("abcde").unwrap());
    }

    #[test]
    fn disjoint_atoms() {
        assert_eq!(tag("read").intersect(&tag("write")), None);
        assert_eq!(
            tag("read").intersect(&tag("read")).unwrap().0,
            parse("read").unwrap()
        );
    }

    #[test]
    fn from_sexp_forms() {
        let wrapped = Tag::from_sexp(&parse("(tag (salaries read))").unwrap()).unwrap();
        let bare = Tag::from_sexp(&parse("(salaries read)").unwrap()).unwrap();
        assert_eq!(wrapped, bare);
        assert!(Tag::from_sexp(&parse("(tag a b)").unwrap()).is_err());
    }

    #[test]
    fn display_includes_tag_wrapper() {
        assert_eq!(tag("read").to_string(), "(tag read)");
    }
}
