//! The `hetsec` command-line tool: policy translation from the shell.
//!
//! Subcommands (each reads/writes the serde_json form of
//! [`hetsec_rbac::RbacPolicy`] or KeyNote assertion text):
//!
//! * `encode <policy.json>` — RBAC → KeyNote credentials (Figures 5-6);
//! * `decode <credentials.kn>` — KeyNote → RBAC (JSON on stdout);
//! * `check <policy.json> <user> <domain> <role> <object> <permission>`
//!   — answer one authorisation query through the KeyNote back-end;
//! * `migrate <policy.json> <from-domain> <to-domain> [from-kind to-kind]`
//!   — domain remap + kind-level permission interpretation;
//! * `spki-encode <policy.json>` — RBAC → SPKI/SDSI certificates;
//! * `example-policy` — print the paper's Figure 1 policy as JSON.
//!
//! The dispatch logic lives here (library) so it is unit-testable; the
//! binary in `main.rs` is a thin wrapper.

use hetsec_keynote::parser::parse_assertions;
use hetsec_keynote::print::print_assertion;
use hetsec_keynote::session::KeyNoteSession;
use hetsec_middleware::MiddlewareKind;
use hetsec_rbac::fixtures::salaries_policy;
use hetsec_rbac::RbacPolicy;
use hetsec_translate::{
    decode_policy, encode_policy, transform_policy, MigrationSpec, SymbolicDirectory, APP_DOMAIN,
};

/// The WebCom administration key used by the CLI.
pub const CLI_WEBCOM_KEY: &str = "KWebCom";

/// CLI errors, printable to stderr.
#[derive(Debug)]
pub enum CliError {
    /// Usage problem.
    Usage(String),
    /// IO problem.
    Io(std::io::Error),
    /// JSON problem.
    Json(serde_json::Error),
    /// KeyNote parse problem.
    KeyNote(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
            CliError::KeyNote(e) => write!(f, "keynote error: {e}"),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}

fn read_policy(path: &str) -> Result<RbacPolicy, CliError> {
    let text = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

fn parse_kind(s: &str) -> Result<MiddlewareKind, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "com" | "com+" | "complus" => Ok(MiddlewareKind::ComPlus),
        "ejb" => Ok(MiddlewareKind::Ejb),
        "corba" => Ok(MiddlewareKind::Corba),
        other => Err(CliError::Usage(format!(
            "unknown middleware kind `{other}` (use com|ejb|corba)"
        ))),
    }
}

/// Runs one CLI invocation; returns the text to print on stdout.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let usage = "hetsec <encode|decode|check|migrate|spki-encode|example-policy> ...";
    let cmd = args.first().ok_or_else(|| CliError::Usage(usage.into()))?;
    match cmd.as_str() {
        "example-policy" => Ok(serde_json::to_string_pretty(&salaries_policy())?),
        "encode" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("hetsec encode <policy.json>".into()))?;
            let policy = read_policy(path)?;
            let dir = SymbolicDirectory::default();
            let out: Vec<String> = encode_policy(&policy, CLI_WEBCOM_KEY, &dir)
                .iter()
                .map(print_assertion)
                .collect();
            Ok(out.join("\n"))
        }
        "decode" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("hetsec decode <credentials.kn>".into()))?;
            let text = std::fs::read_to_string(path)?;
            let assertions =
                parse_assertions(&text).map_err(|e| CliError::KeyNote(e.to_string()))?;
            let dir = SymbolicDirectory::default();
            let report = decode_policy(&assertions, CLI_WEBCOM_KEY, &dir);
            let mut out = serde_json::to_string_pretty(&report.policy)?;
            for skip in &report.skipped {
                out.push_str(&format!("\n// skipped: {skip}"));
            }
            Ok(out)
        }
        "check" => {
            let [path, user, domain, role, object, permission] = args.get(1..7).and_then(
                |s| <&[String; 6]>::try_from(s).ok(),
            ).ok_or_else(|| {
                CliError::Usage(
                    "hetsec check <policy.json> <user> <domain> <role> <object> <permission>"
                        .into(),
                )
            })?
            .clone();
            let policy = read_policy(&path)?;
            let dir = SymbolicDirectory::default();
            let mut session = KeyNoteSession::permissive();
            for a in encode_policy(&policy, CLI_WEBCOM_KEY, &dir) {
                session
                    .add_policy_assertion(a)
                    .map_err(|e| CliError::KeyNote(e.to_string()))?;
            }
            let attrs = [
                ("app_domain", APP_DOMAIN),
                ("Domain", domain.as_str()),
                ("Role", role.as_str()),
                ("ObjectType", object.as_str()),
                ("Permission", permission.as_str()),
            ]
            .into_iter()
            .collect();
            let key = format!("K{}", user.to_lowercase());
            let result = session.query_action(&[key.as_str()], &attrs);
            Ok(format!(
                "{}: {user} as {domain}/{role} requesting {permission} on {object}",
                result.value_name
            ))
        }
        "migrate" => {
            let (path, from_d, to_d) = match (args.get(1), args.get(2), args.get(3)) {
                (Some(p), Some(f), Some(t)) => (p, f, t),
                _ => {
                    return Err(CliError::Usage(
                        "hetsec migrate <policy.json> <from-domain> <to-domain> [from-kind to-kind]"
                            .into(),
                    ))
                }
            };
            let from_kind = args.get(4).map(|s| parse_kind(s)).transpose()?.unwrap_or(MiddlewareKind::Ejb);
            let to_kind = args.get(5).map(|s| parse_kind(s)).transpose()?.unwrap_or(MiddlewareKind::Ejb);
            let policy = read_policy(path)?;
            let spec = MigrationSpec::domain(from_d.clone(), to_d.clone());
            let (out, renames) = transform_policy(&policy, from_kind, to_kind, &spec);
            let mut text = serde_json::to_string_pretty(&out)?;
            for (f, t, score) in renames {
                text.push_str(&format!("\n// renamed {f} -> {t} (score {score:.2})"));
            }
            Ok(text)
        }
        "spki-encode" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("hetsec spki-encode <policy.json>".into()))?;
            let policy = read_policy(path)?;
            let spki = hetsec_spki::encode_rbac(&policy, "Kwebcom");
            let mut out = String::new();
            for entry in &spki.acl {
                out.push_str(&format!(
                    "(acl-entry (subject {}) (propagate) {})\n",
                    entry.subject, entry.tag
                ));
            }
            for cert in &spki.store.names {
                out.push_str(&format!("{}\n", cert.to_sexp()));
            }
            Ok(out)
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`; {usage}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn with_fixture_file<R>(f: impl FnOnce(&str) -> R) -> R {
        let dir = std::env::temp_dir().join(format!("hetsec-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.json");
        std::fs::write(&path, serde_json::to_string(&salaries_policy()).unwrap()).unwrap();
        f(path.to_str().unwrap())
    }

    #[test]
    fn example_policy_prints_json() {
        let out = run(&args(&["example-policy"])).unwrap();
        let parsed: RbacPolicy = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed, salaries_policy());
    }

    #[test]
    fn encode_emits_keynote_text() {
        with_fixture_file(|path| {
            let out = run(&args(&["encode", path])).unwrap();
            assert!(out.contains("Authorizer: POLICY"));
            assert!(out.contains("Kclaire"));
            // The output parses back.
            let assertions = parse_assertions(&out).unwrap();
            assert_eq!(assertions.len(), 6); // fig5 + 5 memberships
        })
    }

    #[test]
    fn encode_decode_roundtrip_via_files() {
        with_fixture_file(|path| {
            let encoded = run(&args(&["encode", path])).unwrap();
            let kn_path = std::path::Path::new(path).with_extension("kn");
            std::fs::write(&kn_path, &encoded).unwrap();
            let decoded = run(&args(&["decode", kn_path.to_str().unwrap()])).unwrap();
            let policy: RbacPolicy =
                serde_json::from_str(decoded.split("\n//").next().unwrap()).unwrap();
            assert_eq!(policy, salaries_policy());
        })
    }

    #[test]
    fn check_answers_queries() {
        with_fixture_file(|path| {
            let out = run(&args(&[
                "check", path, "Claire", "Sales", "Manager", "SalariesDB", "read",
            ]))
            .unwrap();
            assert!(out.starts_with("_MAX_TRUST"));
            let out = run(&args(&[
                "check", path, "Claire", "Sales", "Manager", "SalariesDB", "write",
            ]))
            .unwrap();
            assert!(out.starts_with("_MIN_TRUST"));
        })
    }

    #[test]
    fn migrate_remaps_domains_and_interprets_permissions() {
        with_fixture_file(|path| {
            let out = run(&args(&["migrate", path, "Finance", "h/s/j", "com", "ejb"])).unwrap();
            let policy: RbacPolicy =
                serde_json::from_str(out.split("\n//").next().unwrap()).unwrap();
            assert!(policy.domains().iter().any(|d| d.as_str() == "h/s/j"));
            assert!(policy.domains().iter().all(|d| d.as_str() != "Finance"));
        })
    }

    #[test]
    fn spki_encode_emits_certs() {
        with_fixture_file(|path| {
            let out = run(&args(&["spki-encode", path])).unwrap();
            assert!(out.contains("(acl-entry"));
            assert!(out.contains("(cert (issuer (name Kwebcom"));
        })
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["bogus"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["encode"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["check", "x"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["migrate", "p", "a", "b", "nope"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["encode", "/no/such/file.json"])),
            Err(CliError::Io(_))
        ));
    }
}
