//! The `hetsec` command-line tool: policy translation from the shell.
//!
//! Subcommands (each reads/writes the serde_json form of
//! [`hetsec_rbac::RbacPolicy`] or KeyNote assertion text):
//!
//! * `encode <policy.json>` — RBAC → KeyNote credentials (Figures 5-6);
//! * `decode <credentials.kn>` — KeyNote → RBAC (JSON on stdout);
//! * `check <policy.json> <user> <domain> <role> <object> <permission>`
//!   — answer one authorisation query through the KeyNote back-end;
//! * `migrate <policy.json> <from-domain> <to-domain> [from-kind to-kind]`
//!   — domain remap + kind-level permission interpretation;
//! * `lint <store.kn> [--rbac <policy.json>] [--format text|json]
//!   [--now <num>] [--revoked <key>]... [--incremental-check]` — static
//!   analysis of a credential store: delegation-graph reachability,
//!   escalation vs the RBAC policy, condition lints, credential hygiene
//!   (`HS0xx` codes); `--incremental-check` additionally replays the
//!   store through the incremental engine and fails if its report ever
//!   diverges from the cold analysis;
//! * `diff <old.kn> <new.kn> [--format text|json] [--now <num>]
//!   [--revoked <key>]...` — semantic verdict diff between two stores:
//!   evaluates both compliance fixpoints and reports every request
//!   whose verdict flips, as grant-widening errors (`HS015`) or
//!   grant-narrowing warnings (`HS016`) with concrete witnesses;
//! * `spki-encode <policy.json>` — RBAC → SPKI/SDSI certificates;
//! * `example-policy` — print the paper's Figure 1 policy as JSON;
//! * `serve <addr> [name] [key] [ops] [--shards N] [--pipeline P]` —
//!   run a WebCom client serving the scheduling protocol over TCP (the
//!   right side of Figure 3); with `--shards N > 1`, a whole sharded
//!   fabric in one process: N pipelined serving clients, N masters on a
//!   consistent-hash ring linked over real TCP `Forward` frames, and a
//!   demo burst driven through shard 0 so cross-shard ops forward;
//! * `connect <addr> [n] [client-key]` — run a WebCom master that
//!   dials a serving client and schedules `n` operations to it,
//!   reporting dispatch counters and the dispatch-latency histogram;
//! * `loadgen [--principals N] [--ops N] [--shards N] [--lockstep]
//!   [--window W] [--callers C] [--pipeline P] [--service-us U]
//!   [--zipf E] [--open RATE] [--seed S] [--json]` — the closed-loop
//!   load harness: builds an in-process sharded fabric and drives a
//!   Zipf-distributed synthetic-principal workload through it.
//!
//! `serve` and `connect` make the master/client fabric runnable as two
//! OS processes (see the README quick-start); `loadgen` is the
//! single-process load harness behind `BENCH_load.json`; everything
//! else is single-process policy tooling.
//!
//! The dispatch logic lives here (library) so it is unit-testable; the
//! binary in `main.rs` is a thin wrapper.

use hetsec_keynote::parser::parse_assertions;
use hetsec_keynote::print::print_assertion;
use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
use hetsec_middleware::MiddlewareKind;
use hetsec_rbac::fixtures::salaries_policy;
use hetsec_rbac::RbacPolicy;
use hetsec_translate::{
    decode_policy, encode_policy, transform_policy, MigrationSpec, SymbolicDirectory, APP_DOMAIN,
};

/// The WebCom administration key used by the CLI.
pub const CLI_WEBCOM_KEY: &str = "KWebCom";

/// CLI errors, printable to stderr.
#[derive(Debug)]
pub enum CliError {
    /// Usage problem.
    Usage(String),
    /// IO problem.
    Io(std::io::Error),
    /// JSON problem.
    Json(serde_json::Error),
    /// KeyNote parse problem.
    KeyNote(String),
    /// Scheduling-fabric problem (bad address, unreachable peer).
    Net(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
            CliError::KeyNote(e) => write!(f, "keynote error: {e}"),
            CliError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}

fn read_policy(path: &str) -> Result<RbacPolicy, CliError> {
    let text = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

/// Proves the incremental analyzer agrees with a cold run on this
/// store: replays the store assertion-by-assertion (plus one
/// modify-and-revert round trip on the first assertion) and compares
/// the final incremental report byte-for-byte against a cold analysis.
fn incremental_equivalence_check(
    text: &str,
    opts: &hetsec_analyze::AnalysisOptions,
) -> Result<(), CliError> {
    use hetsec_analyze::StoreEdit;
    let assertions = parse_assertions(text).map_err(|e| CliError::KeyNote(e.to_string()))?;
    let dir = SymbolicDirectory::default();
    let cold = hetsec_analyze::analyze(&assertions, opts).to_json();

    // Grow the store edit by edit, then exercise Modify and a
    // Remove/re-Add round trip so every cache path runs at least once.
    // The round trip targets the last assertion, so the final store
    // order matches the input and the reports are directly comparable.
    let mut edits: Vec<StoreEdit> = assertions.iter().cloned().map(StoreEdit::Add).collect();
    if let Some(first) = assertions.first() {
        edits.push(StoreEdit::Modify(0, first.clone()));
    }
    if let Some(last) = assertions.last() {
        edits.push(StoreEdit::Remove(assertions.len() - 1));
        edits.push(StoreEdit::Add(last.clone()));
    }
    let (report, replayed) = hetsec_analyze::incremental::replay(Vec::new(), edits, opts, &dir);
    debug_assert_eq!(replayed.len(), assertions.len());
    if report.to_json() != cold {
        return Err(CliError::KeyNote(
            "incremental-check failed: incremental report diverges from cold analysis".into(),
        ));
    }
    Ok(())
}

fn parse_kind(s: &str) -> Result<MiddlewareKind, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "com" | "com+" | "complus" => Ok(MiddlewareKind::ComPlus),
        "ejb" => Ok(MiddlewareKind::Ejb),
        "corba" => Ok(MiddlewareKind::Corba),
        other => Err(CliError::Usage(format!(
            "unknown middleware kind `{other}` (use com|ejb|corba)"
        ))),
    }
}

/// The master key used by the `serve`/`connect` demo fabric. A serving
/// client only accepts schedules from this key; a connecting master
/// presents it.
pub const CLI_MASTER_KEY: &str = "Kmaster";

/// The executing-user key the demo fabric schedules under.
pub const CLI_WORKER_KEY: &str = "Kworker";

fn demo_trust(licensee: &str) -> std::sync::Arc<hetsec_webcom::TrustManager> {
    let tm = hetsec_webcom::TrustManager::permissive();
    tm.add_policy(&format!(
        "Authorizer: POLICY\nLicensees: \"{licensee}\"\nConditions: app_domain==\"WebCom\";\n"
    ))
    .expect("demo policy parses");
    std::sync::Arc::new(tm)
}

/// The client engine `serve` runs: trusts [`CLI_MASTER_KEY`] as master,
/// mediates [`CLI_WORKER_KEY`] through a one-layer trust stack, and
/// executes the built-in arithmetic components. Public so integration
/// tests can serve the same engine in-process.
pub fn demo_client_engine(name: &str, key: &str) -> std::sync::Arc<hetsec_webcom::ClientEngine> {
    use hetsec_webcom::stack::TrustLayer;
    let mut stack = hetsec_webcom::AuthzStack::new();
    stack.push(std::sync::Arc::new(TrustLayer::new(demo_trust(CLI_WORKER_KEY))));
    std::sync::Arc::new(hetsec_webcom::ClientEngine::new(hetsec_webcom::ClientConfig {
        name: name.to_string(),
        key_text: key.to_string(),
        master_trust: demo_trust(CLI_MASTER_KEY),
        stack: std::sync::Arc::new(stack),
        executor: std::sync::Arc::new(hetsec_webcom::ArithComponentExecutor),
    }))
}

/// `hetsec serve`: serves the scheduling protocol on `addr` until `ops`
/// operations have been answered (forever when `ops` is `None`). The
/// bound address is printed immediately so a master in another process
/// can be pointed at it.
pub fn serve_command(
    addr: &str,
    name: &str,
    key: &str,
    ops: Option<usize>,
) -> Result<String, CliError> {
    let server = hetsec_webcom::serve_tcp(demo_client_engine(name, key), vec!["Dom".into()], addr)
        .map_err(|e| CliError::Net(format!("bind {addr}: {e}")))?;
    println!("serving client `{name}` (key {key}, domain Dom) on {}", server.local_addr());
    match ops {
        Some(limit) => {
            while server.served() < limit {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            let served = server.served();
            let stats = server.engine().stats();
            server.stop();
            Ok(format!(
                "served {served} operations (executed {}, master_rejected {}, stack_denied {}, failed {}, replayed {})",
                stats.executed, stats.master_rejected, stats.stack_denied, stats.failed,
                stats.replayed
            ))
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
}

/// `hetsec connect`: dials a serving client at `addr`, registers it via
/// the Identify handshake, and schedules `n` additions to it.
pub fn connect_command(addr: &str, n: usize, client_key: &str) -> Result<String, CliError> {
    use hetsec_graphs::Value;
    use hetsec_middleware::component::ComponentRef;
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| CliError::Net(format!("bad address `{addr}`: {e}")))?;
    let master = hetsec_webcom::WebComMaster::new(CLI_MASTER_KEY, demo_trust(client_key))
        .with_op_timeout(std::time::Duration::from_secs(5));
    let name = master
        .register_tcp(addr)
        .map_err(|e| CliError::Net(e.to_string()))?;
    master.bind(
        "add",
        hetsec_webcom::Binding {
            component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            domain: "Dom".into(),
            role: "Worker".into(),
            user: "worker".into(),
            principal: CLI_WORKER_KEY.to_string(),
        },
    );
    let mut ok = 0usize;
    for i in 0..n {
        let out = master.schedule_primitive("add", vec![Value::Int(i as i64), Value::Int(1)]);
        match out {
            hetsec_webcom::ExecOutcome::Ok(_) => ok += 1,
            other => return Err(CliError::Net(format!("op {i} failed: {other:?}"))),
        }
    }
    let stats = master.stats();
    let health = master
        .client_health()
        .into_iter()
        .map(|h| format!("{}={}", h.client, h.state))
        .collect::<Vec<_>>()
        .join(", ");
    Ok(format!(
        "scheduled {ok}/{n} operations to `{name}` at {addr} \
         (retries {}, timeouts {}, failovers {}, rescheduled {}, \
         exhausted {}, shed {}, replayed {}, breaker trips {}; health: {health})\n\
         dispatch latency: {}",
        stats.retries,
        stats.timeouts,
        stats.failovers,
        stats.rescheduled,
        stats.exhausted,
        stats.shed,
        stats.replayed,
        stats.breaker_trips,
        stats.dispatch_latency.summary()
    ))
}

/// `hetsec serve --shards N`: a whole sharded fabric in one process —
/// N pipelined serving clients, N masters on a shared consistent-hash
/// ring linked over real TCP `Forward` frames — plus a demo burst of
/// `ops` additions under rotating principals driven through shard 0's
/// master, so every op owned by another shard crosses a real socket.
pub fn sharded_serve_command(
    addr: &str,
    name: &str,
    key: &str,
    shards: usize,
    ops: usize,
    pipeline: usize,
) -> Result<String, CliError> {
    use hetsec_crypto::KeyPair;
    use hetsec_graphs::Value;
    use hetsec_middleware::component::ComponentRef;
    use hetsec_webcom::stack::TrustLayer;
    use hetsec_webcom::{
        serve_master, PeerLink, ServeOptions, ShardInfo, ShardRing, ShardRouter, StampIssuer,
        StampVerifier, TcpPeerLink,
    };
    use std::collections::HashMap;
    use std::sync::Arc;
    if shards < 2 {
        return Err(CliError::Usage("--shards needs at least 2".into()));
    }
    // Rotating demo principals: enough distinct keys that every shard
    // owns some of them. They are authorised through *signed* RSA
    // delegations (one per principal, signed by the demo delegator key
    // that POLICY licenses) so the verdict-stamp machinery has real
    // signature verdicts to amortise across the fleet.
    let users: Vec<String> = (0..4 * shards).map(|u| format!("Kuser{u}")).collect();
    let delegator = KeyPair::from_label("hetsec-demo-delegator");
    let delegator_key = delegator.public().to_text();
    let delegations: Vec<hetsec_keynote::Assertion> = users
        .iter()
        .map(|u| {
            let mut a = hetsec_keynote::Assertion::new(
                hetsec_keynote::Principal::key(delegator_key.clone()),
                hetsec_keynote::LicenseeExpr::Principal(u.clone()),
            );
            hetsec_keynote::sign_assertion(&mut a, &delegator).expect("demo delegation signs");
            a
        })
        .collect();
    let user_policy = format!(
        "Authorizer: POLICY\nLicensees: \"{delegator_key}\"\nConditions: app_domain==\"WebCom\";\n"
    );
    // One stamp-signing identity per master; every node's fleet trust
    // set lists all of them.
    let stamp_issuers: Vec<Arc<StampIssuer>> = (0..shards)
        .map(|s| Arc::new(StampIssuer::new(KeyPair::from_label(&format!("hetsec-stamp-{s}")))))
        .collect();
    let fleet_verifier = |cache| {
        let mut v = StampVerifier::new(cache);
        for issuer in &stamp_issuers {
            v = v.trust_issuer(issuer.key_text());
        }
        Arc::new(v)
    };
    let client_keys: Vec<String> = (0..shards).map(|s| format!("{key}{s}")).collect();
    let client_trust = hetsec_webcom::TrustManager::permissive();
    for k in &client_keys {
        client_trust
            .add_policy(&format!(
                "Authorizer: POLICY\nLicensees: \"{k}\"\nConditions: app_domain==\"WebCom\";\n"
            ))
            .expect("demo policy parses");
    }
    let client_trust = std::sync::Arc::new(client_trust);
    let mut report = String::new();
    let mut servers = Vec::new();
    let mut masters = Vec::new();
    for (s, client_key) in client_keys.iter().enumerate() {
        // Each client vets the signed delegations through its own
        // strict trust manager; its stamp verifier shares that
        // manager's verify cache, so admitted stamp verdicts answer
        // the per-credential checks without local RSA.
        let user_trust = Arc::new(hetsec_webcom::TrustManager::strict());
        user_trust.add_policy(&user_policy).expect("demo policy parses");
        let mut stack = hetsec_webcom::AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(Arc::clone(&user_trust))));
        let engine = Arc::new(
            hetsec_webcom::ClientEngine::new(hetsec_webcom::ClientConfig {
                name: format!("{name}{s}"),
                key_text: client_key.clone(),
                master_trust: demo_trust(CLI_MASTER_KEY),
                stack: Arc::new(stack),
                executor: Arc::new(hetsec_webcom::ArithComponentExecutor),
            })
            .with_stamp_verifier(fleet_verifier(user_trust.verify_cache())),
        );
        // The given address binds shard 0; the rest take ephemeral
        // ports (a fixed port cannot be bound N times).
        let bind = if s == 0 { addr } else { "127.0.0.1:0" };
        let server = hetsec_webcom::serve_tcp_with(
            engine,
            vec!["Dom".into()],
            bind,
            ServeOptions { pipeline },
        )
        .map_err(|e| CliError::Net(format!("bind {bind}: {e}")))?;
        let master = hetsec_webcom::WebComMaster::new(CLI_MASTER_KEY, Arc::clone(&client_trust))
            .with_op_timeout(std::time::Duration::from_secs(5))
            .with_burst_parallelism(4)
            .with_stamp_issuer(Arc::clone(&stamp_issuers[s]))
            .with_stamp_verifier(fleet_verifier(client_trust.verify_cache()));
        for d in &delegations {
            master.forward_credential(d.clone());
        }
        master
            .register_tcp(server.local_addr())
            .map_err(|e| CliError::Net(e.to_string()))?;
        servers.push(server);
        masters.push(Arc::new(master));
    }
    // Expose each master's Forward endpoint and interlink the fleet.
    let mut master_servers = Vec::new();
    for m in &masters {
        master_servers.push(
            serve_master(Arc::clone(m), "127.0.0.1:0")
                .map_err(|e| CliError::Net(format!("bind master endpoint: {e}")))?,
        );
    }
    let ring = Arc::new(ShardRing::new(shards));
    for (i, m) in masters.iter().enumerate() {
        let peers: HashMap<usize, Arc<dyn PeerLink>> = (0..shards)
            .filter(|&j| j != i)
            .map(|j| {
                (
                    j,
                    Arc::new(TcpPeerLink::new(master_servers[j].local_addr()))
                        as Arc<dyn PeerLink>,
                )
            })
            .collect();
        m.set_shard(Arc::new(ShardInfo {
            ring: Arc::clone(&ring),
            shard_id: i,
            peers,
        }));
    }
    for (s, server) in servers.iter().enumerate() {
        report.push_str(&format!(
            "shard {s}: client `{name}{s}` (key {}) on {}, master forward endpoint {}\n",
            client_keys[s],
            server.local_addr(),
            master_servers[s].local_addr()
        ));
    }
    // Drive the demo burst through shard 0 only: ops whose principal
    // hashes elsewhere must forward over the TCP peer links.
    let burst: Vec<hetsec_webcom::BurstOp> = (0..ops)
        .map(|i| hetsec_webcom::BurstOp {
            action: hetsec_webcom::ScheduledAction::new(
                ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
                "Dom",
                "Worker",
            ),
            user: "worker".into(),
            principal: users[i % users.len()].clone(),
            args: vec![Value::Int(i as i64), Value::Int(1)],
        })
        .collect();
    let outcomes = masters[0].schedule_burst(burst);
    let ok = outcomes
        .iter()
        .filter(|o| matches!(o, hetsec_webcom::ExecOutcome::Ok(_)))
        .count();
    let router = ShardRouter::from_parts(ring, masters);
    let stats = router.merged_stats();
    let mut client_stamps = hetsec_webcom::StampStats::default();
    for server in &servers {
        client_stamps.merge(&server.engine().stats().stamps);
    }
    report.push_str(&format!(
        "demo burst via shard 0: {ok}/{ops} ok; forwarded {}, forward_received {}, \
         forward_rejected {}\n\
         verdict stamps: issued {}, clients admitted {} (rejected {}, stale {}), \
         masters admitted {} (rejected {}, stale {})\n\
         dispatch latency: {}",
        stats.forwarded,
        stats.forward_received,
        stats.forward_rejected,
        stats.stamps_issued,
        client_stamps.admitted,
        client_stamps.rejected,
        client_stamps.stale,
        stats.stamps_admitted,
        stats.stamps_rejected,
        stats.stamps_stale,
        stats.dispatch_latency.summary()
    ));
    for ms in master_servers {
        ms.stop();
    }
    for s in servers {
        s.stop();
    }
    if ok != ops {
        return Err(CliError::Net(format!(
            "sharded demo burst dropped ops: {report}"
        )));
    }
    Ok(report)
}

/// `hetsec loadgen`: runs the closed-loop load harness in-process and
/// reports throughput plus the dispatch-latency distribution.
pub fn loadgen_command(cfg: &hetsec_webcom::LoadConfig, json: bool) -> Result<String, CliError> {
    let report = hetsec_webcom::run_load(cfg);
    if json {
        return Ok(serde_json::to_string_pretty(&report)?);
    }
    Ok(format!(
        "loadgen: {}/{} ops ok over {} shard(s), {} transport, {} principals\n\
         throughput: {:.0} ops/s (wall {:.3}s)\n\
         dispatch latency: {}\n\
         forwarded {}, timeouts {}, failovers {}",
        report.completed,
        report.ops,
        report.shards,
        if report.mux { "mux" } else { "lockstep" },
        report.principals,
        report.throughput,
        report.elapsed().as_secs_f64(),
        report.latency.summary(),
        report.forwarded,
        report.timeouts,
        report.failovers
    ))
}

/// Runs one CLI invocation; returns the text to print on stdout.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let usage = "hetsec <encode|decode|check|lint|diff|migrate|spki-encode|example-policy\
                 |serve|connect|loadgen> ...";
    let cmd = args.first().ok_or_else(|| CliError::Usage(usage.into()))?;
    match cmd.as_str() {
        "example-policy" => Ok(serde_json::to_string_pretty(&salaries_policy())?),
        "encode" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("hetsec encode <policy.json>".into()))?;
            let policy = read_policy(path)?;
            let dir = SymbolicDirectory::default();
            let out: Vec<String> = encode_policy(&policy, CLI_WEBCOM_KEY, &dir)
                .iter()
                .map(print_assertion)
                .collect();
            Ok(out.join("\n"))
        }
        "decode" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("hetsec decode <credentials.kn>".into()))?;
            let text = std::fs::read_to_string(path)?;
            let assertions =
                parse_assertions(&text).map_err(|e| CliError::KeyNote(e.to_string()))?;
            let dir = SymbolicDirectory::default();
            let report = decode_policy(&assertions, CLI_WEBCOM_KEY, &dir);
            let mut out = serde_json::to_string_pretty(&report.policy)?;
            for skip in &report.skipped {
                out.push_str(&format!("\n// skipped: {skip}"));
            }
            Ok(out)
        }
        "check" => {
            let [path, user, domain, role, object, permission] = args.get(1..7).and_then(
                |s| <&[String; 6]>::try_from(s).ok(),
            ).ok_or_else(|| {
                CliError::Usage(
                    "hetsec check <policy.json> <user> <domain> <role> <object> <permission>"
                        .into(),
                )
            })?
            .clone();
            let policy = read_policy(&path)?;
            let dir = SymbolicDirectory::default();
            let mut session = KeyNoteSession::permissive();
            for a in encode_policy(&policy, CLI_WEBCOM_KEY, &dir) {
                session
                    .add_policy_assertion(a)
                    .map_err(|e| CliError::KeyNote(e.to_string()))?;
            }
            let attrs = [
                ("app_domain", APP_DOMAIN),
                ("Domain", domain.as_str()),
                ("Role", role.as_str()),
                ("ObjectType", object.as_str()),
                ("Permission", permission.as_str()),
            ]
            .into_iter()
            .collect();
            let key = format!("K{}", user.to_lowercase());
            let result = session.evaluate(&ActionQuery::principals(&[key.as_str()]).attributes(&attrs));
            Ok(format!(
                "{}: {user} as {domain}/{role} requesting {permission} on {object}",
                result.value_name
            ))
        }
        "lint" => {
            let lint_usage = "hetsec lint <store.kn> [--rbac <policy.json>] \
                              [--format text|json] [--now <num>] [--revoked <key>]... \
                              [--incremental-check]";
            let path = args
                .get(1)
                .filter(|p| !p.starts_with("--"))
                .ok_or_else(|| CliError::Usage(lint_usage.into()))?;
            let mut opts = hetsec_analyze::AnalysisOptions {
                webcom_key: CLI_WEBCOM_KEY.to_string(),
                ..Default::default()
            };
            // The adapters the CLI ships are WebCom's: their attribute
            // vocabulary is what HS008 checks references against.
            opts.known_attributes
                .extend(hetsec_webcom::ADAPTER_ATTRIBUTES.iter().map(|s| s.to_string()));
            let mut json = false;
            let mut incremental_check = false;
            let mut rest = args[2..].iter();
            while let Some(flag) = rest.next() {
                let mut value = |name: &str| {
                    rest.next()
                        .cloned()
                        .ok_or_else(|| CliError::Usage(format!("{name} needs a value; {lint_usage}")))
                };
                match flag.as_str() {
                    "--rbac" => opts.rbac = Some(read_policy(&value("--rbac")?)?),
                    "--now" => {
                        let v = value("--now")?;
                        opts.now = Some(v.parse::<f64>().map_err(|_| {
                            CliError::Usage(format!("--now must be a number, got `{v}`"))
                        })?);
                    }
                    "--revoked" => {
                        opts.revoked.insert(value("--revoked")?);
                    }
                    "--format" => match value("--format")?.as_str() {
                        "json" => json = true,
                        "text" => json = false,
                        other => {
                            return Err(CliError::Usage(format!(
                                "unknown format `{other}` (use text|json)"
                            )))
                        }
                    },
                    "--incremental-check" => incremental_check = true,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown lint flag `{other}`; {lint_usage}"
                        )))
                    }
                }
            }
            let text = std::fs::read_to_string(path)?;
            if incremental_check {
                incremental_equivalence_check(&text, &opts)?;
            }
            let report = hetsec_analyze::analyze_text(&text, &opts)
                .map_err(|e| CliError::KeyNote(e.to_string()))?;
            Ok(if json {
                report.to_json()
            } else {
                report.to_string()
            })
        }
        "diff" => {
            let diff_usage = "hetsec diff <old.kn> <new.kn> [--format text|json] \
                              [--now <num>] [--revoked <key>]...";
            let (old_path, new_path) = match (args.get(1), args.get(2)) {
                (Some(a), Some(b)) if !a.starts_with("--") && !b.starts_with("--") => (a, b),
                _ => return Err(CliError::Usage(diff_usage.into())),
            };
            let mut opts = hetsec_analyze::AnalysisOptions {
                webcom_key: CLI_WEBCOM_KEY.to_string(),
                ..Default::default()
            };
            opts.known_attributes
                .extend(hetsec_webcom::ADAPTER_ATTRIBUTES.iter().map(|s| s.to_string()));
            let mut json = false;
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                let mut value = |name: &str| {
                    rest.next()
                        .cloned()
                        .ok_or_else(|| CliError::Usage(format!("{name} needs a value; {diff_usage}")))
                };
                match flag.as_str() {
                    "--now" => {
                        let v = value("--now")?;
                        opts.now = Some(v.parse::<f64>().map_err(|_| {
                            CliError::Usage(format!("--now must be a number, got `{v}`"))
                        })?);
                    }
                    "--revoked" => {
                        opts.revoked.insert(value("--revoked")?);
                    }
                    "--format" => match value("--format")?.as_str() {
                        "json" => json = true,
                        "text" => json = false,
                        other => {
                            return Err(CliError::Usage(format!(
                                "unknown format `{other}` (use text|json)"
                            )))
                        }
                    },
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown diff flag `{other}`; {diff_usage}"
                        )))
                    }
                }
            }
            let old_text = std::fs::read_to_string(old_path)?;
            let new_text = std::fs::read_to_string(new_path)?;
            let old = parse_assertions(&old_text).map_err(|e| CliError::KeyNote(e.to_string()))?;
            let new = parse_assertions(&new_text).map_err(|e| CliError::KeyNote(e.to_string()))?;
            let diff = hetsec_analyze::diff_verdicts(&old, &new, &opts);
            Ok(if json {
                diff.report.to_json()
            } else if diff.report.is_clean() {
                "clean: no verdict changes".to_string()
            } else {
                diff.report.to_string()
            })
        }
        "migrate" => {
            let (path, from_d, to_d) = match (args.get(1), args.get(2), args.get(3)) {
                (Some(p), Some(f), Some(t)) => (p, f, t),
                _ => {
                    return Err(CliError::Usage(
                        "hetsec migrate <policy.json> <from-domain> <to-domain> [from-kind to-kind]"
                            .into(),
                    ))
                }
            };
            let from_kind = args.get(4).map(|s| parse_kind(s)).transpose()?.unwrap_or(MiddlewareKind::Ejb);
            let to_kind = args.get(5).map(|s| parse_kind(s)).transpose()?.unwrap_or(MiddlewareKind::Ejb);
            let policy = read_policy(path)?;
            let spec = MigrationSpec::domain(from_d.clone(), to_d.clone());
            let (out, renames) = transform_policy(&policy, from_kind, to_kind, &spec);
            let mut text = serde_json::to_string_pretty(&out)?;
            for (f, t, score) in renames {
                text.push_str(&format!("\n// renamed {f} -> {t} (score {score:.2})"));
            }
            Ok(text)
        }
        "spki-encode" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("hetsec spki-encode <policy.json>".into()))?;
            let policy = read_policy(path)?;
            let spki = hetsec_spki::encode_rbac(&policy, "Kwebcom");
            let mut out = String::new();
            for entry in &spki.acl {
                out.push_str(&format!(
                    "(acl-entry (subject {}) (propagate) {})\n",
                    entry.subject, entry.tag
                ));
            }
            for cert in &spki.store.names {
                out.push_str(&format!("{}\n", cert.to_sexp()));
            }
            Ok(out)
        }
        "serve" => {
            let serve_usage =
                "hetsec serve <addr> [name] [key] [ops] [--shards N] [--pipeline P]";
            let addr = args
                .get(1)
                .ok_or_else(|| CliError::Usage(serve_usage.into()))?;
            // Positionals first, then flags in any order.
            let positional: Vec<&String> =
                args[2..].iter().take_while(|a| !a.starts_with("--")).collect();
            let name = positional.first().map(|s| s.as_str()).unwrap_or("c1");
            let key = positional.get(1).map(|s| s.as_str()).unwrap_or("Kc1");
            let ops = positional
                .get(2)
                .map(|s| {
                    s.parse::<usize>()
                        .map_err(|_| CliError::Usage(format!("ops must be a number, got `{s}`")))
                })
                .transpose()?;
            let mut shards = 1usize;
            let mut pipeline = 4usize;
            let mut i = 2 + positional.len();
            while i < args.len() {
                let flag = args[i].as_str();
                let value = args.get(i + 1).ok_or_else(|| {
                    CliError::Usage(format!("{flag} needs a value; {serve_usage}"))
                })?;
                let parsed = value.parse::<usize>().map_err(|_| {
                    CliError::Usage(format!("{flag} must be a number, got `{value}`"))
                });
                match flag {
                    "--shards" => shards = parsed?,
                    "--pipeline" => pipeline = parsed?,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown serve flag `{other}`; {serve_usage}"
                        )))
                    }
                }
                i += 2;
            }
            if shards > 1 {
                sharded_serve_command(addr, name, key, shards, ops.unwrap_or(16), pipeline)
            } else {
                serve_command(addr, name, key, ops)
            }
        }
        "loadgen" => {
            let loadgen_usage = "hetsec loadgen [--principals N] [--ops N] [--shards N] \
                 [--lockstep] [--window W] [--callers C] [--pipeline P] [--service-us U] \
                 [--zipf E] [--open RATE] [--seed S] [--json]";
            let mut cfg = hetsec_webcom::LoadConfig {
                principals: 10_000,
                ops: 500,
                shards: 2,
                service_time: std::time::Duration::from_micros(500),
                ..hetsec_webcom::LoadConfig::default()
            };
            let mut json = false;
            let mut i = 1usize;
            while i < args.len() {
                let flag = args[i].as_str();
                match flag {
                    "--lockstep" => {
                        cfg.mux = false;
                        i += 1;
                        continue;
                    }
                    "--json" => {
                        json = true;
                        i += 1;
                        continue;
                    }
                    _ => {}
                }
                let value = args.get(i + 1).ok_or_else(|| {
                    CliError::Usage(format!("{flag} needs a value; {loadgen_usage}"))
                })?;
                let num = || {
                    value.parse::<usize>().map_err(|_| {
                        CliError::Usage(format!("{flag} must be a number, got `{value}`"))
                    })
                };
                let float = || {
                    value.parse::<f64>().map_err(|_| {
                        CliError::Usage(format!("{flag} must be a number, got `{value}`"))
                    })
                };
                match flag {
                    "--principals" => cfg.principals = num()?.max(1),
                    "--ops" => cfg.ops = num()?,
                    "--shards" => cfg.shards = num()?.max(1),
                    "--window" => cfg.window = num()?.max(1),
                    "--callers" => cfg.callers = num()?.max(1),
                    "--pipeline" => cfg.pipeline = num()?.max(1),
                    "--service-us" => {
                        cfg.service_time = std::time::Duration::from_micros(num()? as u64)
                    }
                    "--zipf" => cfg.zipf_exponent = float()?,
                    "--open" => {
                        cfg.arrival = hetsec_webcom::Arrival::Open {
                            ops_per_sec: float()?,
                        }
                    }
                    "--seed" => cfg.seed = num()? as u64,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown loadgen flag `{other}`; {loadgen_usage}"
                        )))
                    }
                }
                i += 2;
            }
            loadgen_command(&cfg, json)
        }
        "connect" => {
            let addr = args.get(1).ok_or_else(|| {
                CliError::Usage("hetsec connect <addr> [n] [client-key]".into())
            })?;
            let n = args
                .get(2)
                .map(|s| {
                    s.parse::<usize>()
                        .map_err(|_| CliError::Usage(format!("n must be a number, got `{s}`")))
                })
                .transpose()?
                .unwrap_or(10);
            let client_key = args.get(3).map(String::as_str).unwrap_or("Kc1");
            connect_command(addr, n, client_key)
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`; {usage}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn with_fixture_file<R>(f: impl FnOnce(&str) -> R) -> R {
        let dir = std::env::temp_dir().join(format!("hetsec-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.json");
        std::fs::write(&path, serde_json::to_string(&salaries_policy()).unwrap()).unwrap();
        f(path.to_str().unwrap())
    }

    #[test]
    fn example_policy_prints_json() {
        let out = run(&args(&["example-policy"])).unwrap();
        let parsed: RbacPolicy = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed, salaries_policy());
    }

    #[test]
    fn encode_emits_keynote_text() {
        with_fixture_file(|path| {
            let out = run(&args(&["encode", path])).unwrap();
            assert!(out.contains("Authorizer: POLICY"));
            assert!(out.contains("Kclaire"));
            // The output parses back.
            let assertions = parse_assertions(&out).unwrap();
            assert_eq!(assertions.len(), 6); // fig5 + 5 memberships
        })
    }

    #[test]
    fn encode_decode_roundtrip_via_files() {
        with_fixture_file(|path| {
            let encoded = run(&args(&["encode", path])).unwrap();
            let kn_path = std::path::Path::new(path).with_extension("kn");
            std::fs::write(&kn_path, &encoded).unwrap();
            let decoded = run(&args(&["decode", kn_path.to_str().unwrap()])).unwrap();
            let policy: RbacPolicy =
                serde_json::from_str(decoded.split("\n//").next().unwrap()).unwrap();
            assert_eq!(policy, salaries_policy());
        })
    }

    #[test]
    fn check_answers_queries() {
        with_fixture_file(|path| {
            let out = run(&args(&[
                "check", path, "Claire", "Sales", "Manager", "SalariesDB", "read",
            ]))
            .unwrap();
            assert!(out.starts_with("_MAX_TRUST"));
            let out = run(&args(&[
                "check", path, "Claire", "Sales", "Manager", "SalariesDB", "write",
            ]))
            .unwrap();
            assert!(out.starts_with("_MIN_TRUST"));
        })
    }

    #[test]
    fn migrate_remaps_domains_and_interprets_permissions() {
        with_fixture_file(|path| {
            let out = run(&args(&["migrate", path, "Finance", "h/s/j", "com", "ejb"])).unwrap();
            let policy: RbacPolicy =
                serde_json::from_str(out.split("\n//").next().unwrap()).unwrap();
            assert!(policy.domains().iter().any(|d| d.as_str() == "h/s/j"));
            assert!(policy.domains().iter().all(|d| d.as_str() != "Finance"));
        })
    }

    #[test]
    fn spki_encode_emits_certs() {
        with_fixture_file(|path| {
            let out = run(&args(&["spki-encode", path])).unwrap();
            assert!(out.contains("(acl-entry"));
            assert!(out.contains("(cert (issuer (name Kwebcom"));
        })
    }

    fn fixture_path(name: &str) -> String {
        format!("{}/../../fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn lint_reports_clean_store() {
        let out = run(&args(&[
            "lint",
            &fixture_path("figures_clean.kn"),
            "--rbac",
            &fixture_path("figures_clean.rbac.json"),
        ]))
        .unwrap();
        assert_eq!(out, "clean: no findings");
    }

    #[test]
    fn lint_reports_defects_in_both_formats() {
        let common = [
            "lint".to_string(),
            fixture_path("defects.kn"),
            "--rbac".to_string(),
            fixture_path("defects.rbac.json"),
            "--now".to_string(),
            "200".to_string(),
            "--revoked".to_string(),
            "Kdave".to_string(),
        ];
        let text = run(&common).unwrap();
        assert!(text.contains("error[HS005]"), "{text}");
        assert!(text.contains("warn[HS001]"), "{text}");
        let mut jargs = common.to_vec();
        jargs.extend(args(&["--format", "json"]));
        let json = run(&jargs).unwrap();
        let report: hetsec_analyze::JsonReport = serde_json::from_str(&json).unwrap();
        assert!(report.errors > 0 && report.warnings > 0);
        assert!(report.findings.iter().any(|f| f.code == "HS013"));
    }

    #[test]
    fn lint_usage_errors() {
        assert!(matches!(run(&args(&["lint"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["lint", "store.kn", "--format", "xml"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["lint", "store.kn", "--now", "soon"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["lint", "store.kn", "--revoked"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["lint", "store.kn", "--bogus"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn lint_incremental_check_is_silent_on_agreement() {
        // The flag must not change the output when the incremental
        // engine agrees with the cold run -- on a defect-ridden store
        // exercising every pass, and on a clean one.
        let common = [
            "lint".to_string(),
            fixture_path("defects.kn"),
            "--rbac".to_string(),
            fixture_path("defects.rbac.json"),
            "--now".to_string(),
            "200".to_string(),
            "--revoked".to_string(),
            "Kdave".to_string(),
        ];
        let plain = run(&common).unwrap();
        let mut checked_args = common.to_vec();
        checked_args.push("--incremental-check".to_string());
        let checked = run(&checked_args).unwrap();
        assert_eq!(plain, checked);
        let out = run(&args(&[
            "lint",
            &fixture_path("figures_clean.kn"),
            "--incremental-check",
        ]))
        .unwrap();
        assert_eq!(out, "clean: no findings");
    }

    #[test]
    fn diff_reports_witnessed_verdict_flips() {
        let common = [
            "diff".to_string(),
            fixture_path("defects.kn"),
            fixture_path("defects_v2.kn"),
            "--now".to_string(),
            "200".to_string(),
            "--revoked".to_string(),
            "Kdave".to_string(),
        ];
        let text = run(&common).unwrap();
        assert!(text.contains("error[HS015]"), "{text}");
        assert!(text.contains("\"Ktrent\""), "{text}");
        assert!(text.contains("DENY -> GRANT"), "{text}");
        assert!(text.contains("warn[HS016]"), "{text}");
        let mut jargs = common.to_vec();
        jargs.extend(args(&["--format", "json"]));
        let json = run(&jargs).unwrap();
        let report: hetsec_analyze::JsonReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report.errors, 1);
        assert_eq!(report.warnings, 2);
        let golden = std::fs::read_to_string(fixture_path("semdiff.golden.json")).unwrap();
        assert_eq!(json.trim_end(), golden.trim_end());
    }

    #[test]
    fn diff_of_identical_stores_is_clean() {
        let path = fixture_path("defects.kn");
        let out = run(&args(&["diff", &path, &path, "--now", "200"])).unwrap();
        assert_eq!(out, "clean: no verdict changes");
    }

    #[test]
    fn diff_usage_errors() {
        assert!(matches!(run(&args(&["diff"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["diff", "old.kn"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["diff", "old.kn", "new.kn", "--format", "xml"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["diff", "old.kn", "new.kn", "--now", "soon"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["diff", "old.kn", "new.kn", "--bogus"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["bogus"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["encode"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["check", "x"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["migrate", "p", "a", "b", "nope"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["encode", "/no/such/file.json"])),
            Err(CliError::Io(_))
        ));
        assert!(matches!(run(&args(&["serve"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["connect"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["serve", "127.0.0.1:0", "c1", "Kc1", "many"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["connect", "not-an-addr", "3"])),
            Err(CliError::Net(_))
        ));
    }

    #[test]
    fn connect_schedules_against_a_served_engine() {
        // The engine `serve` would run, behind a real TCP listener.
        let server = hetsec_webcom::serve_tcp(
            demo_client_engine("c1", "Kc1"),
            vec!["Dom".into()],
            "127.0.0.1:0",
        )
        .unwrap();
        let out = connect_command(&server.local_addr().to_string(), 5, "Kc1").unwrap();
        assert!(out.contains("scheduled 5/5"), "{out}");
        assert!(out.contains("`c1`"), "{out}");
        assert_eq!(server.served(), 5);
        server.stop();
    }

    #[test]
    fn connect_refuses_untrusted_client_key() {
        let server = hetsec_webcom::serve_tcp(
            demo_client_engine("c1", "Kc1"),
            vec!["Dom".into()],
            "127.0.0.1:0",
        )
        .unwrap();
        // The master's policy only trusts Kother, so the announced Kc1
        // client is never selected.
        let err = connect_command(&server.local_addr().to_string(), 1, "Kother").unwrap_err();
        assert!(matches!(err, CliError::Net(ref m) if m.contains("failed")), "{err:?}");
        server.stop();
    }

    #[test]
    fn connect_reports_dispatch_latency_histogram() {
        let server = hetsec_webcom::serve_tcp(
            demo_client_engine("c1", "Kc1"),
            vec!["Dom".into()],
            "127.0.0.1:0",
        )
        .unwrap();
        let out = connect_command(&server.local_addr().to_string(), 3, "Kc1").unwrap();
        assert!(out.contains("dispatch latency: p50 "), "{out}");
        assert!(out.contains("p999 "), "{out}");
        server.stop();
    }

    #[test]
    fn sharded_serve_runs_a_forwarding_fabric() {
        let out = run(&args(&[
            "serve",
            "127.0.0.1:0",
            "c",
            "Kc",
            "12",
            "--shards",
            "2",
            "--pipeline",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("shard 0:"), "{out}");
        assert!(out.contains("shard 1:"), "{out}");
        assert!(out.contains("12/12 ok"), "{out}");
        // The burst went through shard 0 only; everything shard 1 owns
        // crossed a TCP Forward link.
        let forwarded: usize = out
            .split("forwarded ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse().ok())
            .unwrap();
        assert!(forwarded > 0, "no cross-shard forwards: {out}");
    }

    #[test]
    fn loadgen_runs_and_reports() {
        let out = run(&args(&[
            "loadgen",
            "--principals",
            "200",
            "--ops",
            "40",
            "--shards",
            "2",
            "--service-us",
            "100",
        ]))
        .unwrap();
        assert!(out.contains("40/40 ops ok over 2 shard(s), mux transport"), "{out}");
        assert!(out.contains("dispatch latency: p50 "), "{out}");
    }

    #[test]
    fn loadgen_emits_json_reports() {
        let out = run(&args(&[
            "loadgen",
            "--principals",
            "100",
            "--ops",
            "20",
            "--shards",
            "1",
            "--lockstep",
            "--service-us",
            "50",
            "--json",
        ]))
        .unwrap();
        let report: hetsec_webcom::LoadReport = serde_json::from_str(&out).unwrap();
        assert_eq!(report.completed, 20);
        assert!(!report.mux);
        assert_eq!(report.latency.count(), 20);
    }

    #[test]
    fn serve_and_loadgen_flag_usage_errors() {
        assert!(matches!(
            run(&args(&["serve", "127.0.0.1:0", "--shards", "zero?"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["serve", "127.0.0.1:0", "--shards"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["serve", "127.0.0.1:0", "--bogus", "3"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["loadgen", "--ops"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["loadgen", "--ops", "many"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["loadgen", "--bogus", "1"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_command_returns_once_op_quota_met() {
        // ops = 0: binds, serves nothing, exits — the fast path a smoke
        // test can use without a second process.
        let out = serve_command("127.0.0.1:0", "c9", "Kc9", Some(0)).unwrap();
        assert!(out.contains("served 0 operations"), "{out}");
    }
}
