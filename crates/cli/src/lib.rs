//! The `hetsec` command-line tool: policy translation from the shell.
//!
//! Subcommands (each reads/writes the serde_json form of
//! [`hetsec_rbac::RbacPolicy`] or KeyNote assertion text):
//!
//! * `encode <policy.json>` — RBAC → KeyNote credentials (Figures 5-6);
//! * `decode <credentials.kn>` — KeyNote → RBAC (JSON on stdout);
//! * `check <policy.json> <user> <domain> <role> <object> <permission>`
//!   — answer one authorisation query through the KeyNote back-end;
//! * `migrate <policy.json> <from-domain> <to-domain> [from-kind to-kind]`
//!   — domain remap + kind-level permission interpretation;
//! * `lint <store.kn> [--rbac <policy.json>] [--format text|json]
//!   [--now <num>] [--revoked <key>]...` — static analysis of a
//!   credential store: delegation-graph reachability, escalation vs the
//!   RBAC policy, condition lints, credential hygiene (`HS0xx` codes);
//! * `spki-encode <policy.json>` — RBAC → SPKI/SDSI certificates;
//! * `example-policy` — print the paper's Figure 1 policy as JSON;
//! * `serve <addr> [name] [key] [ops]` — run a WebCom client serving
//!   the scheduling protocol over TCP (the right side of Figure 3);
//! * `connect <addr> [n] [client-key]` — run a WebCom master that
//!   dials a serving client and schedules `n` operations to it.
//!
//! `serve` and `connect` make the master/client fabric runnable as two
//! OS processes (see the README quick-start); everything else is
//! single-process policy tooling.
//!
//! The dispatch logic lives here (library) so it is unit-testable; the
//! binary in `main.rs` is a thin wrapper.

use hetsec_keynote::parser::parse_assertions;
use hetsec_keynote::print::print_assertion;
use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
use hetsec_middleware::MiddlewareKind;
use hetsec_rbac::fixtures::salaries_policy;
use hetsec_rbac::RbacPolicy;
use hetsec_translate::{
    decode_policy, encode_policy, transform_policy, MigrationSpec, SymbolicDirectory, APP_DOMAIN,
};

/// The WebCom administration key used by the CLI.
pub const CLI_WEBCOM_KEY: &str = "KWebCom";

/// CLI errors, printable to stderr.
#[derive(Debug)]
pub enum CliError {
    /// Usage problem.
    Usage(String),
    /// IO problem.
    Io(std::io::Error),
    /// JSON problem.
    Json(serde_json::Error),
    /// KeyNote parse problem.
    KeyNote(String),
    /// Scheduling-fabric problem (bad address, unreachable peer).
    Net(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
            CliError::KeyNote(e) => write!(f, "keynote error: {e}"),
            CliError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}

fn read_policy(path: &str) -> Result<RbacPolicy, CliError> {
    let text = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

fn parse_kind(s: &str) -> Result<MiddlewareKind, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "com" | "com+" | "complus" => Ok(MiddlewareKind::ComPlus),
        "ejb" => Ok(MiddlewareKind::Ejb),
        "corba" => Ok(MiddlewareKind::Corba),
        other => Err(CliError::Usage(format!(
            "unknown middleware kind `{other}` (use com|ejb|corba)"
        ))),
    }
}

/// The master key used by the `serve`/`connect` demo fabric. A serving
/// client only accepts schedules from this key; a connecting master
/// presents it.
pub const CLI_MASTER_KEY: &str = "Kmaster";

/// The executing-user key the demo fabric schedules under.
pub const CLI_WORKER_KEY: &str = "Kworker";

fn demo_trust(licensee: &str) -> std::sync::Arc<hetsec_webcom::TrustManager> {
    let tm = hetsec_webcom::TrustManager::permissive();
    tm.add_policy(&format!(
        "Authorizer: POLICY\nLicensees: \"{licensee}\"\nConditions: app_domain==\"WebCom\";\n"
    ))
    .expect("demo policy parses");
    std::sync::Arc::new(tm)
}

/// The client engine `serve` runs: trusts [`CLI_MASTER_KEY`] as master,
/// mediates [`CLI_WORKER_KEY`] through a one-layer trust stack, and
/// executes the built-in arithmetic components. Public so integration
/// tests can serve the same engine in-process.
pub fn demo_client_engine(name: &str, key: &str) -> std::sync::Arc<hetsec_webcom::ClientEngine> {
    use hetsec_webcom::stack::TrustLayer;
    let mut stack = hetsec_webcom::AuthzStack::new();
    stack.push(std::sync::Arc::new(TrustLayer::new(demo_trust(CLI_WORKER_KEY))));
    std::sync::Arc::new(hetsec_webcom::ClientEngine::new(hetsec_webcom::ClientConfig {
        name: name.to_string(),
        key_text: key.to_string(),
        master_trust: demo_trust(CLI_MASTER_KEY),
        stack: std::sync::Arc::new(stack),
        executor: std::sync::Arc::new(hetsec_webcom::ArithComponentExecutor),
    }))
}

/// `hetsec serve`: serves the scheduling protocol on `addr` until `ops`
/// operations have been answered (forever when `ops` is `None`). The
/// bound address is printed immediately so a master in another process
/// can be pointed at it.
pub fn serve_command(
    addr: &str,
    name: &str,
    key: &str,
    ops: Option<usize>,
) -> Result<String, CliError> {
    let server = hetsec_webcom::serve_tcp(demo_client_engine(name, key), vec!["Dom".into()], addr)
        .map_err(|e| CliError::Net(format!("bind {addr}: {e}")))?;
    println!("serving client `{name}` (key {key}, domain Dom) on {}", server.local_addr());
    match ops {
        Some(limit) => {
            while server.served() < limit {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            let served = server.served();
            let stats = server.engine().stats();
            server.stop();
            Ok(format!(
                "served {served} operations (executed {}, master_rejected {}, stack_denied {}, failed {}, replayed {})",
                stats.executed, stats.master_rejected, stats.stack_denied, stats.failed,
                stats.replayed
            ))
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
}

/// `hetsec connect`: dials a serving client at `addr`, registers it via
/// the Identify handshake, and schedules `n` additions to it.
pub fn connect_command(addr: &str, n: usize, client_key: &str) -> Result<String, CliError> {
    use hetsec_graphs::Value;
    use hetsec_middleware::component::ComponentRef;
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| CliError::Net(format!("bad address `{addr}`: {e}")))?;
    let master = hetsec_webcom::WebComMaster::new(CLI_MASTER_KEY, demo_trust(client_key))
        .with_op_timeout(std::time::Duration::from_secs(5));
    let name = master
        .register_tcp(addr)
        .map_err(|e| CliError::Net(e.to_string()))?;
    master.bind(
        "add",
        hetsec_webcom::Binding {
            component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            domain: "Dom".into(),
            role: "Worker".into(),
            user: "worker".into(),
            principal: CLI_WORKER_KEY.to_string(),
        },
    );
    let mut ok = 0usize;
    for i in 0..n {
        let out = master.schedule_primitive("add", vec![Value::Int(i as i64), Value::Int(1)]);
        match out {
            hetsec_webcom::ExecOutcome::Ok(_) => ok += 1,
            other => return Err(CliError::Net(format!("op {i} failed: {other:?}"))),
        }
    }
    let stats = master.stats();
    let health = master
        .client_health()
        .into_iter()
        .map(|h| format!("{}={}", h.client, h.state))
        .collect::<Vec<_>>()
        .join(", ");
    Ok(format!(
        "scheduled {ok}/{n} operations to `{name}` at {addr} \
         (retries {}, timeouts {}, failovers {}, rescheduled {}, \
         exhausted {}, shed {}, replayed {}, breaker trips {}; health: {health})",
        stats.retries,
        stats.timeouts,
        stats.failovers,
        stats.rescheduled,
        stats.exhausted,
        stats.shed,
        stats.replayed,
        stats.breaker_trips
    ))
}

/// Runs one CLI invocation; returns the text to print on stdout.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let usage =
        "hetsec <encode|decode|check|lint|migrate|spki-encode|example-policy|serve|connect> ...";
    let cmd = args.first().ok_or_else(|| CliError::Usage(usage.into()))?;
    match cmd.as_str() {
        "example-policy" => Ok(serde_json::to_string_pretty(&salaries_policy())?),
        "encode" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("hetsec encode <policy.json>".into()))?;
            let policy = read_policy(path)?;
            let dir = SymbolicDirectory::default();
            let out: Vec<String> = encode_policy(&policy, CLI_WEBCOM_KEY, &dir)
                .iter()
                .map(print_assertion)
                .collect();
            Ok(out.join("\n"))
        }
        "decode" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("hetsec decode <credentials.kn>".into()))?;
            let text = std::fs::read_to_string(path)?;
            let assertions =
                parse_assertions(&text).map_err(|e| CliError::KeyNote(e.to_string()))?;
            let dir = SymbolicDirectory::default();
            let report = decode_policy(&assertions, CLI_WEBCOM_KEY, &dir);
            let mut out = serde_json::to_string_pretty(&report.policy)?;
            for skip in &report.skipped {
                out.push_str(&format!("\n// skipped: {skip}"));
            }
            Ok(out)
        }
        "check" => {
            let [path, user, domain, role, object, permission] = args.get(1..7).and_then(
                |s| <&[String; 6]>::try_from(s).ok(),
            ).ok_or_else(|| {
                CliError::Usage(
                    "hetsec check <policy.json> <user> <domain> <role> <object> <permission>"
                        .into(),
                )
            })?
            .clone();
            let policy = read_policy(&path)?;
            let dir = SymbolicDirectory::default();
            let mut session = KeyNoteSession::permissive();
            for a in encode_policy(&policy, CLI_WEBCOM_KEY, &dir) {
                session
                    .add_policy_assertion(a)
                    .map_err(|e| CliError::KeyNote(e.to_string()))?;
            }
            let attrs = [
                ("app_domain", APP_DOMAIN),
                ("Domain", domain.as_str()),
                ("Role", role.as_str()),
                ("ObjectType", object.as_str()),
                ("Permission", permission.as_str()),
            ]
            .into_iter()
            .collect();
            let key = format!("K{}", user.to_lowercase());
            let result = session.evaluate(&ActionQuery::principals(&[key.as_str()]).attributes(&attrs));
            Ok(format!(
                "{}: {user} as {domain}/{role} requesting {permission} on {object}",
                result.value_name
            ))
        }
        "lint" => {
            let lint_usage = "hetsec lint <store.kn> [--rbac <policy.json>] \
                              [--format text|json] [--now <num>] [--revoked <key>]...";
            let path = args
                .get(1)
                .filter(|p| !p.starts_with("--"))
                .ok_or_else(|| CliError::Usage(lint_usage.into()))?;
            let mut opts = hetsec_analyze::AnalysisOptions {
                webcom_key: CLI_WEBCOM_KEY.to_string(),
                ..Default::default()
            };
            // The adapters the CLI ships are WebCom's: their attribute
            // vocabulary is what HS008 checks references against.
            opts.known_attributes
                .extend(hetsec_webcom::ADAPTER_ATTRIBUTES.iter().map(|s| s.to_string()));
            let mut json = false;
            let mut rest = args[2..].iter();
            while let Some(flag) = rest.next() {
                let mut value = |name: &str| {
                    rest.next()
                        .cloned()
                        .ok_or_else(|| CliError::Usage(format!("{name} needs a value; {lint_usage}")))
                };
                match flag.as_str() {
                    "--rbac" => opts.rbac = Some(read_policy(&value("--rbac")?)?),
                    "--now" => {
                        let v = value("--now")?;
                        opts.now = Some(v.parse::<f64>().map_err(|_| {
                            CliError::Usage(format!("--now must be a number, got `{v}`"))
                        })?);
                    }
                    "--revoked" => {
                        opts.revoked.insert(value("--revoked")?);
                    }
                    "--format" => match value("--format")?.as_str() {
                        "json" => json = true,
                        "text" => json = false,
                        other => {
                            return Err(CliError::Usage(format!(
                                "unknown format `{other}` (use text|json)"
                            )))
                        }
                    },
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown lint flag `{other}`; {lint_usage}"
                        )))
                    }
                }
            }
            let text = std::fs::read_to_string(path)?;
            let report = hetsec_analyze::analyze_text(&text, &opts)
                .map_err(|e| CliError::KeyNote(e.to_string()))?;
            Ok(if json {
                report.to_json()
            } else {
                report.to_string()
            })
        }
        "migrate" => {
            let (path, from_d, to_d) = match (args.get(1), args.get(2), args.get(3)) {
                (Some(p), Some(f), Some(t)) => (p, f, t),
                _ => {
                    return Err(CliError::Usage(
                        "hetsec migrate <policy.json> <from-domain> <to-domain> [from-kind to-kind]"
                            .into(),
                    ))
                }
            };
            let from_kind = args.get(4).map(|s| parse_kind(s)).transpose()?.unwrap_or(MiddlewareKind::Ejb);
            let to_kind = args.get(5).map(|s| parse_kind(s)).transpose()?.unwrap_or(MiddlewareKind::Ejb);
            let policy = read_policy(path)?;
            let spec = MigrationSpec::domain(from_d.clone(), to_d.clone());
            let (out, renames) = transform_policy(&policy, from_kind, to_kind, &spec);
            let mut text = serde_json::to_string_pretty(&out)?;
            for (f, t, score) in renames {
                text.push_str(&format!("\n// renamed {f} -> {t} (score {score:.2})"));
            }
            Ok(text)
        }
        "spki-encode" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("hetsec spki-encode <policy.json>".into()))?;
            let policy = read_policy(path)?;
            let spki = hetsec_spki::encode_rbac(&policy, "Kwebcom");
            let mut out = String::new();
            for entry in &spki.acl {
                out.push_str(&format!(
                    "(acl-entry (subject {}) (propagate) {})\n",
                    entry.subject, entry.tag
                ));
            }
            for cert in &spki.store.names {
                out.push_str(&format!("{}\n", cert.to_sexp()));
            }
            Ok(out)
        }
        "serve" => {
            let addr = args.get(1).ok_or_else(|| {
                CliError::Usage("hetsec serve <addr> [name] [key] [ops]".into())
            })?;
            let name = args.get(2).map(String::as_str).unwrap_or("c1");
            let key = args.get(3).map(String::as_str).unwrap_or("Kc1");
            let ops = args
                .get(4)
                .map(|s| {
                    s.parse::<usize>()
                        .map_err(|_| CliError::Usage(format!("ops must be a number, got `{s}`")))
                })
                .transpose()?;
            serve_command(addr, name, key, ops)
        }
        "connect" => {
            let addr = args.get(1).ok_or_else(|| {
                CliError::Usage("hetsec connect <addr> [n] [client-key]".into())
            })?;
            let n = args
                .get(2)
                .map(|s| {
                    s.parse::<usize>()
                        .map_err(|_| CliError::Usage(format!("n must be a number, got `{s}`")))
                })
                .transpose()?
                .unwrap_or(10);
            let client_key = args.get(3).map(String::as_str).unwrap_or("Kc1");
            connect_command(addr, n, client_key)
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`; {usage}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn with_fixture_file<R>(f: impl FnOnce(&str) -> R) -> R {
        let dir = std::env::temp_dir().join(format!("hetsec-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.json");
        std::fs::write(&path, serde_json::to_string(&salaries_policy()).unwrap()).unwrap();
        f(path.to_str().unwrap())
    }

    #[test]
    fn example_policy_prints_json() {
        let out = run(&args(&["example-policy"])).unwrap();
        let parsed: RbacPolicy = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed, salaries_policy());
    }

    #[test]
    fn encode_emits_keynote_text() {
        with_fixture_file(|path| {
            let out = run(&args(&["encode", path])).unwrap();
            assert!(out.contains("Authorizer: POLICY"));
            assert!(out.contains("Kclaire"));
            // The output parses back.
            let assertions = parse_assertions(&out).unwrap();
            assert_eq!(assertions.len(), 6); // fig5 + 5 memberships
        })
    }

    #[test]
    fn encode_decode_roundtrip_via_files() {
        with_fixture_file(|path| {
            let encoded = run(&args(&["encode", path])).unwrap();
            let kn_path = std::path::Path::new(path).with_extension("kn");
            std::fs::write(&kn_path, &encoded).unwrap();
            let decoded = run(&args(&["decode", kn_path.to_str().unwrap()])).unwrap();
            let policy: RbacPolicy =
                serde_json::from_str(decoded.split("\n//").next().unwrap()).unwrap();
            assert_eq!(policy, salaries_policy());
        })
    }

    #[test]
    fn check_answers_queries() {
        with_fixture_file(|path| {
            let out = run(&args(&[
                "check", path, "Claire", "Sales", "Manager", "SalariesDB", "read",
            ]))
            .unwrap();
            assert!(out.starts_with("_MAX_TRUST"));
            let out = run(&args(&[
                "check", path, "Claire", "Sales", "Manager", "SalariesDB", "write",
            ]))
            .unwrap();
            assert!(out.starts_with("_MIN_TRUST"));
        })
    }

    #[test]
    fn migrate_remaps_domains_and_interprets_permissions() {
        with_fixture_file(|path| {
            let out = run(&args(&["migrate", path, "Finance", "h/s/j", "com", "ejb"])).unwrap();
            let policy: RbacPolicy =
                serde_json::from_str(out.split("\n//").next().unwrap()).unwrap();
            assert!(policy.domains().iter().any(|d| d.as_str() == "h/s/j"));
            assert!(policy.domains().iter().all(|d| d.as_str() != "Finance"));
        })
    }

    #[test]
    fn spki_encode_emits_certs() {
        with_fixture_file(|path| {
            let out = run(&args(&["spki-encode", path])).unwrap();
            assert!(out.contains("(acl-entry"));
            assert!(out.contains("(cert (issuer (name Kwebcom"));
        })
    }

    fn fixture_path(name: &str) -> String {
        format!("{}/../../fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn lint_reports_clean_store() {
        let out = run(&args(&[
            "lint",
            &fixture_path("figures_clean.kn"),
            "--rbac",
            &fixture_path("figures_clean.rbac.json"),
        ]))
        .unwrap();
        assert_eq!(out, "clean: no findings");
    }

    #[test]
    fn lint_reports_defects_in_both_formats() {
        let common = [
            "lint".to_string(),
            fixture_path("defects.kn"),
            "--rbac".to_string(),
            fixture_path("defects.rbac.json"),
            "--now".to_string(),
            "200".to_string(),
            "--revoked".to_string(),
            "Kdave".to_string(),
        ];
        let text = run(&common).unwrap();
        assert!(text.contains("error[HS005]"), "{text}");
        assert!(text.contains("warn[HS001]"), "{text}");
        let mut jargs = common.to_vec();
        jargs.extend(args(&["--format", "json"]));
        let json = run(&jargs).unwrap();
        let report: hetsec_analyze::JsonReport = serde_json::from_str(&json).unwrap();
        assert!(report.errors > 0 && report.warnings > 0);
        assert!(report.findings.iter().any(|f| f.code == "HS013"));
    }

    #[test]
    fn lint_usage_errors() {
        assert!(matches!(run(&args(&["lint"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["lint", "store.kn", "--format", "xml"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["lint", "store.kn", "--now", "soon"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["lint", "store.kn", "--revoked"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["lint", "store.kn", "--bogus"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["bogus"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["encode"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["check", "x"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["migrate", "p", "a", "b", "nope"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["encode", "/no/such/file.json"])),
            Err(CliError::Io(_))
        ));
        assert!(matches!(run(&args(&["serve"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["connect"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["serve", "127.0.0.1:0", "c1", "Kc1", "many"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["connect", "not-an-addr", "3"])),
            Err(CliError::Net(_))
        ));
    }

    #[test]
    fn connect_schedules_against_a_served_engine() {
        // The engine `serve` would run, behind a real TCP listener.
        let server = hetsec_webcom::serve_tcp(
            demo_client_engine("c1", "Kc1"),
            vec!["Dom".into()],
            "127.0.0.1:0",
        )
        .unwrap();
        let out = connect_command(&server.local_addr().to_string(), 5, "Kc1").unwrap();
        assert!(out.contains("scheduled 5/5"), "{out}");
        assert!(out.contains("`c1`"), "{out}");
        assert_eq!(server.served(), 5);
        server.stop();
    }

    #[test]
    fn connect_refuses_untrusted_client_key() {
        let server = hetsec_webcom::serve_tcp(
            demo_client_engine("c1", "Kc1"),
            vec!["Dom".into()],
            "127.0.0.1:0",
        )
        .unwrap();
        // The master's policy only trusts Kother, so the announced Kc1
        // client is never selected.
        let err = connect_command(&server.local_addr().to_string(), 1, "Kother").unwrap_err();
        assert!(matches!(err, CliError::Net(ref m) if m.contains("failed")), "{err:?}");
        server.stop();
    }

    #[test]
    fn serve_command_returns_once_op_quota_met() {
        // ops = 0: binds, serves nothing, exits — the fast path a smoke
        // test can use without a second process.
        let out = serve_command("127.0.0.1:0", "c9", "Kc9", Some(0)).unwrap();
        assert!(out.contains("served 0 operations"), "{out}");
    }
}
