//! Thin binary wrapper over [`hetsec_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hetsec_cli::run(&args) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
