//! Condensed graph definitions (Morrison [21]).
//!
//! A *condensed graph* unifies availability-, coercion- and
//! control-driven computing: nodes fire when their operands are
//! available; a **condensed** node's operator is itself a graph, which is
//! expanded (evaporated) when the node fires; and conditional nodes
//! steer which subgraph is coerced into evaluation.
//!
//! A [`GraphTemplate`] here is a parameterised DAG: each node names an
//! operator and draws inputs from graph parameters or other nodes. The
//! recursive cases — condensed subgraphs and `IfEl` branches — hold
//! whole templates as operators.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Index of a node within its template.
pub type NodeId = usize;

/// Where a node input comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// The i-th parameter of the enclosing graph.
    Param(usize),
    /// The result of another node in the same template.
    Node(NodeId),
}

/// A node's operator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Operator {
    /// A literal value (no inputs).
    Const(Value),
    /// A named primitive resolved against the engine's executor. For
    /// WebCom, primitives are middleware component invocations.
    Primitive(String),
    /// A condensed node: fires by evaluating the inner graph with this
    /// node's inputs as the graph's parameters (availability-driven
    /// expansion).
    Condensed(Arc<GraphTemplate>),
    /// Conditional (control-driven): input 0 is the condition; the
    /// remaining inputs are passed as parameters to whichever branch is
    /// coerced into evaluation.
    IfEl {
        /// Evaluated when the condition is true.
        then_branch: Arc<GraphTemplate>,
        /// Evaluated when the condition is false.
        else_branch: Arc<GraphTemplate>,
    },
}

/// One node: an operator plus its input arcs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Diagnostic label.
    pub label: String,
    /// The operator.
    pub operator: Operator,
    /// Input arcs in operand order.
    pub inputs: Vec<Source>,
}

/// A parameterised condensed-graph template.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphTemplate {
    /// Human-readable name.
    pub name: String,
    /// Number of parameters (the E node's operands).
    pub arity: usize,
    /// The nodes.
    pub nodes: Vec<NodeSpec>,
    /// Which node's value the graph returns (the X node's operand).
    pub output: Source,
}

/// Template validation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A node input refers to a nonexistent node.
    DanglingNode {
        /// The referring node.
        node: NodeId,
        /// The missing target.
        target: NodeId,
    },
    /// A node input refers to a parameter beyond the arity.
    BadParam {
        /// The referring node (or `None` for the output source).
        node: Option<NodeId>,
        /// The out-of-range parameter index.
        param: usize,
    },
    /// The output refers to a nonexistent node.
    BadOutput(NodeId),
    /// The template contains a dependency cycle through these nodes.
    Cycle(Vec<NodeId>),
    /// An `IfEl` node needs at least the condition input.
    MissingCondition(NodeId),
    /// A branch/condensed subgraph expects a different number of
    /// parameters than the node supplies.
    ArityMismatch {
        /// The node.
        node: NodeId,
        /// What the subgraph expects.
        expected: usize,
        /// What the node supplies.
        supplied: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingNode { node, target } => {
                write!(f, "node {node} reads nonexistent node {target}")
            }
            GraphError::BadParam { node, param } => match node {
                Some(n) => write!(f, "node {n} reads nonexistent parameter {param}"),
                None => write!(f, "output reads nonexistent parameter {param}"),
            },
            GraphError::BadOutput(n) => write!(f, "output reads nonexistent node {n}"),
            GraphError::Cycle(nodes) => write!(f, "dependency cycle through nodes {nodes:?}"),
            GraphError::MissingCondition(n) => write!(f, "IfEl node {n} has no condition input"),
            GraphError::ArityMismatch { node, expected, supplied } => write!(
                f,
                "node {node}: subgraph expects {expected} params, {supplied} supplied"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

impl GraphTemplate {
    /// Validates structure: references in range, acyclic, consistent
    /// subgraph arities. Recursively validates subgraphs.
    pub fn validate(&self) -> Result<(), GraphError> {
        // Reference checks.
        let check_source = |node: Option<NodeId>, s: &Source| -> Result<(), GraphError> {
            match *s {
                Source::Param(p) if p >= self.arity => Err(GraphError::BadParam { node, param: p }),
                Source::Node(t) if t >= self.nodes.len() => match node {
                    Some(n) => Err(GraphError::DanglingNode { node: n, target: t }),
                    None => Err(GraphError::BadOutput(t)),
                },
                _ => Ok(()),
            }
        };
        for (i, n) in self.nodes.iter().enumerate() {
            for s in &n.inputs {
                check_source(Some(i), s)?;
            }
            match &n.operator {
                Operator::IfEl { then_branch, else_branch } => {
                    if n.inputs.is_empty() {
                        return Err(GraphError::MissingCondition(i));
                    }
                    let supplied = n.inputs.len() - 1;
                    for branch in [then_branch, else_branch] {
                        if branch.arity != supplied {
                            return Err(GraphError::ArityMismatch {
                                node: i,
                                expected: branch.arity,
                                supplied,
                            });
                        }
                        branch.validate()?;
                    }
                }
                Operator::Condensed(sub) => {
                    if sub.arity != n.inputs.len() {
                        return Err(GraphError::ArityMismatch {
                            node: i,
                            expected: sub.arity,
                            supplied: n.inputs.len(),
                        });
                    }
                    sub.validate()?;
                }
                Operator::Const(_) | Operator::Primitive(_) => {}
            }
        }
        check_source(None, &self.output)?;
        // Cycle check via DFS colouring.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        fn dfs(
            nodes: &[NodeSpec],
            colour: &mut [Colour],
            stack: &mut Vec<NodeId>,
            i: NodeId,
        ) -> Result<(), GraphError> {
            colour[i] = Colour::Grey;
            stack.push(i);
            for s in &nodes[i].inputs {
                if let Source::Node(t) = *s {
                    match colour[t] {
                        Colour::Grey => {
                            let pos = stack.iter().position(|&n| n == t).unwrap_or(0);
                            return Err(GraphError::Cycle(stack[pos..].to_vec()));
                        }
                        Colour::White => dfs(nodes, colour, stack, t)?,
                        Colour::Black => {}
                    }
                }
            }
            stack.pop();
            colour[i] = Colour::Black;
            Ok(())
        }
        let mut colour = vec![Colour::White; self.nodes.len()];
        for i in 0..self.nodes.len() {
            if colour[i] == Colour::White {
                dfs(&self.nodes, &mut colour, &mut Vec::new(), i)?;
            }
        }
        Ok(())
    }

    /// Topological levels: level 0 nodes depend only on parameters and
    /// constants; level k nodes depend on nodes of levels `< k`. Nodes in
    /// one level can fire in parallel (availability-driven waves).
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut level = vec![0usize; n];
        // Since validate() guarantees acyclicity, a simple fixpoint over
        // topological order works; iterate until stable.
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                let mut want = 0;
                for s in &self.nodes[i].inputs {
                    if let Source::Node(t) = *s {
                        want = want.max(level[t] + 1);
                    }
                }
                if want > level[i] {
                    level[i] = want;
                    changed = true;
                }
            }
        }
        let max = level.iter().copied().max().map_or(0, |m| m + 1);
        let mut out = vec![Vec::new(); max];
        for (i, &l) in level.iter().enumerate() {
            out[l].push(i);
        }
        out
    }

    /// The primitive operator names used anywhere in the template
    /// (recursively) — WebCom interrogates this to schedule components.
    pub fn primitives(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_primitives(&mut out);
        out
    }

    fn collect_primitives(&self, out: &mut BTreeSet<String>) {
        for n in &self.nodes {
            match &n.operator {
                Operator::Primitive(p) => {
                    out.insert(p.clone());
                }
                Operator::Condensed(sub) => sub.collect_primitives(out),
                Operator::IfEl { then_branch, else_branch } => {
                    then_branch.collect_primitives(out);
                    else_branch.collect_primitives(out);
                }
                Operator::Const(_) => {}
            }
        }
    }
}

/// Fluent builder for templates.
pub struct GraphBuilder {
    name: String,
    arity: usize,
    nodes: Vec<NodeSpec>,
}

impl GraphBuilder {
    /// Starts a template with `arity` parameters.
    pub fn new(name: &str, arity: usize) -> Self {
        GraphBuilder {
            name: name.to_string(),
            arity,
            nodes: Vec::new(),
        }
    }

    /// Adds a constant node.
    pub fn constant(&mut self, label: &str, v: impl Into<Value>) -> NodeId {
        self.push(label, Operator::Const(v.into()), vec![])
    }

    /// Adds a primitive node.
    pub fn primitive(&mut self, label: &str, op: &str, inputs: Vec<Source>) -> NodeId {
        self.push(label, Operator::Primitive(op.to_string()), inputs)
    }

    /// Adds a condensed node.
    pub fn condensed(&mut self, label: &str, sub: Arc<GraphTemplate>, inputs: Vec<Source>) -> NodeId {
        self.push(label, Operator::Condensed(sub), inputs)
    }

    /// Adds a conditional node: `inputs[0]` is the condition.
    pub fn if_el(
        &mut self,
        label: &str,
        then_branch: Arc<GraphTemplate>,
        else_branch: Arc<GraphTemplate>,
        inputs: Vec<Source>,
    ) -> NodeId {
        self.push(
            label,
            Operator::IfEl {
                then_branch,
                else_branch,
            },
            inputs,
        )
    }

    fn push(&mut self, label: &str, operator: Operator, inputs: Vec<Source>) -> NodeId {
        self.nodes.push(NodeSpec {
            label: label.to_string(),
            operator,
            inputs,
        });
        self.nodes.len() - 1
    }

    /// Finishes the template, validating it.
    pub fn output(self, output: Source) -> Result<GraphTemplate, GraphError> {
        let t = GraphTemplate {
            name: self.name,
            arity: self.arity,
            nodes: self.nodes,
            output,
        };
        t.validate()?;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_two() -> GraphTemplate {
        let mut b = GraphBuilder::new("add-two", 2);
        let sum = b.primitive("sum", "add", vec![Source::Param(0), Source::Param(1)]);
        b.output(Source::Node(sum)).unwrap()
    }

    #[test]
    fn builder_produces_valid_template() {
        let t = add_two();
        assert_eq!(t.arity, 2);
        assert_eq!(t.nodes.len(), 1);
        assert_eq!(t.primitives().len(), 1);
    }

    #[test]
    fn dangling_references_rejected() {
        let t = GraphTemplate {
            name: "bad".into(),
            arity: 0,
            nodes: vec![NodeSpec {
                label: "n".into(),
                operator: Operator::Primitive("id".into()),
                inputs: vec![Source::Node(5)],
            }],
            output: Source::Node(0),
        };
        assert!(matches!(
            t.validate(),
            Err(GraphError::DanglingNode { node: 0, target: 5 })
        ));
    }

    #[test]
    fn bad_param_and_output_rejected() {
        let t = GraphTemplate {
            name: "bad".into(),
            arity: 1,
            nodes: vec![],
            output: Source::Param(3),
        };
        assert!(matches!(
            t.validate(),
            Err(GraphError::BadParam { node: None, param: 3 })
        ));
        let t2 = GraphTemplate {
            name: "bad2".into(),
            arity: 0,
            nodes: vec![],
            output: Source::Node(0),
        };
        assert!(matches!(t2.validate(), Err(GraphError::BadOutput(0))));
    }

    #[test]
    fn cycles_rejected() {
        let t = GraphTemplate {
            name: "cycle".into(),
            arity: 0,
            nodes: vec![
                NodeSpec {
                    label: "a".into(),
                    operator: Operator::Primitive("id".into()),
                    inputs: vec![Source::Node(1)],
                },
                NodeSpec {
                    label: "b".into(),
                    operator: Operator::Primitive("id".into()),
                    inputs: vec![Source::Node(0)],
                },
            ],
            output: Source::Node(0),
        };
        assert!(matches!(t.validate(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn arity_mismatch_in_condensed() {
        let sub = Arc::new(add_two());
        let mut b = GraphBuilder::new("outer", 1);
        b.condensed("call", sub, vec![Source::Param(0)]); // needs 2
        let err = b.output(Source::Node(0)).unwrap_err();
        assert!(matches!(err, GraphError::ArityMismatch { expected: 2, supplied: 1, .. }));
    }

    #[test]
    fn ifel_requires_condition() {
        let branch = Arc::new({
            let mut b = GraphBuilder::new("branch", 0);
            b.constant("c", 1i64);
            b.output(Source::Node(0)).unwrap()
        });
        let mut b = GraphBuilder::new("outer", 0);
        b.if_el("choose", branch.clone(), branch, vec![]);
        assert!(matches!(
            b.output(Source::Node(0)),
            Err(GraphError::MissingCondition(0))
        ));
    }

    #[test]
    fn levels_partition_by_dependency_depth() {
        let mut b = GraphBuilder::new("diamond", 1);
        let a = b.primitive("a", "id", vec![Source::Param(0)]);
        let l = b.primitive("l", "id", vec![Source::Node(a)]);
        let r = b.primitive("r", "id", vec![Source::Node(a)]);
        let j = b.primitive("j", "add", vec![Source::Node(l), Source::Node(r)]);
        let t = b.output(Source::Node(j)).unwrap();
        let levels = t.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![a]);
        assert_eq!(levels[1], vec![l, r]);
        assert_eq!(levels[2], vec![j]);
    }

    #[test]
    fn primitives_recurse_into_subgraphs() {
        let sub = Arc::new(add_two());
        let mut b = GraphBuilder::new("outer", 2);
        let c = b.condensed("call", sub, vec![Source::Param(0), Source::Param(1)]);
        let m = b.primitive("mul", "mul", vec![Source::Node(c), Source::Param(0)]);
        let t = b.output(Source::Node(m)).unwrap();
        let prims = t.primitives();
        assert!(prims.contains("add"));
        assert!(prims.contains("mul"));
        assert_eq!(prims.len(), 2);
    }
}
