//! Graphviz DOT export for condensed graphs.
//!
//! The WebCom IDE (paper Figure 11) displays applications as editable
//! graphs; headless, the closest artefact is a DOT rendering. Condensed
//! subgraphs become clusters; `IfEl` branches are dashed clusters.

use crate::graph::{GraphTemplate, Operator, Source};
use std::fmt::Write;

/// Renders a template as a Graphviz `digraph`.
pub fn to_dot(template: &GraphTemplate) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&template.name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    render_body(template, "", &mut out, &mut 0);
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders nodes/edges with ids prefixed by `prefix` (for nesting).
fn render_body(template: &GraphTemplate, prefix: &str, out: &mut String, cluster: &mut usize) {
    for p in 0..template.arity {
        let _ = writeln!(
            out,
            "  \"{prefix}p{p}\" [label=\"param {p}\", shape=ellipse];"
        );
    }
    for (i, node) in template.nodes.iter().enumerate() {
        let id = format!("{prefix}n{i}");
        match &node.operator {
            Operator::Const(v) => {
                let _ = writeln!(
                    out,
                    "  \"{id}\" [label=\"{}\\n= {}\", shape=plaintext];",
                    escape(&node.label),
                    escape(&v.to_string())
                );
            }
            Operator::Primitive(op) => {
                let _ = writeln!(
                    out,
                    "  \"{id}\" [label=\"{}\\n[{}]\"];",
                    escape(&node.label),
                    escape(op)
                );
            }
            Operator::Condensed(sub) => {
                *cluster += 1;
                let c = *cluster;
                let inner_prefix = format!("{prefix}c{c}_");
                let _ = writeln!(out, "  subgraph \"cluster_{c}\" {{");
                let _ = writeln!(out, "    label=\"{} (condensed: {})\";", escape(&node.label), escape(&sub.name));
                render_body(sub, &inner_prefix, out, cluster);
                let _ = writeln!(out, "  }}");
                // Anchor node representing the condensed node itself.
                let _ = writeln!(
                    out,
                    "  \"{id}\" [label=\"{}\", shape=doubleoctagon];",
                    escape(&node.label)
                );
            }
            Operator::IfEl { then_branch, else_branch } => {
                let _ = writeln!(
                    out,
                    "  \"{id}\" [label=\"{}\\n[if-el]\", shape=diamond];",
                    escape(&node.label)
                );
                for (branch, tag) in [(then_branch, "then"), (else_branch, "else")] {
                    *cluster += 1;
                    let c = *cluster;
                    let inner_prefix = format!("{prefix}c{c}_");
                    let _ = writeln!(out, "  subgraph \"cluster_{c}\" {{");
                    let _ = writeln!(out, "    label=\"{tag}: {}\"; style=dashed;", escape(&branch.name));
                    render_body(branch, &inner_prefix, out, cluster);
                    let _ = writeln!(out, "  }}");
                }
            }
        }
        for src in &node.inputs {
            let from = match src {
                Source::Param(p) => format!("{prefix}p{p}"),
                Source::Node(n) => format!("{prefix}n{n}"),
            };
            let _ = writeln!(out, "  \"{from}\" -> \"{id}\";");
        }
    }
    let sink = format!("{prefix}out");
    let _ = writeln!(out, "  \"{sink}\" [label=\"X (output)\", shape=ellipse];");
    let from = match template.output {
        Source::Param(p) => format!("{prefix}p{p}"),
        Source::Node(n) => format!("{prefix}n{n}"),
    };
    let _ = writeln!(out, "  \"{from}\" -> \"{sink}\";");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use std::sync::Arc;

    fn simple() -> GraphTemplate {
        let mut b = GraphBuilder::new("demo", 2);
        let s = b.primitive("sum", "add", vec![Source::Param(0), Source::Param(1)]);
        b.output(Source::Node(s)).unwrap()
    }

    #[test]
    fn renders_nodes_params_and_edges() {
        let dot = to_dot(&simple());
        assert!(dot.starts_with("digraph \"demo\" {"));
        assert!(dot.contains("\"p0\" [label=\"param 0\""));
        assert!(dot.contains("\"n0\" [label=\"sum\\n[add]\"]"));
        assert!(dot.contains("\"p0\" -> \"n0\";"));
        assert!(dot.contains("\"p1\" -> \"n0\";"));
        assert!(dot.contains("\"n0\" -> \"out\";"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn condensed_nodes_become_clusters() {
        let sub = Arc::new(simple());
        let mut b = GraphBuilder::new("outer", 2);
        let c = b.condensed("call", sub, vec![Source::Param(0), Source::Param(1)]);
        let t = b.output(Source::Node(c)).unwrap();
        let dot = to_dot(&t);
        assert!(dot.contains("subgraph \"cluster_1\""));
        assert!(dot.contains("condensed: demo"));
        assert!(dot.contains("doubleoctagon"));
        // Inner nodes carry the cluster prefix.
        assert!(dot.contains("\"c1_n0\""));
    }

    #[test]
    fn ifel_branches_are_dashed_clusters() {
        let branch = Arc::new({
            let mut b = GraphBuilder::new("b", 0);
            let c = b.constant("k", 1i64);
            b.output(Source::Node(c)).unwrap()
        });
        let mut b = GraphBuilder::new("outer", 1);
        let cond = b.constant("cond", true);
        let n = b.if_el("choose", branch.clone(), branch, vec![Source::Node(cond)]);
        let t = b.output(Source::Node(n)).unwrap();
        let dot = to_dot(&t);
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("then: b"));
        assert!(dot.contains("else: b"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut b = GraphBuilder::new("has \"quotes\"", 0);
        let c = b.constant("say \"hi\"", "x");
        let t = b.output(Source::Node(c)).unwrap();
        let dot = to_dot(&t);
        assert!(dot.contains("digraph \"has \\\"quotes\\\"\""));
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
